//! Fixture tests for the three cross-file rule families, each over a
//! small synthetic workspace built with [`Workspace::from_sources`].

use eval_lint::{analyze, MetricSchema, RegistryState, Rule, Workspace};

const NAMES_PATH: &str = "crates/trace/src/names.rs";

fn findings(ws: &Workspace, registry: &RegistryState) -> Vec<eval_lint::Finding> {
    analyze(ws, registry)
}

fn of_rule(fs: &[eval_lint::Finding], rule: Rule) -> Vec<&eval_lint::Finding> {
    fs.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- metric-schema

#[test]
fn raw_metric_literal_is_flagged_with_the_declared_constant() {
    let ws = Workspace::from_sources([
        (NAMES_PATH, "pub const CACHE_HIT: &str = \"cache.hit\";\n"),
        (
            "crates/adapt/src/emit.rs",
            "pub fn f(t: &T) { t.count(\"cache.hit\"); }\n",
        ),
        (
            "crates/obs/src/consume.rs",
            "pub fn g(r: &R) -> u64 { r.counter(CACHE_HIT) }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let ms = of_rule(&fs, Rule::MetricSchema);
    assert_eq!(ms.len(), 1, "{fs:?}");
    assert_eq!(ms[0].path, "crates/adapt/src/emit.rs");
    assert!(ms[0].message.contains("names::CACHE_HIT"), "{}", ms[0].message);
    assert!(ms[0].col.is_some());
}

#[test]
fn orphaned_consumer_is_flagged_at_the_consume_site() {
    let ws = Workspace::from_sources([
        (
            NAMES_PATH,
            "pub const CACHE_HIT: &str = \"cache.hit\";\npub const CACHE_MISS: &str = \"cache.miss\";\n",
        ),
        (
            "crates/adapt/src/emit.rs",
            "pub fn f(t: &T) { t.count(CACHE_HIT); }\n",
        ),
        (
            "crates/obs/src/consume.rs",
            "pub fn g(r: &R) -> u64 { r.counter(CACHE_HIT) + r.counter(CACHE_MISS) }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let ms = of_rule(&fs, Rule::MetricSchema);
    assert_eq!(ms.len(), 1, "{fs:?}");
    assert_eq!(ms[0].path, "crates/obs/src/consume.rs");
    assert!(
        ms[0].message.contains("\"cache.miss\"") && ms[0].message.contains("emitted nowhere"),
        "{}",
        ms[0].message
    );
}

#[test]
fn unregistered_emitter_is_flagged_against_the_loaded_registry() {
    let registry = MetricSchema::parse(
        "{\n  \"metrics\": [\n    {\"name\":\"cache.hit\",\"const\":\"CACHE_HIT\",\"emitted\":true,\"consumed\":false}\n  ]\n}\n",
    )
    .expect("registry parses");
    let ws = Workspace::from_sources([
        (
            NAMES_PATH,
            "pub const CACHE_HIT: &str = \"cache.hit\";\npub const CACHE_MISS: &str = \"cache.miss\";\n",
        ),
        (
            "crates/adapt/src/emit.rs",
            "pub fn f(t: &T) { t.count(CACHE_HIT); t.count(CACHE_MISS); }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Loaded(registry));
    let ms = of_rule(&fs, Rule::MetricSchema);
    // cache.hit is registered (export); cache.miss is not.
    assert_eq!(ms.len(), 1, "{fs:?}");
    assert!(
        ms[0].message.contains("\"cache.miss\"")
            && ms[0].message.contains("not listed in results/metric_schema.json"),
        "{}",
        ms[0].message
    );
}

#[test]
fn missing_registry_is_a_single_finding() {
    let ws = Workspace::from_sources([(
        "crates/adapt/src/emit.rs",
        "pub fn f(x: u64) -> u64 { x }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Missing);
    let ms = of_rule(&fs, Rule::MetricSchema);
    assert_eq!(ms.len(), 1, "{fs:?}");
    assert_eq!(ms[0].path, "results/metric_schema.json");
    assert!(ms[0].message.contains("--emit-schema"), "{}", ms[0].message);
}

#[test]
fn stale_registry_entry_is_flagged() {
    let registry = MetricSchema::parse(
        "{\n  \"metrics\": [\n    {\"name\":\"ghost.metric\",\"const\":null,\"emitted\":true,\"consumed\":false}\n  ]\n}\n",
    )
    .expect("registry parses");
    let ws = Workspace::from_sources([(
        "crates/adapt/src/emit.rs",
        "pub fn f(x: u64) -> u64 { x }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Loaded(registry));
    let ms = of_rule(&fs, Rule::MetricSchema);
    assert_eq!(ms.len(), 1, "{fs:?}");
    assert!(
        ms[0].message.contains("\"ghost.metric\"") && ms[0].message.contains("no longer"),
        "{}",
        ms[0].message
    );
}

#[test]
fn orphaned_prefix_unused_const_and_duplicate_are_flagged() {
    let ws = Workspace::from_sources([
        (
            NAMES_PATH,
            "pub const LAT_PREFIX: &str = \"lat.\";\npub const DEAD_NAME: &str = \"dead.metric\";\npub const ALSO_DEAD: &str = \"dead.metric\";\n",
        ),
        (
            "crates/obs/src/consume.rs",
            "pub fn g(r: &R) -> u64 { r.scan(LAT_PREFIX) }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let ms = of_rule(&fs, Rule::MetricSchema);
    let msgs: Vec<&str> = ms.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("prefix \"lat.\"")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`DEAD_NAME`") && m.contains("referenced nowhere")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("declared by multiple constants")),
        "{msgs:?}"
    );
}

#[test]
fn metric_names_in_test_regions_and_test_trees_are_ignored() {
    let ws = Workspace::from_sources([
        (
            "crates/adapt/src/emit.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(t: &T) { t.count(\"only.in_test\"); }\n}\n",
        ),
        (
            "crates/obs/tests/golden.rs",
            "fn g(r: &R) -> u64 { r.counter(\"only.in_integration_test\") }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    assert!(of_rule(&fs, Rule::MetricSchema).is_empty(), "{fs:?}");
}

// ------------------------------------------------------ hot-path-reachability

#[test]
fn hot_path_call_to_allocating_same_crate_helper_is_flagged() {
    let ws = Workspace::from_sources([
        (
            "crates/adapt/src/hot.rs",
            "// lint:hot-path\npub fn check(x: u64) -> u64 { helper(x) }\n",
        ),
        (
            "crates/adapt/src/helper.rs",
            "pub fn helper(x: u64) -> u64 {\n    let v: Vec<u64> = Vec::new();\n    v.len() as u64 + x\n}\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let hp = of_rule(&fs, Rule::HotPathReachability);
    assert_eq!(hp.len(), 1, "{fs:?}");
    assert_eq!(hp[0].path, "crates/adapt/src/hot.rs");
    assert!(
        hp[0].message.contains("`helper(..)`")
            && hp[0].message.contains("crates/adapt/src/helper.rs:1"),
        "{}",
        hp[0].message
    );
}

#[test]
fn hot_path_cross_crate_eval_path_is_resolved() {
    let ws = Workspace::from_sources([
        (
            "crates/adapt/src/hot.rs",
            "// lint:hot-path\npub fn check(x: u64) -> u64 { eval_power::solve_all(x) }\n",
        ),
        (
            "crates/power/src/big.rs",
            "pub fn solve_all(x: u64) -> u64 { (0..x).collect::<Vec<_>>().len() as u64 }\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let hp = of_rule(&fs, Rule::HotPathReachability);
    assert_eq!(hp.len(), 1, "{fs:?}");
    assert!(hp[0].message.contains("solve_all"), "{}", hp[0].message);
}

#[test]
fn allocation_free_and_type_qualified_calls_stay_quiet() {
    let ws = Workspace::from_sources([
        (
            "crates/adapt/src/hot.rs",
            "// lint:hot-path\npub fn check(x: u64) -> u64 { clean(x) + Thing::make(x) }\n",
        ),
        (
            "crates/adapt/src/helper.rs",
            "pub fn clean(x: u64) -> u64 { x + 1 }\npub fn make(x: u64) -> u64 {\n    let v: Vec<u64> = Vec::new();\n    v.len() as u64 + x\n}\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    // `clean` does not allocate; `Thing::make` is type-qualified and
    // skipped even though a same-crate `make` allocates.
    assert!(of_rule(&fs, Rule::HotPathReachability).is_empty(), "{fs:?}");
}

#[test]
fn hot_path_reachability_findings_can_be_suppressed() {
    let ws = Workspace::from_sources([
        (
            "crates/adapt/src/hot.rs",
            "// lint:hot-path\n// lint:allow(hot-path-reachability): amortized, called once per chip\npub fn check(x: u64) -> u64 { helper(x) }\n",
        ),
        (
            "crates/adapt/src/helper.rs",
            "pub fn helper(x: u64) -> u64 {\n    let v: Vec<u64> = Vec::new();\n    v.len() as u64 + x\n}\n",
        ),
    ]);
    let fs = findings(&ws, &RegistryState::Ignore);
    assert!(of_rule(&fs, Rule::HotPathReachability).is_empty(), "{fs:?}");
    // ... and the marker counts as used, so no dead-suppression either.
    assert!(of_rule(&fs, Rule::DeadSuppression).is_empty(), "{fs:?}");
}

// ----------------------------------------------------------- dead-suppression

#[test]
fn unused_allow_marker_is_flagged() {
    let ws = Workspace::from_sources([(
        "crates/adapt/src/clean.rs",
        "// lint:allow(determinism): historical, the HashMap is long gone\npub fn f(x: u64) -> u64 { x }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let ds = of_rule(&fs, Rule::DeadSuppression);
    assert_eq!(ds.len(), 1, "{fs:?}");
    assert_eq!(ds[0].line, 1);
    assert!(
        ds[0].message.contains("suppresses no finding"),
        "{}",
        ds[0].message
    );
}

#[test]
fn used_allow_marker_is_not_flagged() {
    let ws = Workspace::from_sources([(
        "crates/adapt/src/map.rs",
        "// lint:allow(determinism): interned keys, order never observed\nuse std::collections::HashMap;\n// lint:allow(determinism): interned keys, order never observed\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Ignore);
    assert!(of_rule(&fs, Rule::Determinism).is_empty(), "{fs:?}");
    assert!(of_rule(&fs, Rule::DeadSuppression).is_empty(), "{fs:?}");
}

#[test]
fn unknown_rule_and_self_suppression_are_flagged() {
    let ws = Workspace::from_sources([(
        "crates/adapt/src/typo.rs",
        "// lint:allow(determinsim): typo never suppresses\n// lint:allow(dead-suppression): nice try\npub fn f(x: u64) -> u64 { x }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Ignore);
    let ds = of_rule(&fs, Rule::DeadSuppression);
    assert_eq!(ds.len(), 2, "{fs:?}");
    assert!(
        ds[0].message.contains("no known rule family"),
        "{}",
        ds[0].message
    );
    assert!(
        ds[1].message.contains("cannot be suppressed"),
        "{}",
        ds[1].message
    );
}

// ------------------------------------------------------------------ reporting

#[test]
fn json_report_carries_stable_ids_and_spans() {
    let ws = Workspace::from_sources([(
        "crates/adapt/src/emit.rs",
        "pub fn f(t: &T) { t.count(\"stray.metric\"); }\n",
    )]);
    let fs = findings(&ws, &RegistryState::Ignore);
    assert_eq!(fs.len(), 1);
    let json = eval_lint::report::render_json(&fs);
    assert!(json.contains("\"code\":\"EVL009\""), "{json}");
    assert!(json.contains("\"rule\":\"metric-schema\""), "{json}");
    assert!(json.contains(&format!("\"id\":\"{}\"", fs[0].id())), "{json}");
    // The span points at the string literal's column (1-based).
    assert!(json.contains("\"line\":1"), "{json}");
    assert!(json.contains("\"col\":27"), "{json}");
}
