//! Fixture: config-invariant violations and suppressions.
//! Scanned as if it were a file of `eval-adapt` (not `eval-units`).

/// BAD: shadows the paper constant with a different value.
pub const P_MAX: f64 = 25.0;

/// BAD: shadows even with the right value — must import from
/// eval_units::consts so there is a single source of truth.
pub const PE_MAX: f64 = 1e-4;

// lint:allow(config-invariants): deliberately different sweep ceiling for
// a what-if experiment, not the paper constraint.
pub const T_MAX_C: f64 = 100.0;

/// OK: unrelated constant names are not paper constants.
pub const N_RETRIES: usize = 3;
