//! Fixture for the atomic-artifacts rule: seeded in-place artifact
//! writes, an allowlisted staging write, an exempt append stream, and a
//! test region.

use std::path::Path;

pub fn torn_report(path: &Path, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body) // BAD: clobbers in place
}

pub fn torn_create(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path) // BAD: truncates in place
}

pub fn staged(path: &Path, body: &str) -> std::io::Result<()> {
    // lint:allow(atomic-artifacts): staging write, renamed over the target below
    std::fs::write(path.with_extension("tmp"), body)?;
    std::fs::rename(path.with_extension("tmp"), path)
}

pub fn append_log(path: &Path) -> std::io::Result<std::fs::File> {
    // OK: append streams are their own crash-safety story.
    std::fs::OpenOptions::new().append(true).create(true).open(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_in_tests_are_fine() {
        std::fs::write("/tmp/scratch", "x").ok();
    }
}
