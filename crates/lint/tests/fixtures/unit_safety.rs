//! Fixture: unit-safety violations and suppressions.
//! Scanned as if it were a file of `eval-power` (a unit-checked crate).

/// BAD: both parameters name physical units but are raw f64.
pub fn set_operating_point(vdd: f64, f_ghz: f64) -> bool {
    vdd > 0.0 && f_ghz > 0.0
}

/// BAD: unit name behind a reference.
pub fn log_rail(volts_out: &f64) -> f64 {
    *volts_out
}

// lint:allow(unit-safety): validating boundary constructor — raw numbers
// in, checked newtypes out (mirrors OperatingPoint::new).
pub fn parse_rail(vdd: f64) -> Result<f64, ()> {
    if (0.6..=1.2).contains(&vdd) {
        Ok(vdd)
    } else {
        Err(())
    }
}

/// OK: no unit hint in the name; plain ratios stay f64.
pub fn scale(alpha_f: f64, rho: f64) -> f64 {
    alpha_f * rho
}

/// OK: mentions vdd only in a string and a comment, not a parameter.
pub fn describe() -> &'static str {
    // the vdd: f64 in this comment must not trip the scanner
    "vdd: f64"
}
