//! Fixture: determinism violations and suppressions.
//! Scanned as if it were a file of `eval-core` (a simulation crate).

use std::collections::HashMap; // BAD: iteration order is seeded per-process

/// BAD: wall clock in a simulation crate.
pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

/// BAD: OS entropy.
pub fn seed() -> u64 {
    let rng = thread_rng();
    let _ = rng;
    0
}

// lint:allow(determinism): this map is write-only debug output, never
// iterated, so ordering cannot leak into results.
pub fn debug_sink() -> HashMap<u32, f64> {
    Default::default()
}

/// OK: BTree collections have stable iteration order.
pub fn stable() -> std::collections::BTreeMap<u32, f64> {
    std::collections::BTreeMap::new()
}
