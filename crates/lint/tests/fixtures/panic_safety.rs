//! Fixture: panic-safety violations, test exemption, and suppressions.
//! Scanned as if it were a file of `eval-adapt` (a library crate).

/// BAD: unwrap in library code.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

/// BAD: expect in library code.
pub fn last(xs: &[f64]) -> f64 {
    *xs.last().expect("non-empty")
}

/// BAD: reachable panic macro.
pub fn clamp(x: f64) -> f64 {
    if x.is_nan() {
        panic!("NaN input");
    }
    x.clamp(0.0, 1.0)
}

/// OK: typed error instead of panicking.
pub fn checked_first(xs: &[f64]) -> Result<f64, &'static str> {
    xs.first().copied().ok_or("empty slice")
}

pub fn invariant(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .reduce(f64::max)
        // lint:allow(panic-safety): callers guarantee a non-empty slice;
        // this mirrors the documented invariants in the real tree.
        .expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        // Exempt: inside a #[cfg(test)] region.
        assert_eq!(*[1.0].first().unwrap(), 1.0);
        assert_eq!(checked_first(&[2.0]).unwrap(), 2.0);
    }
}
