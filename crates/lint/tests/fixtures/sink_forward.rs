//! Fixture for the sink-forward rule: `TraceSink` impls must not swallow
//! records via wildcard arms or partial `Record` matches.
//!
//! Seeded violations (must fire): the `_ =>` arm in `DroppingSink` and the
//! partial match in `PartialSink`. Everything else must stay quiet.

pub enum Record {
    Event(u32),
    Metric(u32),
    Span { path: u32, nanos: u64 },
}

pub trait TraceSink {
    fn record(&self, rec: Record);
}

pub struct DroppingSink;

// BAD: the wildcard arm silently drops Metric and Span records.
impl TraceSink for DroppingSink {
    fn record(&self, rec: Record) {
        match rec {
            Record::Event(e) => {
                let _ = e;
            }
            _ => {}
        }
    }
}

pub struct PartialSink;

// BAD: matches on Record but never handles Record::Span.
impl TraceSink for PartialSink {
    fn record(&self, rec: Record) {
        if let Record::Event(e) = &rec {
            let _ = e;
        } else if let Record::Metric(m) = &rec {
            let _ = m;
        }
    }
}

pub struct ExhaustiveSink;

// GOOD: exhaustive match, every variant handled by name.
impl TraceSink for ExhaustiveSink {
    fn record(&self, rec: Record) {
        match rec {
            Record::Event(e) => {
                let _ = e;
            }
            Record::Metric(m) => {
                let _ = m;
            }
            Record::Span { path, nanos } => {
                let _ = (path, nanos);
            }
        }
    }
}

pub struct ForwardingSink<S>(S);

impl<S> ForwardingSink<S> {
    fn observe(&self, rec: &Record) {
        // GOOD: a wildcard in an *inherent* impl is fine — only the
        // TraceSink impl must be forwarding-complete.
        match rec {
            Record::Event(e) => {
                let _ = e;
            }
            _ => {}
        }
    }
}

// GOOD: forwards the record verbatim without matching at all.
impl<S: TraceSink> TraceSink for ForwardingSink<S> {
    fn record(&self, rec: Record) {
        self.observe(&rec);
        self.0.record(rec);
    }
}

pub struct AllowedSink;

// A sink that deliberately filters records, with the suppression marker.
// lint:allow(sink-forward)
impl TraceSink for AllowedSink {
    fn record(&self, rec: Record) {
        match rec {
            Record::Event(e) => {
                let _ = e;
            }
            // lint:allow(sink-forward)
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub struct TestSink;

    // Test-only sinks are exempt even with a wildcard arm.
    impl TraceSink for TestSink {
        fn record(&self, rec: Record) {
            match rec {
                Record::Event(e) => {
                    let _ = e;
                }
                _ => {}
            }
        }
    }
}
