//! Fixture: no-println violations, test exemption, and suppressions.
//! Scanned as if it were a file of `eval-core` (a library crate).

/// BAD: stdout from library code.
pub fn report(f_ghz: f64) {
    println!("f = {f_ghz}");
}

/// BAD: stderr from library code.
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// BAD: leftover debugging macro.
pub fn probe(x: f64) -> f64 {
    dbg!(x * 2.0)
}

/// OK: the text is returned for the caller (a bin crate) to print.
pub fn render(f_ghz: f64) -> String {
    format!("f = {f_ghz}")
}

/// OK: a comment or string mentioning println!(...) is not a call.
pub fn doc() -> &'static str {
    "use println!(..) only in bin crates"
}

pub fn progress(done: usize, total: usize) {
    // lint:allow(no-println): operator-facing progress line, mirrors the
    // justified uses in the real tree.
    eprintln!("{done}/{total}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_is_fine_in_tests() {
        // Exempt: inside a #[cfg(test)] region.
        println!("rendered: {}", render(4.0));
    }
}
