//! The zero-finding-diff guarantee for the eight ported rule families.
//!
//! The two-phase engine's lexer must produce the exact stripped line
//! view, `lint:allow` markers, comment-only flags, `#[cfg(test)]`
//! regions, and `lint:hot-path` bit that the original single-file
//! scanner produced — those five outputs are the *only* inputs the
//! ported rules consume, so agreement here implies finding-for-finding
//! agreement there.
//!
//! `legacy` below is the original scanner, embedded verbatim. It is
//! checked against the new lexer two ways: over every in-scope file of
//! the real workspace (the corpus no hand-written fixture can match),
//! and over randomized adversarial sources assembled from the lexical
//! fragments that historically break strippers (nested block comments,
//! raw strings with hashes, escaped quotes, lifetimes vs char
//! literals, markers inside strings).

use eval_lint::lexer::lex;
use eval_lint::Workspace;
use proptest::prelude::*;

/// The original scanner, verbatim from the single-file linter.
mod legacy {
    pub struct Scanned {
        pub code: Vec<String>,
        pub allows: Vec<Vec<String>>,
        pub comment_only: Vec<bool>,
        pub in_test: Vec<bool>,
        pub hot_path: bool,
    }

    pub fn scan(source: &str) -> Scanned {
        #[derive(PartialEq)]
        enum St {
            Code,
            Line,
            Block(u32),
            Str,
            RawStr(u32),
            Char,
        }
        let mut st = St::Code;
        let mut code = Vec::new();
        let mut allows = Vec::new();
        let mut comment_only = Vec::new();
        let mut hot_path = false;

        for raw in source.lines() {
            let b: Vec<char> = raw.chars().collect();
            let mut out = String::with_capacity(raw.len());
            let mut comment_text = String::new();
            let mut i = 0usize;
            if st == St::Line {
                st = St::Code;
            }
            while i < b.len() {
                let c = b[i];
                let next = b.get(i + 1).copied();
                match st {
                    St::Code => match (c, next) {
                        ('/', Some('/')) => {
                            st = St::Line;
                            comment_text.push_str(&raw[raw.len() - (b.len() - i)..]);
                            break;
                        }
                        ('/', Some('*')) => {
                            st = St::Block(1);
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        }
                        ('r', Some('"')) => {
                            st = St::RawStr(0);
                            out.push_str("r\"");
                            i += 2;
                        }
                        ('r', Some('#')) => {
                            let mut h = 0u32;
                            let mut j = i + 1;
                            while b.get(j) == Some(&'#') {
                                h += 1;
                                j += 1;
                            }
                            if b.get(j) == Some(&'"') {
                                st = St::RawStr(h);
                                for _ in i..=j {
                                    out.push(' ');
                                }
                                i = j + 1;
                            } else {
                                out.push(c);
                                i += 1;
                            }
                        }
                        ('"', _) => {
                            st = St::Str;
                            out.push('"');
                            i += 1;
                        }
                        ('\'', _) => {
                            if next == Some('\\') {
                                st = St::Char;
                                out.push('\'');
                                i += 2;
                            } else if b.get(i + 2) == Some(&'\'') {
                                out.push_str("' '");
                                i += 3;
                            } else {
                                out.push('\'');
                                i += 1;
                            }
                        }
                        _ => {
                            out.push(c);
                            i += 1;
                        }
                    },
                    St::Block(depth) => match (c, next) {
                        ('*', Some('/')) => {
                            st = if depth == 1 {
                                St::Code
                            } else {
                                St::Block(depth - 1)
                            };
                            comment_text.push(' ');
                            i += 2;
                        }
                        ('/', Some('*')) => {
                            st = St::Block(depth + 1);
                            i += 2;
                        }
                        _ => {
                            comment_text.push(c);
                            i += 1;
                        }
                    },
                    St::Str => match (c, next) {
                        ('\\', Some(_)) => i += 2,
                        ('"', _) => {
                            st = St::Code;
                            out.push('"');
                            i += 1;
                        }
                        _ => i += 1,
                    },
                    St::RawStr(h) => {
                        if c == '"' {
                            let mut ok = true;
                            for k in 0..h {
                                if b.get(i + 1 + k as usize) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                st = St::Code;
                                out.push('"');
                                i += 1 + h as usize;
                                continue;
                            }
                        }
                        i += 1;
                    }
                    St::Char => match (c, next) {
                        ('\\', Some(_)) => i += 2,
                        ('\'', _) => {
                            st = St::Code;
                            out.push('\'');
                            i += 1;
                        }
                        _ => i += 1,
                    },
                    St::Line => break,
                }
            }
            let mut line_allows = Vec::new();
            let mut rest = comment_text.as_str();
            while let Some(pos) = rest.find("lint:allow(") {
                let tail = &rest[pos + "lint:allow(".len()..];
                if let Some(end) = tail.find(')') {
                    line_allows.push(tail[..end].trim().to_string());
                    rest = &tail[end + 1..];
                } else {
                    break;
                }
            }
            if comment_text.contains("lint:hot-path") {
                hot_path = true;
            }
            comment_only.push(out.trim().is_empty());
            code.push(out);
            allows.push(line_allows);
        }

        let mut in_test = vec![false; code.len()];
        let mut i = 0usize;
        while i < code.len() {
            if code[i].contains("#[cfg(test)]") {
                let mut depth: i64 = 0;
                let mut opened = false;
                let mut j = i;
                while j < code.len() {
                    for c in code[j].chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    in_test[j] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }

        Scanned {
            code,
            allows,
            comment_only,
            in_test,
            hot_path,
        }
    }
}

/// Asserts the new lexer agrees with the legacy scanner on all five
/// rule-visible outputs for `source`.
fn assert_equivalent(label: &str, source: &str) -> Result<(), String> {
    let old = legacy::scan(source);
    let new = lex(source);
    if old.code.len() != new.lines.len() {
        return Err(format!(
            "{label}: line count {} vs {}",
            old.code.len(),
            new.lines.len()
        ));
    }
    for (i, line) in new.lines.iter().enumerate() {
        if old.code[i] != line.code {
            return Err(format!(
                "{label}:{}: stripped view diverged\n  legacy: {:?}\n  lexer:  {:?}",
                i + 1,
                old.code[i],
                line.code
            ));
        }
        if old.allows[i] != line.allows {
            return Err(format!(
                "{label}:{}: allows diverged ({:?} vs {:?})",
                i + 1,
                old.allows[i],
                line.allows
            ));
        }
        if old.comment_only[i] != line.comment_only {
            return Err(format!("{label}:{}: comment_only diverged", i + 1));
        }
        if old.in_test[i] != line.in_test {
            return Err(format!("{label}:{}: in_test diverged", i + 1));
        }
    }
    if old.hot_path != new.hot_path {
        return Err(format!("{label}: hot_path diverged"));
    }
    Ok(())
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn lexer_matches_legacy_scanner_on_the_whole_workspace() {
    let ws = Workspace::load(&workspace_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 30,
        "workspace walk looks broken: {} files",
        ws.files.len()
    );
    for f in &ws.files {
        if let Err(e) = assert_equivalent(&f.rel, &f.source) {
            panic!("{e}");
        }
    }
}

/// Lexical fragments that historically break strippers, composed
/// randomly. Index-addressed so the offline proptest shim (which has
/// no string strategy) can drive selection.
const FRAGMENTS: [&str; 24] = [
    "fn f(x: u64) -> u64 { x }",
    "let s = \"text with // not a comment\";",
    "let r = r\"raw \\ backslash\";",
    "let h = r#\"nested \"quotes\" here\"#;",
    "let c = 'x';",
    "let e = '\\n';",
    "let l: &'static str = \"life\";",
    "// line comment with lint:allow(determinism) marker",
    "/* block with lint:hot-path inside */",
    "/* nested /* block */ still comment */",
    "#[cfg(test)]",
    "mod tests {",
    "}",
    "{",
    "let m = \"lint:allow(panic-safety) inside a string\";",
    "use std::collections::HashMap;",
    "let v: Vec<u8> = Vec::new();",
    "println!(\"{}\", 1);",
    "let q = \"unterminated",
    "still inside the string\";",
    "/* unterminated block",
    "closes here */ let after = 1;",
    "let esc = \"tail\\\\\";",
    "  // lint:allow(unit-safety): justified",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn lexer_matches_legacy_scanner_on_adversarial_sources(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..40),
    ) {
        let source = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = assert_equivalent("generated", &source) {
            prop_assert!(false, "{} in source:\n{}", e, source);
        }
    }
}
