//! The tier-1 contract over the real tree: the workspace lints clean,
//! the committed metric registry is byte-identical to what
//! `--emit-schema` regenerates, and the metric-schema rule catches a
//! seeded cross-crate rename (the drift scenario the rule exists for)
//! via an in-memory overlay — no files are touched.

use std::path::PathBuf;

use eval_lint::{analyze, facts, load_registry, RegistryState, Rule, Workspace};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_lints_clean() {
    let findings = eval_lint::lint_workspace(&root()).expect("workspace loads");
    assert!(
        findings.is_empty(),
        "the tree must lint clean:\n{}",
        eval_lint::report::render_text(&findings)
    );
}

#[test]
fn the_committed_registry_is_byte_stable() {
    let root = root();
    let committed = std::fs::read_to_string(root.join(facts::REGISTRY_PATH))
        .expect("results/metric_schema.json is committed");
    let ws = Workspace::load(&root).expect("workspace loads");
    let regenerated = eval_lint::emit_schema(&ws).to_json();
    assert_eq!(
        committed, regenerated,
        "registry drifted: run `eval-lint --emit-schema {}` and commit",
        facts::REGISTRY_PATH
    );
    // And the registry must round-trip through the parser.
    let parsed = eval_lint::MetricSchema::parse(&committed).expect("registry parses");
    assert_eq!(parsed.to_json(), committed);
    assert!(parsed.metrics.len() >= 25, "{}", parsed.metrics.len());
}

#[test]
fn a_seeded_metric_rename_is_caught_on_both_sides() {
    let root = root();
    let mut ws = Workspace::load(&root).expect("workspace loads");
    let registry = load_registry(&root);
    assert!(matches!(registry, RegistryState::Loaded(_)));
    assert!(analyze(&ws, &registry).is_empty(), "baseline must be clean");

    // Seed the drift: one emitter renames campaign.chips_done.
    let campaign = "crates/adapt/src/campaign.rs";
    let original = ws
        .files
        .iter()
        .find(|f| f.rel == campaign)
        .expect("campaign.rs is in scope")
        .source
        .clone();
    let renamed = original.replace("names::CAMPAIGN_CHIPS_DONE", "\"campaign.done_chips\"");
    assert_ne!(original, renamed, "the emit site moved; update this test");
    ws.overlay(campaign, &renamed);

    let findings = analyze(&ws, &registry);
    let ms: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::MetricSchema)
        .collect();
    assert!(!ms.is_empty(), "the rename must not pass the lint gate");
    // The orphaned consumer: eval-obs still reads the old name.
    assert!(
        ms.iter().any(|f| f.path == "crates/obs/src/progress.rs"
            && f.message.contains("\"campaign.chips_done\"")
            && f.message.contains("emitted nowhere")),
        "{findings:?}"
    );
    // The unregistered emitter: the new name is known to nobody.
    assert!(
        ms.iter().any(|f| f.path == campaign
            && f.message.contains("\"campaign.done_chips\"")
            && f.message.contains("not listed in")),
        "{findings:?}"
    );
    // The raw literal itself is also flagged.
    assert!(
        ms.iter()
            .any(|f| f.path == campaign && f.message.contains("raw string literal")),
        "{findings:?}"
    );
}

#[test]
fn every_live_rule_family_reports_a_code() {
    // Finding IDs embed the family code; codes are unique and stable.
    let mut codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), Rule::ALL.len());
    assert_eq!(Rule::ALL[0].code(), "EVL001");
    assert_eq!(Rule::ALL[10].code(), "EVL011");
}
