//! Integration tests: each rule family fires on its fixture's seeded
//! violations and stays quiet on the allowlisted / clean parts.

use eval_lint::{lint_source, Finding, FileContext, Rule};

fn ctx(name: &str) -> FileContext {
    FileContext {
        crate_name: name.to_string(),
        is_test_code: false,
        is_bin: false,
    }
}

fn lint_fixture(file: &str, crate_name: &str) -> Vec<Finding> {
    let path = format!(
        "{}/tests/fixtures/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(&path).expect("fixture exists");
    lint_source(file, &source, &ctx(crate_name))
}

fn lines_for(diags: &[Finding], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn unit_safety_fires_and_allow_suppresses() {
    let d = lint_fixture("unit_safety.rs", "eval-power");
    let hits = lines_for(&d, Rule::UnitSafety);
    // set_operating_point flags both vdd and f_ghz; log_rail flags &f64.
    assert_eq!(hits.len(), 3, "{d:?}");
    // parse_rail (allowlisted), scale and describe stay quiet.
    assert!(d.iter().all(|x| !x.message.contains("alpha_f")), "{d:?}");
}

#[test]
fn unit_safety_is_scoped_to_unit_crates() {
    let d = lint_fixture("unit_safety.rs", "eval-uarch");
    assert!(lines_for(&d, Rule::UnitSafety).is_empty(), "{d:?}");
}

#[test]
fn determinism_fires_and_allow_suppresses() {
    let d = lint_fixture("determinism.rs", "eval-core");
    let hits = lines_for(&d, Rule::Determinism);
    // `use HashMap`, SystemTime, thread_rng fire; the HashMap return type
    // and body under the allow comment are suppressed. The BAD `use` line
    // carries a trailing comment but the token is in code.
    assert_eq!(hits.len(), 3, "{d:?}");
}

#[test]
fn determinism_only_applies_to_sim_crates() {
    let d = lint_fixture("determinism.rs", "eval-bench");
    assert!(lines_for(&d, Rule::Determinism).is_empty(), "{d:?}");
}

#[test]
fn panic_safety_fires_with_test_exemption_and_allow() {
    let d = lint_fixture("panic_safety.rs", "eval-adapt");
    let hits = lines_for(&d, Rule::PanicSafety);
    // unwrap, expect, panic! in library code fire; the allowlisted expect
    // and everything in #[cfg(test)] do not.
    assert_eq!(hits.len(), 3, "{d:?}");
}

#[test]
fn panic_safety_skips_test_code_files() {
    let path = format!(
        "{}/tests/fixtures/panic_safety.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("fixture exists");
    let test_ctx = FileContext {
        crate_name: "eval-adapt".to_string(),
        is_test_code: true,
        is_bin: false,
    };
    let d = lint_source("panic_safety.rs", &source, &test_ctx);
    assert!(lines_for(&d, Rule::PanicSafety).is_empty(), "{d:?}");
}

#[test]
fn no_println_fires_with_test_exemption_and_allow() {
    let d = lint_fixture("no_println.rs", "eval-core");
    let hits = lines_for(&d, Rule::NoPrintln);
    // println!, eprintln! and dbg! in library code fire; the returned
    // String, the string literal, the allowlisted eprintln! and the
    // #[cfg(test)] region do not.
    assert_eq!(hits.len(), 3, "{d:?}");
}

#[test]
fn no_println_covers_eval_trace_but_not_bin_crates() {
    let d = lint_fixture("no_println.rs", "eval-trace");
    assert_eq!(lines_for(&d, Rule::NoPrintln).len(), 3, "{d:?}");
    let d = lint_fixture("no_println.rs", "eval-bench");
    assert!(lines_for(&d, Rule::NoPrintln).is_empty(), "{d:?}");
    let d = lint_fixture("no_println.rs", "eval-lint");
    assert!(lines_for(&d, Rule::NoPrintln).is_empty(), "{d:?}");
}

#[test]
fn config_invariants_fire_and_allow_suppresses() {
    let d = lint_fixture("config_invariants.rs", "eval-adapt");
    let hits = lines_for(&d, Rule::ConfigInvariants);
    // P_MAX and PE_MAX shadows fire (even with the correct value); the
    // allowlisted T_MAX_C and unrelated N_RETRIES do not.
    assert_eq!(hits.len(), 2, "{d:?}");
}

#[test]
fn config_invariants_accept_the_real_units_crate() {
    // The actual eval-units source must satisfy the paper-value checks.
    let path = format!(
        "{}/../units/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("units crate exists");
    let d = lint_source("crates/units/src/lib.rs", &source, &ctx("eval-units"));
    assert!(
        lines_for(&d, Rule::ConfigInvariants).is_empty(),
        "{d:?}"
    );
}

#[test]
fn config_invariants_catch_a_drifted_paper_value() {
    // Mutate the real units source: PMAX 30 W -> 45 W.
    let path = format!(
        "{}/../units/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("units crate exists");
    let drifted = source.replace("Watts::raw(30.0)", "Watts::raw(45.0)");
    assert_ne!(source, drifted, "replacement must hit");
    let d = lint_source("crates/units/src/lib.rs", &drifted, &ctx("eval-units"));
    let hits = lines_for(&d, Rule::ConfigInvariants);
    assert_eq!(hits.len(), 1, "{d:?}");
    assert!(d[0].message.contains("P_MAX"), "{d:?}");
}

#[test]
fn sink_forward_fires_on_wildcard_and_partial_match() {
    let d = lint_fixture("sink_forward.rs", "eval-trace");
    let hits = lines_for(&d, Rule::SinkForward);
    // DroppingSink: wildcard arm + missing Metric/Span; PartialSink:
    // missing Span. ExhaustiveSink, ForwardingSink (wildcard only in its
    // inherent impl), the allowlisted AllowedSink and the #[cfg(test)]
    // TestSink stay quiet.
    assert_eq!(hits.len(), 3, "{d:?}");
    assert!(
        d.iter()
            .any(|x| x.rule == Rule::SinkForward && x.message.contains("Record::Span")),
        "{d:?}"
    );
    assert!(
        d.iter()
            .any(|x| x.rule == Rule::SinkForward && x.message.contains("wildcard")),
        "{d:?}"
    );
}

#[test]
fn sink_forward_skips_test_code_files() {
    let path = format!(
        "{}/tests/fixtures/sink_forward.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("fixture exists");
    let test_ctx = FileContext {
        crate_name: "eval-trace".to_string(),
        is_test_code: true,
        is_bin: false,
    };
    let d = lint_source("sink_forward.rs", &source, &test_ctx);
    assert!(lines_for(&d, Rule::SinkForward).is_empty(), "{d:?}");
}

#[test]
fn sink_forward_accepts_the_real_sinks() {
    // Collector, BufferSink (eval-trace) and ProgressSink (eval-obs) must
    // all satisfy the forwarding contract.
    for (rel, crate_name) in [
        ("../trace/src/sink.rs", "eval-trace"),
        ("../obs/src/progress.rs", "eval-obs"),
    ] {
        let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
        let source = std::fs::read_to_string(&path).expect("source exists");
        let d = lint_source(rel, &source, &ctx(crate_name));
        assert!(lines_for(&d, Rule::SinkForward).is_empty(), "{rel}: {d:?}");
    }
}

#[test]
fn atomic_artifacts_fire_with_allow_append_and_test_exemptions() {
    let d = lint_fixture("atomic_artifacts.rs", "eval-obs");
    let hits = lines_for(&d, Rule::AtomicArtifacts);
    // fs::write and File::create fire; the allowlisted staging write,
    // the OpenOptions append stream, and the #[cfg(test)] region do not.
    assert_eq!(hits.len(), 2, "{d:?}");
}

#[test]
fn atomic_artifacts_apply_to_bins_but_not_tests() {
    let path = format!(
        "{}/tests/fixtures/atomic_artifacts.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("fixture exists");
    let bin_ctx = FileContext {
        crate_name: "eval-bench".to_string(),
        is_test_code: true,
        is_bin: true,
    };
    let d = lint_source("atomic_artifacts.rs", &source, &bin_ctx);
    assert_eq!(lines_for(&d, Rule::AtomicArtifacts).len(), 2, "{d:?}");
    let test_ctx = FileContext {
        crate_name: "eval-bench".to_string(),
        is_test_code: true,
        is_bin: false,
    };
    let d = lint_source("atomic_artifacts.rs", &source, &test_ctx);
    assert!(lines_for(&d, Rule::AtomicArtifacts).is_empty(), "{d:?}");
}

#[test]
fn every_rule_family_is_exercised() {
    // The acceptance criterion: the tool reports >= 4 rule families.
    assert!(Rule::ALL.len() >= 4);
    let fired = [
        !lines_for(
            &lint_fixture("unit_safety.rs", "eval-power"),
            Rule::UnitSafety,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("determinism.rs", "eval-core"),
            Rule::Determinism,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("panic_safety.rs", "eval-adapt"),
            Rule::PanicSafety,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("config_invariants.rs", "eval-adapt"),
            Rule::ConfigInvariants,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("no_println.rs", "eval-core"),
            Rule::NoPrintln,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("sink_forward.rs", "eval-trace"),
            Rule::SinkForward,
        )
        .is_empty(),
        !lines_for(
            &lint_fixture("atomic_artifacts.rs", "eval-obs"),
            Rule::AtomicArtifacts,
        )
        .is_empty(),
    ];
    assert_eq!(fired, [true; 7]);
}
