//! Phase-1 fact extraction and the merged cross-file fact base.
//!
//! After lexing, each in-scope file is reduced to **facts**: metric-name
//! string literals, references to `eval_trace::names` constants, the
//! constant declarations themselves (in the names module), `fn`
//! definitions with an allocates-bit, call sites inside `lint:hot-path`
//! modules, and `lint:allow` suppression markers. Phase 2 merges the
//! per-file facts into a [`FactBase`] that the cross-file rules
//! (`metric-schema`, `hot-path-reachability`, `dead-suppression`)
//! evaluate.
//!
//! Facts are only collected outside `#[cfg(test)]` regions and outside
//! `tests/`, `examples/`, and `benches/` trees — but **including**
//! `src/bin` binaries, which are real metric emitters (the `hotpath`
//! bench bin writes `solver.cache.hit_rate` into the bench JSON that
//! `bench-check` gates on).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{LexedFile, TokenKind};
use crate::FileContext;

/// Workspace-relative path of the single metric-name source of truth.
pub const NAMES_MODULE: &str = "crates/trace/src/names.rs";

/// Workspace-relative path of the committed metric-name registry.
pub const REGISTRY_PATH: &str = "results/metric_schema.json";

/// A `pub const NAME: &str = "value";` declaration in the names module.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// The constant's identifier (`CAMPAIGN_CHIPS_DONE`).
    pub ident: String,
    /// The metric name it declares (`campaign.chips_done`).
    pub value: String,
    /// 0-based line of the declaration.
    pub line: usize,
}

/// A site where a metric name appears (literal or via constant).
#[derive(Debug, Clone)]
pub struct NameUse {
    /// The resolved metric name.
    pub name: String,
    /// 0-based line.
    pub line: usize,
    /// 0-based column.
    pub col: usize,
}

/// A `fn` definition and whether its body constructs `Vec`s.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Body contains an allocation token outside `#[cfg(test)]`.
    pub allocates: bool,
    /// The definition itself sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A call site inside a `lint:hot-path` module.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called function's name (last path segment).
    pub callee: String,
    /// 0-based line.
    pub line: usize,
    /// 0-based column.
    pub col: usize,
    /// Path segment directly before `::` (e.g. `eval_power`, `Self`).
    pub qualifier: Option<String>,
    /// A `.method(...)` call.
    pub is_method: bool,
}

/// Everything phase 1 extracts from one file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Metric-name string literals outside tests.
    pub metric_literals: Vec<NameUse>,
    /// SCREAMING_SNAKE identifier references outside tests (resolved
    /// against the names-module declarations during the merge).
    pub const_refs: Vec<(String, usize, usize)>,
    /// Names-module constant declarations (only for [`NAMES_MODULE`]).
    pub const_defs: Vec<ConstDef>,
    /// `fn` definitions (all files, test definitions marked).
    pub fn_defs: Vec<FnDef>,
    /// Call sites (only collected in `lint:hot-path` files).
    pub calls: Vec<CallSite>,
    /// `lint:allow(<rule>)` markers: (0-based line, rule name).
    pub allows: Vec<(usize, String)>,
    /// The file carries the `lint:hot-path` marker.
    pub hot_path: bool,
}

/// `Vec`-constructing tokens banned from hot-path modules (shared with
/// the `no-alloc-in-check` rule).
pub const ALLOC_TOKENS: [&str; 6] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".to_vec()",
    ".collect(",
    ".collect::<",
];

/// File extensions that disqualify a dotted string from being a metric
/// name (`"ckpt.jsonl"`, `"metrics.prom"`, ... are file names).
const NON_METRIC_EXTENSIONS: [&str; 15] = [
    "rs", "json", "jsonl", "md", "txt", "toml", "prom", "tmp", "log", "ckpt", "html", "lock",
    "yml", "yaml", "gz",
];

/// True when a string literal has the shape of a metric name: lowercase
/// start, dotted, `[a-z0-9_.-]` charset, no empty segments, and not a
/// file name.
pub fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_lowercase() {
        return false;
    }
    if !s.contains('.') {
        return false;
    }
    if !s
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '-'))
    {
        return false;
    }
    if s.split('.').any(|seg| seg.is_empty()) {
        return false;
    }
    let last = s.rsplit('.').next().unwrap_or("");
    !NON_METRIC_EXTENSIONS.contains(&last)
}

/// True when `rel` belongs to the fact-collection scope: not under a
/// `tests/`, `examples/`, or `benches/` tree (but `src/bin` binaries
/// are in scope — they emit real metrics).
pub fn facts_in_scope(rel: &str) -> bool {
    !rel.split('/')
        .any(|part| matches!(part, "tests" | "examples" | "benches"))
}

/// Identifier shape of a names-module constant reference.
fn is_const_ident(s: &str) -> bool {
    s.len() >= 3
        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.contains('_')
}

/// Keywords and ubiquitous constructors never treated as resolvable
/// call sites by `hot-path-reachability`.
const CALL_SKIP: [&str; 18] = [
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "Some", "None", "Ok",
    "Err", "Box", "Self", "drop", "matches", "assert",
];

/// Extracts facts from one lexed file. `collect_calls` is true for
/// `lint:hot-path` files; `collect_defs` is true for [`NAMES_MODULE`].
pub fn collect(rel: &str, _ctx: &FileContext, lexed: &LexedFile) -> FileFacts {
    let mut facts = FileFacts {
        hot_path: lexed.hot_path,
        ..FileFacts::default()
    };
    for (i, line) in lexed.lines.iter().enumerate() {
        for rule in &line.allows {
            facts.allows.push((i, rule.clone()));
        }
    }

    let toks = &lexed.tokens;
    let in_test = |line: usize| lexed.in_test(line);
    let is_names_module = rel == NAMES_MODULE;

    // Constant declarations in the names module: `const IDENT ... "v" ;`
    if is_names_module {
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i].kind == TokenKind::Ident
                && toks[i].text == "const"
                && toks[i + 1].kind == TokenKind::Ident
                && !in_test(toks[i].line)
            {
                let ident = toks[i + 1].text.clone();
                let line = toks[i + 1].line;
                // Scan to the terminating `;` for the defining literal.
                let mut j = i + 2;
                let mut value = None;
                while j < toks.len() {
                    match toks[j].kind {
                        TokenKind::Str if value.is_none() => value = Some(toks[j].text.clone()),
                        TokenKind::Punct if toks[j].text == ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(value) = value {
                    facts.const_defs.push(ConstDef { ident, value, line });
                }
                i = j;
            }
            i += 1;
        }
    }

    for (i, tok) in toks.iter().enumerate() {
        if in_test(tok.line) {
            continue;
        }
        match tok.kind {
            TokenKind::Str => {
                if is_metric_name(&tok.text) && !is_names_module {
                    facts.metric_literals.push(NameUse {
                        name: tok.text.clone(),
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
            TokenKind::Ident => {
                if is_const_ident(&tok.text) && !is_names_module {
                    facts
                        .const_refs
                        .push((tok.text.clone(), tok.line, tok.col));
                }
                // `fn name` definitions.
                if tok.text == "fn" {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokenKind::Ident {
                            if let Some(def) = fn_def_at(lexed, name_tok.line, &name_tok.text) {
                                facts.fn_defs.push(def);
                            }
                        }
                    }
                }
                // Call sites, hot-path files only: `ident (` not preceded
                // by `fn`, not a macro (`ident !(`).
                if lexed.hot_path
                    && toks.get(i + 1).is_some_and(|t| {
                        t.kind == TokenKind::Punct && t.text == "("
                    })
                    && !CALL_SKIP.contains(&tok.text.as_str())
                    && !is_const_ident(&tok.text)
                {
                    let prev = i.checked_sub(1).map(|p| &toks[p]);
                    let prev_is = |s: &str| {
                        prev.is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
                    };
                    let prev_is_ident =
                        |s: &str| prev.is_some_and(|t| t.kind == TokenKind::Ident && t.text == s);
                    if prev_is_ident("fn") {
                        // definition, not a call
                    } else {
                        let is_method = prev_is(".");
                        let qualifier = if i >= 3
                            && prev_is(":")
                            && toks[i - 2].kind == TokenKind::Punct
                            && toks[i - 2].text == ":"
                            && toks[i - 3].kind == TokenKind::Ident
                        {
                            Some(toks[i - 3].text.clone())
                        } else {
                            None
                        };
                        facts.calls.push(CallSite {
                            callee: tok.text.clone(),
                            line: tok.line,
                            col: tok.col,
                            qualifier,
                            is_method,
                        });
                    }
                }
            }
            TokenKind::Punct => {}
        }
    }
    facts
}

/// Resolves the body of the `fn` whose name sits on 0-based `line` and
/// reports whether it allocates. Returns `None` for bodyless trait
/// declarations (`fn f(...);`).
fn fn_def_at(lexed: &LexedFile, line: usize, name: &str) -> Option<FnDef> {
    // Accumulate the signature until its body brace or semicolon, the
    // same walk the unit-safety rule uses.
    let n = lexed.lines.len();
    let mut j = line;
    loop {
        let code = &lexed.lines[j].code;
        if code.contains('{') {
            break;
        }
        if code.contains(';') {
            return None;
        }
        j += 1;
        if j >= n {
            return None;
        }
    }
    // Brace-track from the signature's opening line.
    let mut depth = 0i64;
    let mut opened = false;
    let mut end = j;
    let mut allocates = false;
    for (k, l) in lexed.lines.iter().enumerate().skip(j) {
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && !l.in_test && ALLOC_TOKENS.iter().any(|t| l.code.contains(t)) {
            allocates = true;
        }
        if opened && depth <= 0 {
            end = k;
            break;
        }
        end = k;
    }
    let _ = end;
    Some(FnDef {
        name: name.to_string(),
        line,
        allocates,
        in_test: lexed.in_test(line),
    })
}

/// A file/line/column anchor for a merged fact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Workspace-relative path.
    pub path: String,
    /// 0-based line.
    pub line: usize,
    /// 0-based column.
    pub col: usize,
}

/// A `fn` definition in the merged base.
#[derive(Debug, Clone)]
pub struct FnDefSite {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 0-based line of the definition.
    pub line: usize,
    /// Body allocates outside `#[cfg(test)]`.
    pub allocates: bool,
    /// The defining file carries `lint:hot-path`.
    pub hot_path_file: bool,
}

/// The merged, workspace-wide fact base the cross-file rules consume.
#[derive(Debug, Default)]
pub struct FactBase {
    /// names-module declarations: ident → (def, value).
    pub defs: BTreeMap<String, ConstDef>,
    /// Reverse map: metric name → constant ident.
    pub value_to_ident: BTreeMap<String, String>,
    /// Exact metric names emitted: name → sites.
    pub emits: BTreeMap<String, Vec<Site>>,
    /// Exact metric names consumed (in `eval-obs`): name → sites.
    pub consumes: BTreeMap<String, Vec<Site>>,
    /// Prefix families consumed (constants named `*_PREFIX`).
    pub consume_prefixes: BTreeMap<String, Vec<Site>>,
    /// Raw metric-name literals outside the names module.
    pub literal_uses: Vec<(String, Site)>,
    /// Constants that are referenced anywhere.
    pub referenced_consts: BTreeSet<String>,
    /// `fn` definitions: crate → fn name → definition sites.
    pub fn_defs: BTreeMap<String, BTreeMap<String, Vec<FnDefSite>>>,
    /// Hot-path call sites: (crate, path, call).
    pub calls: Vec<(String, String, CallSite)>,
    /// All `lint:allow` markers: (path, 0-based line, rule name).
    pub allows: Vec<(String, usize, String)>,
}

/// Crates whose metric-name references are *consumptions* — the
/// observability/reporting side. Every other crate's references are
/// emissions.
fn is_consumer_crate(crate_name: &str) -> bool {
    crate_name == "eval-obs"
}

impl FactBase {
    /// Merges per-file facts into the workspace-wide base. `files`
    /// pairs each in-scope file's (path, crate, facts).
    pub fn merge(files: &[(String, String, FileFacts)]) -> FactBase {
        let mut fb = FactBase::default();
        // Pass 1: declarations (needed to resolve const refs).
        for (_, _, facts) in files {
            for def in &facts.const_defs {
                fb.value_to_ident
                    .insert(def.value.clone(), def.ident.clone());
                fb.defs.insert(def.ident.clone(), def.clone());
            }
        }
        // Pass 2: uses, defs, calls, allows.
        for (path, crate_name, facts) in files {
            let consumer = is_consumer_crate(crate_name);
            let site = |line: usize, col: usize| Site {
                path: path.clone(),
                line,
                col,
            };
            for lit in &facts.metric_literals {
                fb.literal_uses
                    .push((lit.name.clone(), site(lit.line, lit.col)));
                let bucket = if consumer {
                    &mut fb.consumes
                } else {
                    &mut fb.emits
                };
                bucket
                    .entry(lit.name.clone())
                    .or_default()
                    .push(site(lit.line, lit.col));
            }
            for (ident, line, col) in &facts.const_refs {
                let Some(def) = fb.defs.get(ident) else {
                    continue;
                };
                fb.referenced_consts.insert(ident.clone());
                if ident.ends_with("_PREFIX") {
                    fb.consume_prefixes
                        .entry(def.value.clone())
                        .or_default()
                        .push(site(*line, *col));
                } else {
                    let bucket = if consumer {
                        &mut fb.consumes
                    } else {
                        &mut fb.emits
                    };
                    bucket
                        .entry(def.value.clone())
                        .or_default()
                        .push(site(*line, *col));
                }
            }
            for def in &facts.fn_defs {
                if def.in_test {
                    continue;
                }
                fb.fn_defs
                    .entry(crate_name.clone())
                    .or_default()
                    .entry(def.name.clone())
                    .or_default()
                    .push(FnDefSite {
                        path: path.clone(),
                        line: def.line,
                        allocates: def.allocates,
                        hot_path_file: facts.hot_path,
                    });
            }
            for call in &facts.calls {
                fb.calls
                    .push((crate_name.clone(), path.clone(), call.clone()));
            }
            for (line, rule) in &facts.allows {
                fb.allows.push((path.clone(), *line, rule.clone()));
            }
        }
        fb
    }

    /// True when `name` is consumed exactly or covered by a consumed
    /// prefix family.
    pub fn is_consumed(&self, name: &str) -> bool {
        self.consumes.contains_key(name)
            || self
                .consume_prefixes
                .keys()
                .any(|p| name.starts_with(p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx() -> FileContext {
        FileContext {
            crate_name: "eval-adapt".to_string(),
            is_test_code: false,
            is_bin: false,
        }
    }

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("campaign.chips_done"));
        assert!(is_metric_name("decision.latency.global-dvfs_us"));
        assert!(!is_metric_name("ckpt.jsonl"));
        assert!(!is_metric_name("metrics.prom"));
        assert!(!is_metric_name("no_dot"));
        assert!(!is_metric_name("Has.Upper"));
        assert!(!is_metric_name("trailing."));
        assert!(!is_metric_name("0.5"));
    }

    #[test]
    fn scope_excludes_test_trees_but_keeps_bins() {
        assert!(facts_in_scope("crates/adapt/src/campaign.rs"));
        assert!(facts_in_scope("crates/bench/src/bin/hotpath.rs"));
        assert!(!facts_in_scope("crates/obs/tests/analyze_golden.rs"));
        assert!(!facts_in_scope("tests/end_to_end.rs"));
        assert!(!facts_in_scope("crates/trace/examples/summary.rs"));
    }

    #[test]
    fn literals_and_allows_are_extracted() {
        let src = "// lint:allow(metric-schema): migration pending\nfn f(t: &T) { t.count(\"campaign.chips_done\"); }\n#[cfg(test)]\nmod tests { fn g(t: &T) { t.count(\"only.in_test\"); } }\n";
        let facts = collect("crates/adapt/src/x.rs", &ctx(), &lex(src));
        assert_eq!(facts.metric_literals.len(), 1);
        assert_eq!(facts.metric_literals[0].name, "campaign.chips_done");
        assert_eq!(facts.allows, vec![(0, "metric-schema".to_string())]);
    }

    #[test]
    fn const_defs_parse_in_names_module() {
        let src = "/// doc\npub const CACHE_HIT: &str = \"cache.hit\";\npub const P: &str = \"a.b\";\n";
        let facts = collect(NAMES_MODULE, &ctx(), &lex(src));
        assert_eq!(facts.const_defs.len(), 2);
        assert_eq!(facts.const_defs[0].ident, "CACHE_HIT");
        assert_eq!(facts.const_defs[0].value, "cache.hit");
        assert_eq!(facts.const_defs[0].line, 1);
    }

    #[test]
    fn fn_defs_record_allocation() {
        let src = "fn clean(x: u64) -> u64 { x + 1 }\nfn dirty() -> Vec<u8> {\n    Vec::with_capacity(4)\n}\n";
        let facts = collect("crates/adapt/src/x.rs", &ctx(), &lex(src));
        let names: Vec<(&str, bool)> = facts
            .fn_defs
            .iter()
            .map(|d| (d.name.as_str(), d.allocates))
            .collect();
        assert_eq!(names, [("clean", false), ("dirty", true)]);
    }

    #[test]
    fn calls_collected_only_in_hot_path_files() {
        let src = "// lint:hot-path\nfn f() { helper(1); obj.method(2); eval_power::solve(3); Outcome::Error(4); }\n";
        let facts = collect("crates/adapt/src/x.rs", &ctx(), &lex(src));
        let callees: Vec<&str> = facts.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["helper", "method", "solve", "Error"]);
        assert_eq!(facts.calls[2].qualifier.as_deref(), Some("eval_power"));
        assert!(facts.calls[1].is_method);
        let cold = collect("crates/adapt/src/y.rs", &ctx(), &lex("fn f() { helper(1); }\n"));
        assert!(cold.calls.is_empty());
    }

    #[test]
    fn merge_routes_by_crate_role() {
        let names_src =
            "pub const X_Y: &str = \"x.y\";\npub const B_PREFIX: &str = \"p.q\";\n";
        let emit_src = "fn f(t: &T) { t.count(X_Y); }\n";
        let consume_src = "fn g(r: &R) -> u64 { r.counter(X_Y) + r.scan(B_PREFIX) }\n";
        let files = vec![
            (
                NAMES_MODULE.to_string(),
                "eval-trace".to_string(),
                collect(NAMES_MODULE, &ctx(), &lex(names_src)),
            ),
            (
                "crates/adapt/src/e.rs".to_string(),
                "eval-adapt".to_string(),
                collect("crates/adapt/src/e.rs", &ctx(), &lex(emit_src)),
            ),
            (
                "crates/obs/src/c.rs".to_string(),
                "eval-obs".to_string(),
                collect("crates/obs/src/c.rs", &ctx(), &lex(consume_src)),
            ),
        ];
        let fb = FactBase::merge(&files);
        assert!(fb.emits.contains_key("x.y"));
        assert!(fb.consumes.contains_key("x.y"));
        assert!(fb.consume_prefixes.contains_key("p.q"));
        assert!(fb.is_consumed("p.q.tail"));
        assert_eq!(fb.referenced_consts.len(), 2);
    }
}
