//! The metric-name registry: a committed, machine-readable inventory of
//! every metric the workspace emits or consumes.
//!
//! `eval-lint --emit-schema` regenerates `results/metric_schema.json`
//! from the merged fact base; tier-1 diffs the regenerated file against
//! the committed copy, so any metric added, renamed, or dropped shows
//! up as a one-line registry diff in review. The `metric-schema` rule
//! additionally cross-checks live facts against the committed registry
//! (stale entries, unregistered emitters).
//!
//! The JSON rendering is canonical — sorted entries, one per line,
//! fixed key order, `\n` endings — so regeneration is byte-stable.

use std::collections::BTreeSet;

use crate::facts::FactBase;

/// One exact metric name in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaEntry {
    /// The metric name (`campaign.chips_done`).
    pub name: String,
    /// The `eval_trace::names` constant declaring it, if any.
    pub const_ident: Option<String>,
    /// At least one emit site exists.
    pub emitted: bool,
    /// At least one consume site (exact or via prefix) exists.
    pub consumed: bool,
}

/// One consumed prefix family (constants named `*_PREFIX`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixEntry {
    /// The name prefix (`decision.latency.`).
    pub name: String,
    /// The declaring constant, if any.
    pub const_ident: Option<String>,
}

/// The full registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSchema {
    /// Exact metric names, sorted.
    pub metrics: Vec<SchemaEntry>,
    /// Consumed prefix families, sorted.
    pub prefixes: Vec<PrefixEntry>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts the string value of `"key":"..."` from a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(unescape(&rest[..end])),
            _ => end += 1,
        }
    }
    None
}

/// Extracts the boolean value of `"key":true/false` from a line.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

impl MetricSchema {
    /// Builds the registry from the merged fact base: every declared,
    /// emitted, or consumed metric name becomes an entry.
    pub fn from_facts(fb: &FactBase) -> MetricSchema {
        let mut names: BTreeSet<String> = BTreeSet::new();
        names.extend(
            fb.defs
                .values()
                .filter(|d| !d.ident.ends_with("_PREFIX"))
                .map(|d| d.value.clone()),
        );
        names.extend(fb.emits.keys().cloned());
        names.extend(fb.consumes.keys().cloned());
        let metrics = names
            .into_iter()
            .map(|name| SchemaEntry {
                const_ident: fb.value_to_ident.get(&name).cloned(),
                emitted: fb.emits.contains_key(&name),
                consumed: fb.is_consumed(&name),
                name,
            })
            .collect();
        let prefixes = fb
            .defs
            .values()
            .filter(|d| d.ident.ends_with("_PREFIX"))
            .map(|d| PrefixEntry {
                name: d.value.clone(),
                const_ident: Some(d.ident.clone()),
            })
            .collect();
        MetricSchema { metrics, prefixes }
    }

    /// Renders the canonical JSON form (byte-stable for a given fact
    /// base).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let konst = match &m.const_ident {
                Some(c) => format!("\"{}\"", escape(c)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"const\":{},\"emitted\":{},\"consumed\":{}}}{}\n",
                escape(&m.name),
                konst,
                m.emitted,
                m.consumed,
                if i + 1 == self.metrics.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"prefixes\": [\n");
        for (i, p) in self.prefixes.iter().enumerate() {
            let konst = match &p.const_ident {
                Some(c) => format!("\"{}\"", escape(c)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"const\":{}}}{}\n",
                escape(&p.name),
                konst,
                if i + 1 == self.prefixes.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the canonical JSON form (line-oriented; tolerant of
    /// whitespace but not of reordered keys — the file is only ever
    /// produced by [`MetricSchema::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<MetricSchema, String> {
        let mut schema = MetricSchema::default();
        let mut section = "";
        let mut saw_metrics = false;
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.contains("\"metrics\"") {
                section = "metrics";
                saw_metrics = true;
                continue;
            }
            if line.contains("\"prefixes\"") {
                section = "prefixes";
                continue;
            }
            if !line.starts_with('{') || !line.contains("\"name\"") {
                continue;
            }
            let name = str_field(line, "name")
                .ok_or_else(|| format!("line {}: entry without a \"name\"", no + 1))?;
            let const_ident = str_field(line, "const");
            match section {
                "metrics" => schema.metrics.push(SchemaEntry {
                    name,
                    const_ident,
                    emitted: bool_field(line, "emitted")
                        .ok_or_else(|| format!("line {}: missing \"emitted\"", no + 1))?,
                    consumed: bool_field(line, "consumed")
                        .ok_or_else(|| format!("line {}: missing \"consumed\"", no + 1))?,
                }),
                "prefixes" => schema.prefixes.push(PrefixEntry { name, const_ident }),
                _ => return Err(format!("line {}: entry outside a section", no + 1)),
            }
        }
        if !saw_metrics {
            return Err("no \"metrics\" section found".to_string());
        }
        Ok(schema)
    }

    /// The set of registered exact metric names.
    pub fn names(&self) -> BTreeSet<&str> {
        self.metrics.iter().map(|m| m.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricSchema {
        MetricSchema {
            metrics: vec![
                SchemaEntry {
                    name: "cache.hit".into(),
                    const_ident: Some("CACHE_HIT".into()),
                    emitted: true,
                    consumed: false,
                },
                SchemaEntry {
                    name: "campaign.chips_done".into(),
                    const_ident: Some("CAMPAIGN_CHIPS_DONE".into()),
                    emitted: true,
                    consumed: true,
                },
            ],
            prefixes: vec![PrefixEntry {
                name: "decision.latency.".into(),
                const_ident: Some("DECISION_LATENCY_PREFIX".into()),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let text = s.to_json();
        let parsed = MetricSchema::parse(&text).expect("parse");
        assert_eq!(parsed, s);
        // Canonical: re-rendering is byte-identical.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricSchema::parse("not json").is_err());
        assert!(MetricSchema::parse("{\"metrics\": [\n{\"noname\":1}\n]}").is_ok());
        assert!(MetricSchema::parse("{\"metrics\": [\n{\"name\":\"a.b\"}\n]}").is_err());
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(unescape("a\\\"b\\\\c"), "a\"b\\c");
    }
}
