//! `eval-lint`: run the workspace static-analysis pass and exit non-zero
//! on any finding. Intended to run from the workspace root (or pass the
//! root as the first argument):
//!
//! ```text
//! cargo run -p eval-lint --release [-- <workspace-root>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use eval_lint::{lint_workspace, Rule};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../..")))
        .unwrap_or_else(|| PathBuf::from("."));

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("eval-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &diags {
        println!("error: {d}");
    }
    let families: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
    println!(
        "eval-lint: {} finding(s); rule families checked: {}",
        diags.len(),
        families.join(", ")
    );
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
