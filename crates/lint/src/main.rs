//! `eval-lint`: run the workspace static-analysis pass and exit
//! non-zero on any finding.
//!
//! ```text
//! eval-lint [<workspace-root>] [--format text|json]
//! eval-lint [<workspace-root>] --emit-schema [<path>|-]
//! eval-lint --explain <rule>|all
//! eval-lint --rules-table
//! ```
//!
//! Without an explicit root, the binary resolves the workspace root
//! from `CARGO_MANIFEST_DIR/../..` (when run via `cargo run -p
//! eval-lint`) or by searching upward from the current directory for a
//! `Cargo.toml` containing a `[workspace]` section, and refuses to run
//! against anything that is not a workspace root — linting an empty or
//! wrong directory reports a deceptive "0 findings".

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use eval_lint::{analyze, facts, load_registry, report, Rule, Workspace};

/// True when `dir` holds the workspace-root `Cargo.toml` (the one with
/// a `[workspace]` table).
fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

/// Resolves and validates the workspace root. Explicit roots must
/// validate; otherwise fall back from the build-time manifest location
/// to an upward search from the current directory.
fn resolve_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        let root = root
            .canonicalize()
            .map_err(|e| format!("cannot resolve {}: {e}", root.display()))?;
        if !is_workspace_root(&root) {
            return Err(format!(
                "{} is not a workspace root (no Cargo.toml with a [workspace] section)",
                root.display()
            ));
        }
        return Ok(root);
    }
    if let Some(dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(dir).join("../..");
        if let Ok(candidate) = candidate.canonicalize() {
            if is_workspace_root(&candidate) {
                return Ok(candidate);
            }
        }
    }
    let mut dir = std::env::current_dir()
        .map_err(|e| format!("cannot read the current directory: {e}"))?;
    loop {
        if is_workspace_root(&dir) {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "no workspace root found: pass one explicitly (eval-lint <root>) or run \
                 from inside the workspace"
                    .to_string(),
            );
        }
    }
}

fn explain(which: &str) -> ExitCode {
    if which == "all" {
        for (i, rule) in Rule::ALL.into_iter().enumerate() {
            if i > 0 {
                println!("\n---\n");
            }
            println!("{}", report::explain(rule));
        }
        return ExitCode::SUCCESS;
    }
    match Rule::from_name(which) {
        Some(rule) => {
            println!("{}", report::explain(rule));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "eval-lint: unknown rule `{which}`; known rules: {}",
                Rule::ALL.map(|r| r.name()).join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

struct Args {
    root: Option<PathBuf>,
    format: String,
    emit_schema: Option<String>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        format: "text".to_string(),
        emit_schema: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--format" => {
                let v = argv.next().ok_or("--format needs a value (text|json)")?;
                if v != "text" && v != "json" {
                    return Err(format!("unknown format `{v}` (expected text|json)"));
                }
                args.format = v;
            }
            "--emit-schema" => {
                // Optional value; default to the committed registry path.
                args.emit_schema = Some(argv.next().unwrap_or_else(|| "-".to_string()));
            }
            "--explain" => {
                let v = argv.next().ok_or("--explain needs a rule name (or `all`)")?;
                std::process::exit(u8::from(explain(&v) != ExitCode::SUCCESS) as i32);
            }
            "--rules-table" => {
                print!("{}", report::rules_table());
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "usage: eval-lint [<workspace-root>] [--format text|json] \
                     [--emit-schema [<path>|-]] [--explain <rule>|all] [--rules-table]"
                );
                return Ok(None);
            }
            other if !other.starts_with('-') && args.root.is_none() => {
                args.root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("eval-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match resolve_root(args.root) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("eval-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("eval-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(target) = args.emit_schema {
        let json = eval_lint::emit_schema(&ws).to_json();
        if target == "-" {
            print!("{json}");
            return ExitCode::SUCCESS;
        }
        let path = if Path::new(&target).is_absolute() {
            PathBuf::from(&target)
        } else {
            root.join(&target)
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("eval-lint: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        // Stage-and-rename so a concurrent reader (or the tier-1 diff)
        // never sees a torn registry.
        let stage = path.with_extension("json.tmp");
        if let Err(e) = std::fs::write(&stage, &json).and_then(|()| std::fs::rename(&stage, &path))
        {
            eprintln!("eval-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "eval-lint: wrote {} ({} metrics)",
            path.display(),
            json.lines().filter(|l| l.contains("\"name\"")).count()
        );
        return ExitCode::SUCCESS;
    }

    let registry = load_registry(&root);
    let findings = analyze(&ws, &registry);

    if args.format == "json" {
        print!("{}", report::render_json(&findings));
    } else {
        for f in &findings {
            println!("error: {f} [{}]", f.id());
        }
        let families: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        println!(
            "eval-lint: {} finding(s); rule families checked: {}",
            findings.len(),
            families.join(", ")
        );
        if matches!(registry, eval_lint::RegistryState::Missing) {
            eprintln!(
                "eval-lint: note: no committed registry at {}; run `eval-lint --emit-schema {}`",
                facts::REGISTRY_PATH,
                facts::REGISTRY_PATH
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
