//! Workspace loading: file discovery, per-file lint context, and an
//! in-memory source overlay used by tests to lint hypothetical edits
//! (e.g. a seeded metric rename) without copying the tree.

use std::path::{Path, PathBuf};

use crate::FileContext;

/// One in-scope source file with its lint context.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The file's lint context (crate, test/bin classification).
    pub ctx: FileContext,
    /// The file's source text.
    pub source: String,
}

/// The set of in-scope source files the analysis runs over.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Files sorted by relative path.
    pub files: Vec<SourceFile>,
}

/// Maps a workspace-relative path to its lint context; `None` means the
/// file is out of scope (shim crates, the linter itself, non-Rust
/// files).
pub fn context_for(rel: &Path) -> Option<FileContext> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let crate_name = if parts.first() == Some(&"crates") {
        let dir = *parts.get(1)?;
        // The linter itself and the offline stand-ins for crates.io
        // packages are out of scope.
        if ["lint", "proptest", "criterion"].contains(&dir) {
            return None;
        }
        format!("eval-{dir}")
    } else if ["src", "tests", "examples", "benches"].contains(parts.first()?) {
        "eval".to_string()
    } else {
        return None;
    };
    let is_test_code = parts
        .iter()
        .any(|p| ["tests", "examples", "benches", "bin"].contains(p));
    let is_bin = parts.contains(&"bin");
    Some(FileContext {
        crate_name,
        is_test_code,
        is_bin,
    })
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

impl Workspace {
    /// Loads every in-scope `.rs` file under the workspace root.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk and file-read failures.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for top in ["crates", "src", "tests", "examples", "benches"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(&dir, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::new();
        for path in paths {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let Some(ctx) = context_for(rel) else {
                continue;
            };
            files.push(SourceFile {
                rel: rel
                    .iter()
                    .filter_map(|c| c.to_str())
                    .collect::<Vec<_>>()
                    .join("/"),
                ctx,
                source: std::fs::read_to_string(&path)?,
            });
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(relative path, source)`
    /// pairs; out-of-scope paths are skipped like on-disk files.
    pub fn from_sources<I, S>(pairs: I) -> Workspace
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        let mut files = Vec::new();
        for (rel, source) in pairs {
            let rel: String = rel.into();
            let Some(ctx) = context_for(Path::new(&rel)) else {
                continue;
            };
            files.push(SourceFile {
                rel,
                ctx,
                source: source.into(),
            });
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }

    /// Replaces (or adds) one file's source in memory — lint a
    /// hypothetical edit without touching disk. Out-of-scope paths are
    /// ignored.
    pub fn overlay(&mut self, rel: &str, source: &str) {
        let Some(ctx) = context_for(Path::new(rel)) else {
            return;
        };
        if let Some(f) = self.files.iter_mut().find(|f| f.rel == rel) {
            f.source = source.to_string();
            return;
        }
        self.files.push(SourceFile {
            rel: rel.to_string(),
            ctx,
            source: source.to_string(),
        });
        self.files.sort_by(|a, b| a.rel.cmp(&b.rel));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_maps_paths() {
        assert_eq!(
            context_for(Path::new("crates/power/src/solve.rs"))
                .unwrap()
                .crate_name,
            "eval-power"
        );
        assert!(context_for(Path::new("crates/lint/src/lib.rs")).is_none());
        assert!(context_for(Path::new("crates/proptest/src/lib.rs")).is_none());
        assert!(context_for(Path::new("README.md")).is_none());
        let t = context_for(Path::new("tests/determinism.rs")).unwrap();
        assert!(t.is_test_code);
        let b = context_for(Path::new("crates/bench/src/bin/hotpath.rs")).unwrap();
        assert!(b.is_bin && b.is_test_code);
    }

    #[test]
    fn overlay_replaces_in_memory_only() {
        let mut ws = Workspace::from_sources([
            ("crates/adapt/src/a.rs", "fn a() {}\n"),
            ("crates/adapt/src/b.rs", "fn b() {}\n"),
        ]);
        ws.overlay("crates/adapt/src/a.rs", "fn a2() {}\n");
        ws.overlay("crates/lint/src/lib.rs", "ignored\n");
        assert_eq!(ws.files.len(), 2);
        assert_eq!(ws.files[0].source, "fn a2() {}\n");
    }
}
