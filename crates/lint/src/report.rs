//! Finding rendering: stable IDs, the classic text format, the
//! machine-readable JSON format (`--format json`), rule explanations
//! (`--explain`), and the README rule table (`--rules-table`).
//!
//! ## Finding-ID stability contract
//!
//! A finding's ID is `<code>-<fingerprint>` where the fingerprint is a
//! 64-bit FNV-1a hash over `(rule name, path, message)`. Line and
//! column are deliberately **excluded**: unrelated edits that shift a
//! finding up or down keep its ID, so CI systems keyed on IDs do not
//! churn. The ID changes exactly when the finding's rule, file, or
//! message text changes — i.e. when it is a different finding.

use std::fmt::Write as _;

use crate::{Finding, Rule};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The stable 64-bit fingerprint of a finding (see the module docs for
/// the stability contract).
pub fn fingerprint(rule: Rule, path: &str, message: &str) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, rule.name().as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, path.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, message.as_bytes())
;
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings in the classic one-line-per-finding text format.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    out
}

/// Renders findings as a JSON document: a `version` tag and a
/// `findings` array with stable IDs and 1-based spans (`col` is null
/// for line-anchored findings).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let col = match f.col {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    {{\"id\":\"{}\",\"code\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.id(),
            f.rule.code(),
            f.rule.name(),
            json_escape(&f.path),
            f.line,
            col,
            json_escape(&f.message),
        );
        out.push_str(if i + 1 == findings.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The long-form explanation printed by `--explain <rule>`.
pub fn explain(rule: Rule) -> &'static str {
    match rule {
        Rule::UnitSafety => {
            "unit-safety (EVL001)\n\nPublic functions of the physics crates (eval-power, eval-timing,\neval-core) must not take raw `f64` parameters whose names say they\ncarry a physical unit (vdd, vbb, *_ghz, volt, watt, kelvin). Those\nvalues cross API boundaries as the eval-units newtypes (Volts, GHz,\nWatts, Kelvin, ErrorRate), whose constructors range-validate against\nthe paper's operating envelope. A raw f64 silently accepts a millivolt\nvalue where volts were meant.\n\nSuppress with `// lint:allow(unit-safety): <why>` on or above the\nsignature."
        }
        Rule::Determinism => {
            "determinism (EVL002)\n\nThe simulation crates must be bit-identical across runs: the\nMonte-Carlo campaign is the paper's experiment, and a re-run that\ndrifts cannot be compared against a committed baseline. Wall-clock and\nOS-entropy sources (thread_rng, from_entropy, SystemTime,\nInstant::now) and iteration-order-unstable collections (HashMap,\nHashSet) are banned; derive randomness from the seeded eval-rng stream\nand use BTreeMap/BTreeSet."
        }
        Rule::PanicSafety => {
            "panic-safety (EVL003)\n\nLibrary crates must not call .unwrap()/.expect(...) or the panicking\nmacros (panic!, todo!, unimplemented!) outside #[cfg(test)] regions.\nA panic mid-campaign loses hours of simulation; fallible paths return\ntyped errors that the campaign runner can checkpoint around.\nTest/bench/example code is exempt."
        }
        Rule::ConfigInvariants => {
            "config-invariants (EVL004)\n\nThe paper's constants (PMAX = 30 W, TMAX = 85 C, THMAX = 70 C,\nPEMAX = 1e-4 err/inst, sigma/mu = 0.09, phi = 0.5, f_nominal = 4 GHz)\nare defined exactly once, in eval_units::consts, with the paper's\nvalues. The rule checks presence and value there, and flags shadow\ndefinitions of the same constant names anywhere else — a shadow copy\nthat drifts is how reproductions silently diverge from the paper."
        }
        Rule::NoPrintln => {
            "no-println (EVL005)\n\nLibrary crates (and eval-trace itself) must not write to\nstdout/stderr (println!, print!, eprintln!, eprint!, dbg!).\nObservability goes through the eval-trace sinks so output stays\nstructured and machine-parseable; reports are returned as Strings for\nthe binary layer to print. The figure binaries (eval-bench bins) and\nthe lint CLI are the printing layer and are exempt."
        }
        Rule::NoAllocInCheck => {
            "no-alloc-in-check (EVL006)\n\nFiles that carry a `// lint:hot-path` marker (the memoized\noperating-point evaluators) must not construct Vecs outside\n#[cfg(test)]: the per-candidate check path runs millions of times per\ncampaign and a single allocation per call dominates the ladder sweep.\nBanned tokens: Vec::new(, Vec::with_capacity(, vec![, .to_vec(),\n.collect(, .collect::<."
        }
        Rule::SinkForward => {
            "sink-forward (EVL007)\n\n`impl TraceSink for ...` blocks must not swallow records: no `_ =>`\nwildcard arms, and an impl that matches on `Record` must handle all\nthree variants (Event, Metric, Span) explicitly. Decorator sinks\n(tee, filter, checkpoint) rely on every sink forwarding every variant\nto keep the JSONL stream bit-identical end to end."
        }
        Rule::AtomicArtifacts => {
            "atomic-artifacts (EVL008)\n\nFinal artifacts (traces, reports, metric snapshots, bench JSON) must\nnot be written with std::fs::write / File::create: a crash or a\nconcurrent reader mid-write sees a torn file. Use\neval_trace::write_atomic (stage + rename). Append-mode streams built\non OpenOptions are their own crash-safety story and are exempt."
        }
        Rule::MetricSchema => {
            "metric-schema (EVL009)\n\nCross-crate schema drift: the emitting side (campaign, adapt, core)\nand the consuming side (eval-obs progress/analyze/bench-check) agree\non metric names only by string equality, so a rename on one side\nstrands the other silently. Every metric name is declared once as an\neval_trace::names constant; this rule flags (a) raw metric-name\nstring literals outside the names module, (b) names consumed in\neval-obs but emitted nowhere, (c) names emitted but never consumed\nand not listed in the committed registry results/metric_schema.json,\n(d) consumed prefix families no emitted name falls under, (e) names\nconstants nothing references, (f) registry entries no longer backed\nby any declaration/emit/consume, and (g) two constants declaring the\nsame name. Regenerate the registry with `eval-lint --emit-schema`."
        }
        Rule::HotPathReachability => {
            "hot-path-reachability (EVL010)\n\nno-alloc-in-check (EVL006) only sees the marked file itself, so a\nhot-path function that calls an allocating helper in a neighbouring\nmodule passes. This rule closes the gap one call-graph hop out:\nevery function called from a lint:hot-path module must be\nallocation-free or itself live in a hot-path-marked (and therefore\nchecked) module. Resolution is name-based and deliberately\nconservative: unqualified and method calls resolve within the calling\ncrate, `eval_xxx::` paths resolve cross-crate, `Type::` paths are\nskipped, and a finding fires only when every candidate definition\nallocates."
        }
        Rule::DeadSuppression => {
            "dead-suppression (EVL011)\n\nEvery `// lint:allow(<rule>)` marker must suppress at least one\nfinding this run. A marker that suppresses nothing is stale — the\ncode it justified was fixed or moved — and stale markers are how real\nviolations sneak in later. The rule also flags markers naming unknown\nrule families (typos never suppress anything). Dead-suppression\nfindings cannot themselves be suppressed; delete the marker instead."
        }
    }
}

/// The one-line summary used in the README rule table.
pub fn summary(rule: Rule) -> &'static str {
    match rule {
        Rule::UnitSafety => "raw `f64` parameters with unit-carrying names in the physics crates; use eval-units newtypes",
        Rule::Determinism => "entropy, wall-clock, or hash-ordered collections in simulation crates",
        Rule::PanicSafety => "`unwrap`/`expect`/panicking macros in library code outside tests",
        Rule::ConfigInvariants => "paper constants missing, wrong, or redefined outside `eval_units::consts`",
        Rule::NoPrintln => "stdout/stderr macros in library code; observability goes through eval-trace sinks",
        Rule::NoAllocInCheck => "`Vec` construction inside `lint:hot-path` modules",
        Rule::SinkForward => "`TraceSink` impls with wildcard arms or unhandled `Record` variants",
        Rule::AtomicArtifacts => "in-place artifact writes (`fs::write`/`File::create`); use `write_atomic`",
        Rule::MetricSchema => "metric-name drift between emitters, eval-obs consumers, and the committed registry",
        Rule::HotPathReachability => "hot-path code calling allocating functions defined in unmarked modules",
        Rule::DeadSuppression => "`lint:allow` markers that suppress nothing or name unknown rules",
    }
}

/// Renders the markdown rule table embedded in the README (generated,
/// not hand-maintained: `eval-lint --rules-table`).
pub fn rules_table() -> String {
    let mut out = String::new();
    out.push_str("| Code | Rule | Flags |\n|------|------|-------|\n");
    for rule in Rule::ALL {
        let _ = writeln!(
            out,
            "| {} | `{}` | {} |",
            rule.code(),
            rule.name(),
            summary(rule)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            path: "crates/adapt/src/campaign.rs".into(),
            line: 42,
            col: Some(7),
            rule: Rule::MetricSchema,
            message: "metric name \"x.y\" is a raw literal".into(),
        }
    }

    #[test]
    fn ids_are_stable_across_line_moves() {
        let a = finding();
        let mut b = finding();
        b.line = 99;
        b.col = None;
        assert_eq!(a.id(), b.id());
        let mut c = finding();
        c.message.push('!');
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn id_embeds_the_rule_code() {
        assert!(finding().id().starts_with("EVL009-"));
    }

    #[test]
    fn json_escapes_quotes() {
        let text = render_json(&[finding()]);
        assert!(text.contains("\\\"x.y\\\""), "{text}");
        assert!(text.contains("\"line\":42"), "{text}");
        assert!(text.contains("\"col\":7"), "{text}");
        assert!(text.contains("\"version\": 1"), "{text}");
    }

    #[test]
    fn every_rule_has_explain_and_summary() {
        for rule in Rule::ALL {
            assert!(explain(rule).contains(rule.name()), "{rule}");
            assert!(!summary(rule).is_empty());
        }
        assert_eq!(rules_table().lines().count(), 2 + Rule::ALL.len());
    }
}
