//! # eval-lint
//!
//! A std-only, token/line-level static-analysis pass over the EVAL
//! workspace. It enforces seven rule families that the type system alone
//! cannot (or that we chose to enforce by convention):
//!
//! * **unit-safety** — public functions of the physics crates
//!   (`eval-power`, `eval-timing`, `eval-core`) must not take raw `f64`
//!   parameters whose names say they carry a physical unit (`vdd`, `vbb`,
//!   `*_ghz`, `volts`, `watts`, ...); those cross API boundaries as the
//!   `eval-units` newtypes with range-validated constructors.
//! * **determinism** — the simulation crates must not use wall-clock or
//!   OS-entropy sources (`thread_rng`, `from_entropy`, `SystemTime`,
//!   `Instant::now`) nor iteration-order-unstable collections
//!   (`HashMap`, `HashSet`); the Monte-Carlo campaign must be bit-identical
//!   across runs.
//! * **panic-safety** — library crates must not call `.unwrap()` /
//!   `.expect(...)` or the panicking macros outside `#[cfg(test)]` regions;
//!   fallible paths return typed errors.
//! * **config-invariants** — the paper's constants (PMAX = 30 W,
//!   TMAX = 85 °C, PEMAX = 1e-4 err/inst, σ/μ = 0.09, φ = 0.5) are defined
//!   exactly once, in `eval_units::consts`, with the paper's values;
//!   shadow definitions elsewhere are flagged.
//! * **no-println** — library crates must not write to stdout/stderr
//!   (`println!`, `eprintln!`, `print!`, `eprint!`, `dbg!`); observability
//!   goes through the `eval-trace` sinks so output stays structured and
//!   machine-parseable. The figure binaries (`eval-bench` bins) and the
//!   lint CLI are the printing layer and are exempt.
//! * **no-alloc-in-check** — files that carry a `// lint:hot-path` marker
//!   comment (the memoized operating-point evaluators) must not construct
//!   `Vec`s outside `#[cfg(test)]` regions: the per-candidate `check` path
//!   runs millions of times per campaign and must stay allocation-free.
//! * **sink-forward** — `impl TraceSink for ...` blocks must not swallow
//!   records: no `_ =>` wildcard arms, and an impl that matches on
//!   `Record` must handle all three variants (`Event`, `Metric`, `Span`)
//!   explicitly. A sink that silently drops a variant breaks the
//!   bit-identical trace contract downstream decorators rely on.
//! * **atomic-artifacts** — library and binary crates must not write
//!   final artifacts with `std::fs::write` / `File::create`: a crash (or
//!   a concurrent reader) mid-write leaves a torn file. Artifacts go
//!   through `eval_trace::write_atomic` (stage + rename); append-mode
//!   streams built on `OpenOptions` are their own crash-safety story and
//!   are not flagged.
//!
//! A finding can be suppressed with a `// lint:allow(<rule>)` comment on
//! the offending line or in the contiguous comment block directly above
//! it — every suppression in the tree carries a justification.
//!
//! The pass is deliberately lexical: comments and string literals are
//! stripped by a small scanner, `#[cfg(test)]` items are tracked by brace
//! depth, and everything else is substring/shape matching. That keeps the
//! tool dependency-free (no syn, no proc-macro machinery) and fast enough
//! to run as a tier-1 gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The seven rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Raw `f64` where a unit newtype is required.
    UnitSafety,
    /// Entropy / wall-clock / hash-order sources in simulation crates.
    Determinism,
    /// `unwrap`/`expect`/panicking macros in library code.
    PanicSafety,
    /// Paper constants redefined outside `eval_units::consts`.
    ConfigInvariants,
    /// stdout/stderr macros in library code (use eval-trace sinks).
    NoPrintln,
    /// `Vec` construction in `lint:hot-path`-marked modules.
    NoAllocInCheck,
    /// `TraceSink` impls that swallow or drop `Record` variants.
    SinkForward,
    /// Torn-file-prone writes (`fs::write`/`File::create`) for artifacts.
    AtomicArtifacts,
}

impl Rule {
    /// All rule families, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::UnitSafety,
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::ConfigInvariants,
        Rule::NoPrintln,
        Rule::NoAllocInCheck,
        Rule::SinkForward,
        Rule::AtomicArtifacts,
    ];

    /// The kebab-case name used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitSafety => "unit-safety",
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::ConfigInvariants => "config-invariants",
            Rule::NoPrintln => "no-println",
            Rule::NoAllocInCheck => "no-alloc-in-check",
            Rule::SinkForward => "sink-forward",
            Rule::AtomicArtifacts => "atomic-artifacts",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule violated at a file/line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as reported (workspace-relative when produced by the walker).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule family.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// What the linter needs to know about a file before scanning it.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Cargo package name the file belongs to (`eval` for the root crate).
    pub crate_name: String,
    /// Test/bench/example code: exempt from panic-safety.
    pub is_test_code: bool,
    /// A `src/bin/*` binary: counted as test code for panic-safety and
    /// printing, but its artifact writes are real and must be atomic.
    pub is_bin: bool,
}

/// Crates whose public `f64` parameters are checked for unit names.
const UNIT_CRATES: [&str; 3] = ["eval-power", "eval-timing", "eval-core"];

/// Crates that participate in the deterministic simulation pipeline.
const SIM_CRATES: [&str; 8] = [
    "eval-rng",
    "eval-units",
    "eval-variation",
    "eval-timing",
    "eval-power",
    "eval-uarch",
    "eval-fuzzy",
    "eval-core",
];

/// Simulation crates plus the campaign layer (also deterministic).
fn is_sim_crate(name: &str) -> bool {
    SIM_CRATES.contains(&name) || name == "eval-adapt"
}

/// Library crates subject to panic-safety (everything in the pipeline;
/// `eval-bench` is a figure-printing bin crate and exempt).
fn is_library_crate(name: &str) -> bool {
    is_sim_crate(name) || name == "eval"
}

/// Parameter-name fragments that indicate a physical unit.
const UNIT_NAME_HINTS: [&str; 6] = ["vdd", "vbb", "ghz", "volt", "watt", "kelvin"];

/// Tokens forbidden by the determinism rule.
const NONDET_TOKENS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "SystemTime",
    "Instant::now",
    "HashMap",
    "HashSet",
];

/// Tokens forbidden by the panic-safety rule.
const PANIC_TOKENS: [&str; 5] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

/// Tokens forbidden by the no-println rule. `eprintln!(` contains
/// `println!(` as a substring, so matches require a non-identifier
/// character before the token (see [`has_macro_token`]).
const PRINT_TOKENS: [&str; 5] = [
    "println!(",
    "print!(",
    "eprintln!(",
    "eprint!(",
    "dbg!(",
];

/// Crates subject to no-println: the library pipeline plus `eval-trace`
/// itself (its reports are returned as `String`s for the caller to print).
fn is_println_free_crate(name: &str) -> bool {
    is_library_crate(name) || name == "eval-trace"
}

/// Paper constants: name, expected defining literal, paper meaning.
const PAPER_CONSTS: [(&str, &str, &str); 7] = [
    ("P_MAX", "30.0", "PMAX = 30 W per processor"),
    ("T_MAX_C", "85.0", "TMAX = 85 C junction"),
    ("TH_MAX_C", "70.0", "THMAX = 70 C heatsink"),
    ("PE_MAX", "1e-4", "PEMAX = 1e-4 errors/instruction"),
    ("SIGMA_OVER_MU", "0.09", "sigma/mu = 0.09 total variation"),
    ("PHI", "0.5", "phi = 0.5 of chip width correlation range"),
    ("F_NOMINAL", "4.0", "nominal frequency 4 GHz"),
];

/// A source file after lexical preprocessing.
struct Scanned {
    /// Lines with comments and string/char literal *contents* blanked out
    /// (structure — line count and column positions — is preserved).
    code: Vec<String>,
    /// Per line: rule names suppressed via `lint:allow(...)` comments.
    allows: Vec<Vec<String>>,
    /// Per line: true when the line holds no code at all (comment/blank).
    comment_only: Vec<bool>,
    /// Per line: true inside a `#[cfg(test)]` item's braces.
    in_test: Vec<bool>,
    /// True when any comment in the file contains `lint:hot-path`.
    hot_path: bool,
}

/// Strips comments and literal contents while recording `lint:allow`
/// markers, then marks `#[cfg(test)]` brace regions.
fn scan(source: &str) -> Scanned {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut code = Vec::new();
    let mut allows = Vec::new();
    let mut comment_only = Vec::new();
    let mut hot_path = false;

    for raw in source.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut out = String::with_capacity(raw.len());
        let mut comment_text = String::new();
        let mut i = 0usize;
        // Line comments never span lines.
        if st == St::Line {
            st = St::Code;
        }
        while i < b.len() {
            let c = b[i];
            let next = b.get(i + 1).copied();
            match st {
                St::Code => match (c, next) {
                    ('/', Some('/')) => {
                        st = St::Line;
                        comment_text.push_str(&raw[raw.len() - (b.len() - i)..]);
                        break;
                    }
                    ('/', Some('*')) => {
                        st = St::Block(1);
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    }
                    ('r', Some('"')) => {
                        st = St::RawStr(0);
                        out.push_str("r\"");
                        i += 2;
                    }
                    ('r', Some('#')) => {
                        // r#"..."# or r#ident; count hashes then expect '"'.
                        let mut h = 0u32;
                        let mut j = i + 1;
                        while b.get(j) == Some(&'#') {
                            h += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            st = St::RawStr(h);
                            for _ in i..=j {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    }
                    ('"', _) => {
                        st = St::Str;
                        out.push('"');
                        i += 1;
                    }
                    ('\'', _) => {
                        // Char literal vs lifetime: a literal is '\x', 'c',
                        // or multi-char escape ending in a quote nearby.
                        if next == Some('\\') {
                            st = St::Char;
                            out.push('\'');
                            i += 2;
                        } else if b.get(i + 2) == Some(&'\'') {
                            out.push_str("' '");
                            i += 3;
                        } else {
                            out.push('\'');
                            i += 1; // lifetime
                        }
                    }
                    _ => {
                        out.push(c);
                        i += 1;
                    }
                },
                St::Block(depth) => match (c, next) {
                    ('*', Some('/')) => {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        comment_text.push(' ');
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        st = St::Block(depth + 1);
                        i += 2;
                    }
                    _ => {
                        comment_text.push(c);
                        i += 1;
                    }
                },
                St::Str => match (c, next) {
                    ('\\', Some(_)) => i += 2,
                    ('"', _) => {
                        st = St::Code;
                        out.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                },
                St::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if b.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            st = St::Code;
                            out.push('"');
                            i += 1 + h as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                St::Char => match (c, next) {
                    ('\\', Some(_)) => i += 2,
                    ('\'', _) => {
                        st = St::Code;
                        out.push('\'');
                        i += 1;
                    }
                    _ => i += 1,
                },
                St::Line => break,
            }
        }
        let mut line_allows = Vec::new();
        let mut rest = comment_text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let tail = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = tail.find(')') {
                line_allows.push(tail[..end].trim().to_string());
                rest = &tail[end + 1..];
            } else {
                break;
            }
        }
        if comment_text.contains("lint:hot-path") {
            hot_path = true;
        }
        comment_only.push(out.trim().is_empty());
        code.push(out);
        allows.push(line_allows);
    }

    // Mark #[cfg(test)] brace regions.
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // Find the opening brace of the next item and track depth.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                for c in code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                in_test[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    Scanned {
        code,
        allows,
        comment_only,
        in_test,
        hot_path,
    }
}

/// True when `rule` is suppressed at `line` (0-based): an allow marker on
/// the line itself or in the contiguous comment block directly above.
fn allowed(s: &Scanned, line: usize, rule: Rule) -> bool {
    let hit = |l: usize| s.allows[l].iter().any(|a| a == rule.name());
    if hit(line) {
        return true;
    }
    let mut l = line;
    while l > 0 && s.comment_only[l - 1] {
        l -= 1;
        if hit(l) {
            return true;
        }
    }
    false
}

fn push(
    out: &mut Vec<Diagnostic>,
    s: &Scanned,
    path: &str,
    line: usize,
    rule: Rule,
    message: String,
) {
    if !allowed(s, line, rule) {
        out.push(Diagnostic {
            path: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    }
}

/// Lints one file's source under the given context. `path` is only used
/// to label diagnostics.
pub fn lint_source(path: &str, source: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let s = scan(source);
    let mut out = Vec::new();

    if UNIT_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_code {
        unit_safety(&s, path, &mut out);
    }
    if is_sim_crate(&ctx.crate_name) {
        determinism(&s, path, &mut out);
    }
    if is_library_crate(&ctx.crate_name) && !ctx.is_test_code {
        panic_safety(&s, path, &mut out);
    }
    if is_println_free_crate(&ctx.crate_name) && !ctx.is_test_code {
        no_println(&s, path, &mut out);
    }
    if s.hot_path && !ctx.is_test_code {
        no_alloc_in_check(&s, path, &mut out);
    }
    if !ctx.is_test_code {
        sink_forward(&s, path, &mut out);
    }
    if !ctx.is_test_code || ctx.is_bin {
        atomic_artifacts(&s, path, &mut out);
    }
    config_invariants(&s, path, ctx, &mut out);
    out
}

/// Write calls that clobber the target in place: a crash mid-write (or a
/// concurrent reader) sees a torn file.
const TORN_WRITE_TOKENS: [&str; 2] = ["fs::write(", "File::create("];

/// Flags in-place artifact writes outside `#[cfg(test)]` regions. Final
/// artifacts (traces, reports, metric snapshots, bench JSON) must go
/// through `eval_trace::write_atomic`; incremental append logs built on
/// `OpenOptions` are exempt by construction.
fn atomic_artifacts(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.code.iter().enumerate() {
        if s.in_test[i] {
            continue;
        }
        for tok in TORN_WRITE_TOKENS {
            if line.contains(tok) {
                let shown = tok.trim_end_matches('(');
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::AtomicArtifacts,
                    format!(
                        "`{shown}` clobbers the target in place and can leave a \
                         torn file on crash; use eval_trace::write_atomic (or \
                         OpenOptions for append streams) or justify with \
                         lint:allow(atomic-artifacts)"
                    ),
                );
            }
        }
    }
}

/// The three `Record` variants every sink must handle explicitly when it
/// matches on the record at all.
const RECORD_VARIANTS: [&str; 3] = ["Record::Event", "Record::Metric", "Record::Span"];

/// True when a (comment-stripped) line holds a wildcard match arm: a
/// pattern that is `_`, or an or-pattern ending in `| _`, before `=>`.
fn is_wildcard_arm(line: &str) -> bool {
    let Some(head) = line.split("=>").next() else {
        return false;
    };
    if !line.contains("=>") {
        return false;
    }
    let head = head.trim();
    head == "_" || head.ends_with("| _") || head.ends_with("|_")
}

/// Flags `impl ... TraceSink for ...` blocks that can swallow records:
/// wildcard `_ =>` arms, or a `match` over `Record` that does not name all
/// three variants. The trace contract (decorators keep the JSONL stream
/// bit-identical) only holds if every sink forwards every variant.
fn sink_forward(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < s.code.len() {
        let starts_impl = !s.in_test[i]
            && s.code[i].contains("TraceSink for")
            && (s.code[i].contains("impl")
                || (i > 0 && s.code[i - 1].contains("impl")));
        if !starts_impl {
            i += 1;
            continue;
        }
        let impl_line = i;
        // Walk to the end of the impl's brace region.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = i;
        let mut region = String::new();
        'outer: for (j, line) in s.code.iter().enumerate().skip(i) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened {
                region.push_str(line);
                region.push('\n');
                if j > impl_line && is_wildcard_arm(line) {
                    push(
                        out,
                        s,
                        path,
                        j,
                        Rule::SinkForward,
                        "wildcard `_ =>` arm inside a `TraceSink` impl can silently \
                         swallow record variants"
                            .to_string(),
                    );
                }
            }
            if opened && depth <= 0 {
                end = j;
                break 'outer;
            }
            end = j;
        }
        if region.contains("Record::") {
            let missing: Vec<&str> = RECORD_VARIANTS
                .iter()
                .filter(|v| !region.contains(*v))
                .copied()
                .collect();
            if !missing.is_empty() {
                push(
                    out,
                    s,
                    path,
                    impl_line,
                    Rule::SinkForward,
                    format!(
                        "`TraceSink` impl matches on `Record` but never handles {}; \
                         sinks must forward every variant",
                        missing.join(", ")
                    ),
                );
            }
        }
        i = end + 1;
    }
}

/// `Vec`-constructing tokens banned from hot-path modules.
const ALLOC_TOKENS: [&str; 6] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".to_vec()",
    ".collect(",
    ".collect::<",
];

/// Flags `Vec` construction outside `#[cfg(test)]` in files that carry a
/// `// lint:hot-path` marker. Those modules sit on the per-candidate
/// operating-point `check` path, which runs millions of times per campaign
/// and must not allocate.
fn no_alloc_in_check(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.code.iter().enumerate() {
        if s.in_test[i] {
            continue;
        }
        for tok in ALLOC_TOKENS {
            if line.contains(tok) {
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::NoAllocInCheck,
                    format!("`{tok}..` allocates inside a `lint:hot-path` module"),
                );
                break;
            }
        }
    }
}

/// Flags `name: f64` parameters of `pub fn`s where `name` carries a unit.
fn unit_safety(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < s.code.len() {
        let line = &s.code[i];
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub unsafe fn "]
            .iter()
            .any(|p| line.trim_start().starts_with(p) || line.contains(p));
        if !is_pub_fn || s.in_test[i] {
            i += 1;
            continue;
        }
        // Accumulate the signature until its body/semicolon.
        let mut sig = String::new();
        let mut j = i;
        while j < s.code.len() {
            sig.push_str(&s.code[j]);
            sig.push(' ');
            if s.code[j].contains('{') || s.code[j].contains(';') {
                break;
            }
            j += 1;
        }
        for (name, _ty) in f64_params(&sig) {
            let lname = name.to_ascii_lowercase();
            if UNIT_NAME_HINTS.iter().any(|h| lname.contains(h)) {
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::UnitSafety,
                    format!(
                        "public fn parameter `{name}: f64` names a physical \
                         unit; use the eval-units newtype (Volts, GHz, Watts, \
                         Kelvin, ErrorRate) or justify with \
                         lint:allow(unit-safety)"
                    ),
                );
            }
        }
        i = j + 1;
    }
}

/// Extracts `(name, type)` pairs for parameters typed `f64` / `&f64`.
fn f64_params(sig: &str) -> Vec<(String, String)> {
    let mut res = Vec::new();
    let Some(open) = sig.find('(') else {
        return res;
    };
    // Cut the parameter list at the matching close paren.
    let mut depth = 0i32;
    let mut end = sig.len();
    for (k, c) in sig[open..].char_indices() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | '>' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = open + k;
                    break;
                }
            }
            _ => {}
        }
    }
    let params = &sig[open + 1..end.min(sig.len())];
    for part in params.split(',') {
        let Some((name, ty)) = part.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        let ty = ty.trim();
        let bare = ty.trim_start_matches('&').trim();
        if bare == "f64"
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !name.is_empty()
        {
            res.push((name.to_string(), ty.to_string()));
        }
    }
    res
}

/// Flags entropy, wall-clock and hash-ordered-collection tokens.
fn determinism(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.code.iter().enumerate() {
        for tok in NONDET_TOKENS {
            if line.contains(tok) {
                let fix = match tok {
                    "HashMap" => "use BTreeMap (stable iteration order)",
                    "HashSet" => "use BTreeSet (stable iteration order)",
                    _ => "derive all randomness from the seeded eval-rng stream",
                };
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::Determinism,
                    format!("`{tok}` breaks bit-identical simulation; {fix}"),
                );
            }
        }
    }
}

/// Flags `unwrap`/`expect`/panicking macros outside test regions.
fn panic_safety(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.code.iter().enumerate() {
        if s.in_test[i] {
            continue;
        }
        for tok in PANIC_TOKENS {
            if line.contains(tok) {
                let shown = tok.trim_matches(|c| c == '.' || c == '(');
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::PanicSafety,
                    format!(
                        "`{shown}` can panic in library code; return a typed \
                         error or justify with lint:allow(panic-safety)"
                    ),
                );
            }
        }
    }
}

/// True when `line` invokes the macro `tok` (which includes the trailing
/// `!(`): the match must not be the tail of a longer identifier, so
/// `eprintln!(` does not also count as `println!(`.
fn has_macro_token(line: &str, tok: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(tok) {
        let abs = start + pos;
        let prev = line[..abs].chars().next_back();
        if !prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Flags stdout/stderr macros outside test regions.
fn no_println(s: &Scanned, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.code.iter().enumerate() {
        if s.in_test[i] {
            continue;
        }
        for tok in PRINT_TOKENS {
            if has_macro_token(line, tok) {
                let shown = tok.trim_end_matches('(');
                push(
                    out,
                    s,
                    path,
                    i,
                    Rule::NoPrintln,
                    format!(
                        "`{shown}` writes to stdout/stderr from library code; \
                         emit an eval-trace event/metric (or return the text) \
                         or justify with lint:allow(no-println)"
                    ),
                );
            }
        }
    }
}

/// In `eval-units`: paper constants must exist with the paper's values.
/// Everywhere else: defining a constant with one of those names shadows
/// the single source of truth.
fn config_invariants(s: &Scanned, path: &str, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "eval-units" {
        // Only the file that actually declares the consts module is
        // checked for presence/values.
        let joined = s.code.join("\n");
        if !joined.contains("mod consts") {
            return;
        }
        for (name, literal, meaning) in PAPER_CONSTS {
            let decl = format!("pub const {name}:");
            match s.code.iter().position(|l| l.contains(&decl)) {
                None => out.push(Diagnostic {
                    path: path.to_string(),
                    line: 1,
                    rule: Rule::ConfigInvariants,
                    message: format!(
                        "eval_units::consts must define `{name}` ({meaning})"
                    ),
                }),
                Some(i) => {
                    // The defining statement may wrap; take up to the ';'.
                    let mut stmt = String::new();
                    for l in &s.code[i..(i + 3).min(s.code.len())] {
                        stmt.push_str(l);
                        if l.contains(';') {
                            break;
                        }
                    }
                    if !stmt.contains(literal) {
                        out.push(Diagnostic {
                            path: path.to_string(),
                            line: i + 1,
                            rule: Rule::ConfigInvariants,
                            message: format!(
                                "`{name}` must be defined from the paper value \
                                 {literal} ({meaning}); found `{}`",
                                stmt.trim()
                            ),
                        });
                    }
                }
            }
        }
    } else {
        for (i, line) in s.code.iter().enumerate() {
            if s.in_test[i] {
                continue;
            }
            for (name, _, _) in PAPER_CONSTS {
                let shadow = format!("const {name}:");
                if line.contains(&shadow) {
                    push(
                        out,
                        s,
                        path,
                        i,
                        Rule::ConfigInvariants,
                        format!(
                            "`{name}` is a paper constant; import it from \
                             eval_units::consts instead of redefining it"
                        ),
                    );
                }
            }
        }
    }
}

/// Maps a workspace-relative path to its lint context; `None` means the
/// file is out of scope (shim crates, the linter itself, non-Rust files).
pub fn context_for(rel: &Path) -> Option<FileContext> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let crate_name = if parts.first() == Some(&"crates") {
        let dir = *parts.get(1)?;
        // The linter itself and the offline stand-ins for crates.io
        // packages are out of scope.
        if ["lint", "proptest", "criterion"].contains(&dir) {
            return None;
        }
        format!("eval-{dir}")
    } else if ["src", "tests", "examples", "benches"].contains(parts.first()?) {
        "eval".to_string()
    } else {
        return None;
    };
    let is_test_code = parts
        .iter()
        .any(|p| ["tests", "examples", "benches", "bin"].contains(p));
    let is_bin = parts.iter().any(|p| *p == "bin");
    Some(FileContext {
        crate_name,
        is_test_code,
        is_bin,
    })
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every in-scope `.rs` file under the workspace root. Paths in the
/// returned diagnostics are workspace-relative; the list is sorted by
/// path then line so output is stable.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let Some(ctx) = context_for(rel) else {
            continue;
        };
        let source = std::fs::read_to_string(&file)?;
        out.extend(lint_source(
            &rel.display().to_string(),
            &source,
            &ctx,
        ));
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(name: &str) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            is_test_code: false,
            is_bin: false,
        }
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let s = scan("let x = \"HashMap\"; // HashMap in a comment\n");
        assert!(!s.code[0].contains("HashMap"));
    }

    #[test]
    fn allow_marker_suppresses_on_same_and_next_line() {
        let src = "// lint:allow(determinism): justified\nuse std::collections::HashMap;\n";
        let d = lint_source("x.rs", src, &ctx("eval-core"));
        assert!(d.iter().all(|d| d.rule != Rule::Determinism), "{d:?}");
    }

    #[test]
    fn cfg_test_region_is_exempt_from_panic_safety() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { None::<u8>.unwrap(); }\n}\n";
        let d = lint_source("x.rs", src, &ctx("eval-core"));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unit_hint_parameter_is_flagged_only_in_unit_crates() {
        let src = "pub fn set(vdd: f64) {}\n";
        assert_eq!(lint_source("x.rs", src, &ctx("eval-power")).len(), 1);
        assert!(lint_source("x.rs", src, &ctx("eval-uarch")).is_empty());
    }

    #[test]
    fn println_is_flagged_in_library_crates_and_eval_trace_only() {
        let src = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(lint_source("x.rs", src, &ctx("eval-core")).len(), 1);
        assert_eq!(lint_source("x.rs", src, &ctx("eval-trace")).len(), 1);
        assert!(lint_source("x.rs", src, &ctx("eval-bench")).is_empty());
    }

    #[test]
    fn shadowed_paper_constant_is_flagged() {
        let src = "const P_MAX: f64 = 25.0;\n";
        let d = lint_source("x.rs", src, &ctx("eval-adapt"));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::ConfigInvariants);
    }

    #[test]
    fn hot_path_marker_bans_vec_construction() {
        let src = "// lint:hot-path\npub fn f(n: usize) -> usize { let v: Vec<u8> = Vec::new(); v.len() + n }\n";
        let d = lint_source("x.rs", src, &ctx("eval-power"));
        assert!(d.iter().any(|d| d.rule == Rule::NoAllocInCheck), "{d:?}");
    }

    #[test]
    fn unmarked_files_may_construct_vecs() {
        let src = "pub fn f(n: usize) -> usize { let v: Vec<u8> = Vec::with_capacity(n); v.len() }\n";
        let d = lint_source("x.rs", src, &ctx("eval-power"));
        assert!(d.iter().all(|d| d.rule != Rule::NoAllocInCheck), "{d:?}");
    }

    #[test]
    fn hot_path_tests_may_allocate() {
        let src = "// lint:hot-path\n#[cfg(test)]\nmod tests {\n    fn f() -> usize { vec![1u8].len() }\n}\n";
        let d = lint_source("x.rs", src, &ctx("eval-power"));
        assert!(d.iter().all(|d| d.rule != Rule::NoAllocInCheck), "{d:?}");
    }

    #[test]
    fn collect_is_flagged_in_hot_path_modules() {
        let src = "// lint:hot-path\npub fn f() -> usize { (0..4).collect::<Vec<_>>().len() }\n";
        let d = lint_source("x.rs", src, &ctx("eval-adapt"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NoAllocInCheck);
    }

    #[test]
    fn in_place_artifact_writes_are_flagged_even_in_bins() {
        let src = "pub fn f() { std::fs::write(\"out.json\", \"x\").ok(); }\n";
        let d = lint_source("x.rs", src, &ctx("eval-obs"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AtomicArtifacts);
        // A bin crate is test code for panic-safety, but its artifact
        // writes are real output.
        let bin = FileContext {
            crate_name: "eval-bench".to_string(),
            is_test_code: true,
            is_bin: true,
        };
        let d = lint_source("x.rs", src, &bin);
        assert_eq!(d.len(), 1, "{d:?}");
        // Tests proper stay exempt.
        let test = FileContext {
            crate_name: "eval-bench".to_string(),
            is_test_code: true,
            is_bin: false,
        };
        assert!(lint_source("x.rs", src, &test).is_empty());
        // The escape hatch works.
        let allowed =
            "// lint:allow(atomic-artifacts): staging write\npub fn f() { std::fs::write(\"o\", \"x\").ok(); }\n";
        assert!(lint_source("x.rs", allowed, &ctx("eval-obs")).is_empty());
    }

    #[test]
    fn append_streams_on_openoptions_are_not_flagged() {
        let src = "pub fn f() { let _ = std::fs::OpenOptions::new().append(true).open(\"log\"); }\n";
        let d = lint_source("x.rs", src, &ctx("eval-adapt"));
        assert!(d.iter().all(|d| d.rule != Rule::AtomicArtifacts), "{d:?}");
    }

    #[test]
    fn context_maps_paths() {
        assert_eq!(
            context_for(Path::new("crates/power/src/solve.rs"))
                .unwrap()
                .crate_name,
            "eval-power"
        );
        assert!(context_for(Path::new("crates/lint/src/lib.rs")).is_none());
        assert!(context_for(Path::new("crates/proptest/src/lib.rs")).is_none());
        let t = context_for(Path::new("tests/determinism.rs")).unwrap();
        assert!(t.is_test_code);
    }
}
