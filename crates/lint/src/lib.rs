//! # eval-lint
//!
//! A std-only, two-phase static-analysis engine over the EVAL
//! workspace.
//!
//! **Phase 1** ([`lexer`], [`facts`]) tokenizes each in-scope file
//! once — producing the stripped line view the shape rules match
//! against plus a token stream with spans — and reduces it to facts:
//! metric-name literals and `eval_trace::names` constant references,
//! `fn` definitions with an allocates-bit, call sites in
//! `lint:hot-path` modules, and `lint:allow` suppression markers.
//!
//! **Phase 2** ([`rules`]) runs two kinds of rule families:
//!
//! * the eight *per-file* families carried over from the original
//!   single-file linter (unit-safety, determinism, panic-safety,
//!   config-invariants, no-println, no-alloc-in-check, sink-forward,
//!   atomic-artifacts), matching shapes on one file's line view — see
//!   each family's module docs or `eval-lint --explain <rule>`;
//! * three *cross-file* families over the merged [`facts::FactBase`]:
//!   **metric-schema** (drift between metric emitters, the eval-obs
//!   consumers, and the committed registry
//!   `results/metric_schema.json`), **hot-path-reachability**
//!   (hot-path code calling allocating functions one call-graph hop
//!   away), and **dead-suppression** (`lint:allow` markers that
//!   suppress nothing).
//!
//! Findings carry stable IDs (see [`report`]) and render as text or
//! JSON. A finding can be suppressed with a `// lint:allow(<rule>)`
//! comment on the offending line or in the contiguous comment block
//! directly above it — and dead-suppression guarantees every such
//! marker still earns its keep.
//!
//! The pass stays deliberately lexical: no syn, no proc-macro
//! machinery, fast enough to run as a tier-1 gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

pub mod facts;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod schema;
pub mod workspace;

pub use schema::MetricSchema;
pub use workspace::{context_for, Workspace};

/// The eleven rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Raw `f64` where a unit newtype is required.
    UnitSafety,
    /// Entropy / wall-clock / hash-order sources in simulation crates.
    Determinism,
    /// `unwrap`/`expect`/panicking macros in library code.
    PanicSafety,
    /// Paper constants redefined outside `eval_units::consts`.
    ConfigInvariants,
    /// stdout/stderr macros in library code (use eval-trace sinks).
    NoPrintln,
    /// `Vec` construction in `lint:hot-path`-marked modules.
    NoAllocInCheck,
    /// `TraceSink` impls that swallow or drop `Record` variants.
    SinkForward,
    /// Torn-file-prone writes (`fs::write`/`File::create`) for artifacts.
    AtomicArtifacts,
    /// Metric-name drift between emitters, consumers, and the registry.
    MetricSchema,
    /// Hot-path code calling allocating functions in unmarked modules.
    HotPathReachability,
    /// `lint:allow` markers that suppress nothing.
    DeadSuppression,
}

impl Rule {
    /// All rule families, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::UnitSafety,
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::ConfigInvariants,
        Rule::NoPrintln,
        Rule::NoAllocInCheck,
        Rule::SinkForward,
        Rule::AtomicArtifacts,
        Rule::MetricSchema,
        Rule::HotPathReachability,
        Rule::DeadSuppression,
    ];

    /// The kebab-case name used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitSafety => "unit-safety",
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::ConfigInvariants => "config-invariants",
            Rule::NoPrintln => "no-println",
            Rule::NoAllocInCheck => "no-alloc-in-check",
            Rule::SinkForward => "sink-forward",
            Rule::AtomicArtifacts => "atomic-artifacts",
            Rule::MetricSchema => "metric-schema",
            Rule::HotPathReachability => "hot-path-reachability",
            Rule::DeadSuppression => "dead-suppression",
        }
    }

    /// The stable finding-code prefix (`EVL001`..`EVL011`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnitSafety => "EVL001",
            Rule::Determinism => "EVL002",
            Rule::PanicSafety => "EVL003",
            Rule::ConfigInvariants => "EVL004",
            Rule::NoPrintln => "EVL005",
            Rule::NoAllocInCheck => "EVL006",
            Rule::SinkForward => "EVL007",
            Rule::AtomicArtifacts => "EVL008",
            Rule::MetricSchema => "EVL009",
            Rule::HotPathReachability => "EVL010",
            Rule::DeadSuppression => "EVL011",
        }
    }

    /// Looks a rule up by its kebab-case name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule violated at a file/line (and optionally a
/// column, when the engine knows the exact token).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token, when known.
    pub col: Option<usize>,
    /// The violated rule family.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The stable finding ID (`EVLnnn-<16 hex>`); see [`report`] for
    /// the stability contract (line/column moves keep the ID).
    pub fn id(&self) -> String {
        format!(
            "{}-{:016x}",
            self.rule.code(),
            report::fingerprint(self.rule, &self.path, &self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// What the linter needs to know about a file before scanning it.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Cargo package name the file belongs to (`eval` for the root crate).
    pub crate_name: String,
    /// Test/bench/example code: exempt from panic-safety.
    pub is_test_code: bool,
    /// A `src/bin/*` binary: counted as test code for panic-safety and
    /// printing, but its artifact writes are real and must be atomic.
    pub is_bin: bool,
}

/// Whether (and which) committed metric registry the metric-schema
/// rule checks against.
#[derive(Debug)]
pub enum RegistryState {
    /// The committed `results/metric_schema.json`, parsed.
    Loaded(MetricSchema),
    /// No registry on disk: a finding in itself.
    Missing,
    /// Skip registry-dependent checks (used while *generating* the
    /// registry, when staleness against itself is meaningless).
    Ignore,
}

/// Loads the committed registry from `root/results/metric_schema.json`.
/// An unparseable registry counts as [`RegistryState::Missing`] (the
/// finding tells the user to regenerate it).
pub fn load_registry(root: &Path) -> RegistryState {
    let path = root.join(facts::REGISTRY_PATH);
    match std::fs::read_to_string(&path) {
        Ok(text) => match MetricSchema::parse(&text) {
            Ok(schema) => RegistryState::Loaded(schema),
            Err(_) => RegistryState::Missing,
        },
        Err(_) => RegistryState::Missing,
    }
}

/// Runs the full two-phase analysis over a loaded workspace. Findings
/// are sorted by path, line, rule, message.
pub fn analyze(ws: &Workspace, registry: &RegistryState) -> Vec<Finding> {
    // Phase 1: lex everything once.
    let mut lexed: BTreeMap<String, lexer::LexedFile> = BTreeMap::new();
    for f in &ws.files {
        lexed.insert(f.rel.clone(), lexer::lex(&f.source));
    }
    // Phase 1b: facts for files in fact scope.
    let mut fact_files = Vec::new();
    for f in &ws.files {
        if !facts::facts_in_scope(&f.rel) {
            continue;
        }
        fact_files.push((
            f.rel.clone(),
            f.ctx.crate_name.clone(),
            facts::collect(&f.rel, &f.ctx, &lexed[&f.rel]),
        ));
    }
    let fb = facts::FactBase::merge(&fact_files);

    // Phase 2: per-file families, then cross-file families, then
    // dead-suppression last (it needs the full suppression credits).
    let mut sink = rules::Sink::new(&lexed);
    for f in &ws.files {
        rules::run_file_rules(&lexed[&f.rel], &f.rel, &f.ctx, &mut sink);
    }
    rules::metric_schema::run(&fb, registry, &mut sink);
    rules::hot_path_reachability::run(&fb, &mut sink);
    rules::dead_suppression::run(&lexed, &mut sink);

    let mut out = sink.out;
    out.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.message.cmp(&b.message))
    });
    out
}

/// Generates the metric-name registry from a loaded workspace (what
/// `eval-lint --emit-schema` writes).
pub fn emit_schema(ws: &Workspace) -> MetricSchema {
    let mut fact_files = Vec::new();
    for f in &ws.files {
        if !facts::facts_in_scope(&f.rel) {
            continue;
        }
        let lexed = lexer::lex(&f.source);
        fact_files.push((
            f.rel.clone(),
            f.ctx.crate_name.clone(),
            facts::collect(&f.rel, &f.ctx, &lexed),
        ));
    }
    MetricSchema::from_facts(&facts::FactBase::merge(&fact_files))
}

/// Lints one file's source under the given context, running only the
/// eight per-file rule families (the cross-file families need a whole
/// workspace). `path` is only used to label findings.
pub fn lint_source(path: &str, source: &str, ctx: &FileContext) -> Vec<Finding> {
    let mut lexed = BTreeMap::new();
    lexed.insert(path.to_string(), lexer::lex(source));
    let mut sink = rules::Sink::new(&lexed);
    rules::run_file_rules(&lexed[path], path, ctx, &mut sink);
    sink.out
}

/// Lints every in-scope `.rs` file under the workspace root with all
/// eleven rule families, checking against the committed registry.
///
/// # Errors
///
/// Propagates file-system failures from the workspace walk.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let ws = Workspace::load(root)?;
    let registry = load_registry(root);
    Ok(analyze(&ws, &registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(name: &str) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            is_test_code: false,
            is_bin: false,
        }
    }

    #[test]
    fn allow_marker_suppresses_on_same_and_next_line() {
        let src = "// lint:allow(determinism): justified\nuse std::collections::HashMap;\n";
        let d = lint_source("x.rs", src, &ctx("eval-core"));
        assert!(d.iter().all(|d| d.rule != Rule::Determinism), "{d:?}");
    }

    #[test]
    fn cfg_test_region_is_exempt_from_panic_safety() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { None::<u8>.unwrap(); }\n}\n";
        let d = lint_source("x.rs", src, &ctx("eval-core"));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unit_hint_parameter_is_flagged_only_in_unit_crates() {
        let src = "pub fn set(vdd: f64) {}\n";
        assert_eq!(lint_source("x.rs", src, &ctx("eval-power")).len(), 1);
        assert!(lint_source("x.rs", src, &ctx("eval-uarch")).is_empty());
    }

    #[test]
    fn println_is_flagged_in_library_crates_and_eval_trace_only() {
        let src = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(lint_source("x.rs", src, &ctx("eval-core")).len(), 1);
        assert_eq!(lint_source("x.rs", src, &ctx("eval-trace")).len(), 1);
        assert!(lint_source("x.rs", src, &ctx("eval-bench")).is_empty());
    }

    #[test]
    fn shadowed_paper_constant_is_flagged() {
        let src = "const P_MAX: f64 = 25.0;\n";
        let d = lint_source("x.rs", src, &ctx("eval-adapt"));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::ConfigInvariants);
    }

    #[test]
    fn hot_path_marker_bans_vec_construction() {
        let src = "// lint:hot-path\npub fn f(n: usize) -> usize { let v: Vec<u8> = Vec::new(); v.len() + n }\n";
        let d = lint_source("x.rs", src, &ctx("eval-power"));
        assert!(d.iter().any(|d| d.rule == Rule::NoAllocInCheck), "{d:?}");
    }

    #[test]
    fn in_place_artifact_writes_are_flagged_even_in_bins() {
        let src = "pub fn f() { std::fs::write(\"out.json\", \"x\").ok(); }\n";
        let d = lint_source("x.rs", src, &ctx("eval-obs"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AtomicArtifacts);
        let bin = FileContext {
            crate_name: "eval-bench".to_string(),
            is_test_code: true,
            is_bin: true,
        };
        let d = lint_source("x.rs", src, &bin);
        assert_eq!(d.len(), 1, "{d:?}");
        let test = FileContext {
            crate_name: "eval-bench".to_string(),
            is_test_code: true,
            is_bin: false,
        };
        assert!(lint_source("x.rs", src, &test).is_empty());
        let allowed =
            "// lint:allow(atomic-artifacts): staging write\npub fn f() { std::fs::write(\"o\", \"x\").ok(); }\n";
        assert!(lint_source("x.rs", allowed, &ctx("eval-obs")).is_empty());
    }

    #[test]
    fn rule_codes_and_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(rule.code().starts_with("EVL"));
        }
        assert_eq!(Rule::from_name("not-a-rule"), None);
    }
}
