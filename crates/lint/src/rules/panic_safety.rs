//! panic-safety (EVL003): `unwrap`/`expect`/panicking macros.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Tokens forbidden by the panic-safety rule.
const PANIC_TOKENS: [&str; 5] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

/// Flags `unwrap`/`expect`/panicking macros outside test regions.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    for (i, line) in s.code_lines() {
        if s.in_test(i) {
            continue;
        }
        for tok in PANIC_TOKENS {
            if line.contains(tok) {
                let shown = tok.trim_matches(|c| c == '.' || c == '(');
                sink.push(
                    path,
                    i,
                    None,
                    Rule::PanicSafety,
                    format!(
                        "`{shown}` can panic in library code; return a typed \
                         error or justify with lint:allow(panic-safety)"
                    ),
                );
            }
        }
    }
}
