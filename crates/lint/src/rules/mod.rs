//! The rule families and the shared finding sink.
//!
//! Per-file rules (the eight ported families) match shapes on one
//! file's stripped line view; cross-file rules (`metric-schema`,
//! `hot-path-reachability`, `dead-suppression`) evaluate the merged
//! [`crate::facts::FactBase`]. Both report through [`Sink`], which
//! applies `lint:allow` suppression and **records which marker
//! suppressed what** — the input `dead-suppression` needs.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::LexedFile;
use crate::{FileContext, Finding, Rule};

pub mod atomic_artifacts;
pub mod config_invariants;
pub mod dead_suppression;
pub mod determinism;
pub mod hot_path_reachability;
pub mod metric_schema;
pub mod no_alloc_in_check;
pub mod no_println;
pub mod panic_safety;
pub mod sink_forward;
pub mod unit_safety;

/// Crates whose public `f64` parameters are checked for unit names.
pub const UNIT_CRATES: [&str; 3] = ["eval-power", "eval-timing", "eval-core"];

/// Crates that participate in the deterministic simulation pipeline.
pub const SIM_CRATES: [&str; 8] = [
    "eval-rng",
    "eval-units",
    "eval-variation",
    "eval-timing",
    "eval-power",
    "eval-uarch",
    "eval-fuzzy",
    "eval-core",
];

/// Simulation crates plus the campaign layer (also deterministic).
pub fn is_sim_crate(name: &str) -> bool {
    SIM_CRATES.contains(&name) || name == "eval-adapt"
}

/// Library crates subject to panic-safety (everything in the pipeline;
/// `eval-bench` is a figure-printing bin crate and exempt).
pub fn is_library_crate(name: &str) -> bool {
    is_sim_crate(name) || name == "eval"
}

/// Crates subject to no-println: the library pipeline plus `eval-trace`
/// itself (its reports are returned as `String`s for the caller to
/// print).
pub fn is_println_free_crate(name: &str) -> bool {
    is_library_crate(name) || name == "eval-trace"
}

/// A suppression credit: (path, 0-based marker line, rule name).
pub type UsedAllow = (String, usize, String);

/// The finding sink: applies `lint:allow` suppression against the
/// lexed view of whatever file a finding is anchored in, and records
/// the markers that fired.
pub struct Sink<'a> {
    files: &'a BTreeMap<String, LexedFile>,
    /// Findings that survived suppression.
    pub out: Vec<Finding>,
    /// Markers that suppressed at least one finding this run.
    pub used: BTreeSet<UsedAllow>,
}

impl<'a> Sink<'a> {
    /// A sink over the given lexed files (keyed by workspace-relative
    /// path).
    pub fn new(files: &'a BTreeMap<String, LexedFile>) -> Sink<'a> {
        Sink {
            files,
            out: Vec::new(),
            used: BTreeSet::new(),
        }
    }

    /// Reports a finding anchored at 0-based `line` (and optional
    /// 0-based `col`) unless a `lint:allow` marker suppresses it; a
    /// suppressing marker is credited in [`Sink::used`].
    pub fn push(
        &mut self,
        path: &str,
        line: usize,
        col: Option<usize>,
        rule: Rule,
        message: String,
    ) {
        if let Some(lexed) = self.files.get(path) {
            if let Some(marker) = lexed.allow_marker_for(line, rule.name()) {
                self.used
                    .insert((path.to_string(), marker, rule.name().to_string()));
                return;
            }
        }
        self.force(path, line, col, rule, message);
    }

    /// Reports a finding that cannot be suppressed (registry-anchored
    /// findings, the config-invariants presence checks, and
    /// dead-suppression itself).
    pub fn force(
        &mut self,
        path: &str,
        line: usize,
        col: Option<usize>,
        rule: Rule,
        message: String,
    ) {
        self.out.push(Finding {
            path: path.to_string(),
            line: line + 1,
            col: col.map(|c| c + 1),
            rule,
            message,
        });
    }
}

/// Runs the eight per-file rule families on one file under its
/// context, with the legacy dispatch conditions.
pub fn run_file_rules(lexed: &LexedFile, path: &str, ctx: &FileContext, sink: &mut Sink<'_>) {
    if UNIT_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_code {
        unit_safety::run(lexed, path, sink);
    }
    if is_sim_crate(&ctx.crate_name) {
        determinism::run(lexed, path, sink);
    }
    if is_library_crate(&ctx.crate_name) && !ctx.is_test_code {
        panic_safety::run(lexed, path, sink);
    }
    if is_println_free_crate(&ctx.crate_name) && !ctx.is_test_code {
        no_println::run(lexed, path, sink);
    }
    if lexed.hot_path && !ctx.is_test_code {
        no_alloc_in_check::run(lexed, path, sink);
    }
    if !ctx.is_test_code {
        sink_forward::run(lexed, path, sink);
    }
    if !ctx.is_test_code || ctx.is_bin {
        atomic_artifacts::run(lexed, path, sink);
    }
    config_invariants::run(lexed, path, ctx, sink);
}
