//! atomic-artifacts (EVL008): in-place artifact writes.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Write calls that clobber the target in place: a crash mid-write (or
/// a concurrent reader) sees a torn file.
const TORN_WRITE_TOKENS: [&str; 2] = ["fs::write(", "File::create("];

/// Flags in-place artifact writes outside `#[cfg(test)]` regions.
/// Final artifacts (traces, reports, metric snapshots, bench JSON)
/// must go through `eval_trace::write_atomic`; incremental append logs
/// built on `OpenOptions` are exempt by construction.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    for (i, line) in s.code_lines() {
        if s.in_test(i) {
            continue;
        }
        for tok in TORN_WRITE_TOKENS {
            if line.contains(tok) {
                let shown = tok.trim_end_matches('(');
                sink.push(
                    path,
                    i,
                    None,
                    Rule::AtomicArtifacts,
                    format!(
                        "`{shown}` clobbers the target in place and can leave a \
                         torn file on crash; use eval_trace::write_atomic (or \
                         OpenOptions for append streams) or justify with \
                         lint:allow(atomic-artifacts)"
                    ),
                );
            }
        }
    }
}
