//! hot-path-reachability (EVL010): allocation one call-graph hop out.
//!
//! `no-alloc-in-check` only inspects the `lint:hot-path` file itself,
//! so a check-path function that calls `helper()` in a neighbouring
//! (unmarked) module gets its allocation for free. This rule closes
//! that gap one hop out: every function *called from* a hot-path
//! module must either be allocation-free or live in a hot-path-marked
//! file (where EVL006 already polices it).
//!
//! Resolution is name-based and deliberately conservative — the goal
//! is zero false positives on the clean tree, not completeness:
//!
//! * unqualified calls and `.method(...)` calls resolve against `fn`
//!   definitions in the **calling crate**;
//! * `eval_xxx::f(...)` paths resolve into the named workspace crate;
//! * lowercase module paths (`module::f(...)`, `self::f(...)`,
//!   `crate::f(...)`) resolve within the calling crate;
//! * `Type::f(...)` paths (capitalized qualifier) are skipped — enum
//!   variants and cross-crate associated functions are
//!   indistinguishable without type information;
//! * a finding fires only when **every** candidate definition
//!   allocates and none lives in a hot-path file.

use std::collections::BTreeSet;

use crate::facts::FactBase;
use crate::rules::Sink;
use crate::Rule;

/// Runs the one-hop reachability check over the merged fact base.
pub fn run(fb: &FactBase, sink: &mut Sink<'_>) {
    let mut reported: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (crate_name, path, call) in &fb.calls {
        let target_crate = match call.qualifier.as_deref() {
            Some(q) if q.starts_with("eval_") => q.replace('_', "-"),
            Some("self" | "crate") | None => crate_name.clone(),
            Some(q) if q.chars().next().is_some_and(char::is_lowercase) => crate_name.clone(),
            Some(_) => continue, // `Type::f(...)`: unresolvable by name
        };
        let Some(candidates) = fb
            .fn_defs
            .get(&target_crate)
            .and_then(|m| m.get(&call.callee))
        else {
            continue;
        };
        if candidates.is_empty()
            || !candidates.iter().all(|d| d.allocates && !d.hot_path_file)
        {
            continue;
        }
        if !reported.insert((path.clone(), call.line, call.callee.clone())) {
            continue;
        }
        let def = &candidates[0];
        sink.push(
            path,
            call.line,
            Some(call.col),
            Rule::HotPathReachability,
            format!(
                "`{}(..)` is called from this `lint:hot-path` check path but \
                 allocates (defined at {}:{}); make it allocation-free, move \
                 it into a hot-path-marked module, or justify with \
                 lint:allow(hot-path-reachability)",
                call.callee,
                def.path,
                def.line + 1
            ),
        );
    }
}
