//! metric-schema (EVL009): cross-crate metric-name drift.
//!
//! The emitting side (campaign runner, adaptation layer, core tester,
//! the hotpath bench bin) and the consuming side (eval-obs progress /
//! analyze / bench-check) agree on metric names only by string
//! equality. A rename on one side strands the other *silently*: the
//! consumer reads zeros, the dashboard goes flat, and nothing fails.
//!
//! This rule closes the loop over the merged fact base:
//!
//! * every metric-shaped string literal outside `eval_trace::names`
//!   is a drift hazard (two spellings of one name cannot be caught by
//!   `grep` once they diverge) — declare a constant;
//! * a name consumed in eval-obs but emitted nowhere is an orphaned
//!   consumer (the classic rename victim);
//! * a name emitted but never consumed and not listed in the committed
//!   registry (`results/metric_schema.json`) is an unregistered
//!   emitter — either wire up a consumer or register the export;
//! * a consumed prefix family no emitted name falls under is an
//!   orphaned prefix;
//! * a `names` constant nothing references is dead;
//! * a registry entry backed by no declaration/emit/consume is stale;
//! * two constants declaring the same name make "the" constant
//!   ambiguous.

use std::collections::BTreeMap;

use crate::facts::{FactBase, REGISTRY_PATH};
use crate::rules::Sink;
use crate::{RegistryState, Rule};

/// Runs the metric-schema checks over the merged fact base.
pub fn run(fb: &FactBase, registry: &RegistryState, sink: &mut Sink<'_>) {
    // (a) Raw metric-name literals outside the names module.
    for (name, site) in &fb.literal_uses {
        let hint = match fb.value_to_ident.get(name) {
            Some(ident) => format!("use eval_trace::names::{ident}"),
            None => "declare it as a constant in eval_trace::names and use \
                 that (then regenerate the registry with `eval-lint \
                 --emit-schema`)"
                .to_string(),
        };
        sink.push(
            &site.path,
            site.line,
            Some(site.col),
            Rule::MetricSchema,
            format!(
                "metric name \"{name}\" is a raw string literal; {hint} so \
                 emitters and consumers cannot drift apart"
            ),
        );
    }

    // (b) Consumed but emitted nowhere: the orphaned consumer.
    for (name, sites) in &fb.consumes {
        if fb.emits.contains_key(name) {
            continue;
        }
        if let Some(site) = sites.first() {
            sink.push(
                &site.path,
                site.line,
                Some(site.col),
                Rule::MetricSchema,
                format!(
                    "metric \"{name}\" is consumed here but emitted nowhere in \
                     the workspace; the emitter was renamed or removed and this \
                     consumer now reads zeros"
                ),
            );
        }
    }

    // (c) Emitted but never consumed and not registered.
    if let RegistryState::Loaded(schema) = registry {
        let registered = schema.names();
        for (name, sites) in &fb.emits {
            if fb.is_consumed(name) || registered.contains(name.as_str()) {
                continue;
            }
            if let Some(site) = sites.first() {
                sink.push(
                    &site.path,
                    site.line,
                    Some(site.col),
                    Rule::MetricSchema,
                    format!(
                        "metric \"{name}\" is emitted here but consumed nowhere \
                         and not listed in {REGISTRY_PATH}; wire up a consumer \
                         or regenerate the registry with `eval-lint \
                         --emit-schema` to register the export"
                    ),
                );
            }
        }
        // (f) Stale registry entries.
        for entry in &schema.metrics {
            let live = fb.emits.contains_key(&entry.name)
                || fb.consumes.contains_key(&entry.name)
                || fb.value_to_ident.contains_key(&entry.name);
            if !live {
                sink.force(
                    REGISTRY_PATH,
                    0,
                    None,
                    Rule::MetricSchema,
                    format!(
                        "registry entry \"{}\" is no longer declared, emitted, \
                         or consumed anywhere; regenerate the registry with \
                         `eval-lint --emit-schema`",
                        entry.name
                    ),
                );
            }
        }
    } else if matches!(registry, RegistryState::Missing) {
        sink.force(
            REGISTRY_PATH,
            0,
            None,
            Rule::MetricSchema,
            format!(
                "the committed metric-name registry {REGISTRY_PATH} is \
                 missing; generate it with `eval-lint --emit-schema` and \
                 commit the result"
            ),
        );
    }

    // (d) Consumed prefix families no emitted name falls under.
    for (prefix, sites) in &fb.consume_prefixes {
        if fb.emits.keys().any(|n| n.starts_with(prefix.as_str())) {
            continue;
        }
        if let Some(site) = sites.first() {
            sink.push(
                &site.path,
                site.line,
                Some(site.col),
                Rule::MetricSchema,
                format!(
                    "metric prefix \"{prefix}\" is consumed here but no emitted \
                     metric name starts with it"
                ),
            );
        }
    }

    // (e) Declared constants nothing references.
    for (ident, def) in &fb.defs {
        if fb.referenced_consts.contains(ident) {
            continue;
        }
        sink.push(
            crate::facts::NAMES_MODULE,
            def.line,
            None,
            Rule::MetricSchema,
            format!(
                "names constant `{ident}` (\"{}\") is referenced nowhere \
                 outside the names module; delete it or wire up the \
                 emitter/consumer that should use it",
                def.value
            ),
        );
    }

    // (g) Two constants declaring the same metric name.
    let mut by_value: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (ident, def) in &fb.defs {
        by_value.entry(def.value.as_str()).or_default().push(ident);
    }
    for (value, idents) in by_value {
        if idents.len() > 1 {
            let line = fb.defs[idents[1]].line;
            sink.push(
                crate::facts::NAMES_MODULE,
                line,
                None,
                Rule::MetricSchema,
                format!(
                    "metric name \"{value}\" is declared by multiple constants \
                     ({}); keep exactly one",
                    idents.join(", ")
                ),
            );
        }
    }
}
