//! config-invariants (EVL004): the paper's constants.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::{FileContext, Rule};

/// Paper constants: name, expected defining literal, paper meaning.
pub const PAPER_CONSTS: [(&str, &str, &str); 7] = [
    ("P_MAX", "30.0", "PMAX = 30 W per processor"),
    ("T_MAX_C", "85.0", "TMAX = 85 C junction"),
    ("TH_MAX_C", "70.0", "THMAX = 70 C heatsink"),
    ("PE_MAX", "1e-4", "PEMAX = 1e-4 errors/instruction"),
    ("SIGMA_OVER_MU", "0.09", "sigma/mu = 0.09 total variation"),
    ("PHI", "0.5", "phi = 0.5 of chip width correlation range"),
    ("F_NOMINAL", "4.0", "nominal frequency 4 GHz"),
];

/// In `eval-units`: paper constants must exist with the paper's values
/// (presence/value findings are not suppressible — the single source
/// of truth has no legitimate exception). Everywhere else: defining a
/// constant with one of those names shadows the single source of
/// truth.
pub fn run(s: &LexedFile, path: &str, ctx: &FileContext, sink: &mut Sink<'_>) {
    if ctx.crate_name == "eval-units" {
        // Only the file that actually declares the consts module is
        // checked for presence/values.
        if !s.lines.iter().any(|l| l.code.contains("mod consts")) {
            return;
        }
        for (name, literal, meaning) in PAPER_CONSTS {
            let decl = format!("pub const {name}:");
            match s.lines.iter().position(|l| l.code.contains(&decl)) {
                None => sink.force(
                    path,
                    0,
                    None,
                    Rule::ConfigInvariants,
                    format!("eval_units::consts must define `{name}` ({meaning})"),
                ),
                Some(i) => {
                    // The defining statement may wrap; take up to the ';'.
                    let mut stmt = String::new();
                    for l in &s.lines[i..(i + 3).min(s.lines.len())] {
                        stmt.push_str(&l.code);
                        if l.code.contains(';') {
                            break;
                        }
                    }
                    if !stmt.contains(literal) {
                        sink.force(
                            path,
                            i,
                            None,
                            Rule::ConfigInvariants,
                            format!(
                                "`{name}` must be defined from the paper value \
                                 {literal} ({meaning}); found `{}`",
                                stmt.trim()
                            ),
                        );
                    }
                }
            }
        }
    } else {
        for (i, line) in s.code_lines() {
            if s.in_test(i) {
                continue;
            }
            for (name, _, _) in PAPER_CONSTS {
                let shadow = format!("const {name}:");
                if line.contains(&shadow) {
                    sink.push(
                        path,
                        i,
                        None,
                        Rule::ConfigInvariants,
                        format!(
                            "`{name}` is a paper constant; import it from \
                             eval_units::consts instead of redefining it"
                        ),
                    );
                }
            }
        }
    }
}
