//! no-alloc-in-check (EVL006): `Vec` construction in hot-path modules.

use crate::facts::ALLOC_TOKENS;
use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Flags `Vec` construction outside `#[cfg(test)]` in files that carry
/// a `// lint:hot-path` marker. Those modules sit on the per-candidate
/// operating-point `check` path, which runs millions of times per
/// campaign and must not allocate.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    for (i, line) in s.code_lines() {
        if s.in_test(i) {
            continue;
        }
        for tok in ALLOC_TOKENS {
            if line.contains(tok) {
                sink.push(
                    path,
                    i,
                    None,
                    Rule::NoAllocInCheck,
                    format!("`{tok}..` allocates inside a `lint:hot-path` module"),
                );
                break;
            }
        }
    }
}
