//! unit-safety (EVL001): raw `f64` parameters with unit-carrying names.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Parameter-name fragments that indicate a physical unit.
const UNIT_NAME_HINTS: [&str; 6] = ["vdd", "vbb", "ghz", "volt", "watt", "kelvin"];

/// Flags `name: f64` parameters of `pub fn`s where `name` carries a
/// unit.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    let n = s.lines.len();
    let mut i = 0usize;
    while i < n {
        let line = &s.lines[i].code;
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub unsafe fn "]
            .iter()
            .any(|p| line.trim_start().starts_with(p) || line.contains(p));
        if !is_pub_fn || s.in_test(i) {
            i += 1;
            continue;
        }
        // Accumulate the signature until its body/semicolon.
        let mut sig = String::new();
        let mut j = i;
        while j < n {
            sig.push_str(&s.lines[j].code);
            sig.push(' ');
            if s.lines[j].code.contains('{') || s.lines[j].code.contains(';') {
                break;
            }
            j += 1;
        }
        for (name, _ty) in f64_params(&sig) {
            let lname = name.to_ascii_lowercase();
            if UNIT_NAME_HINTS.iter().any(|h| lname.contains(h)) {
                sink.push(
                    path,
                    i,
                    None,
                    Rule::UnitSafety,
                    format!(
                        "public fn parameter `{name}: f64` names a physical \
                         unit; use the eval-units newtype (Volts, GHz, Watts, \
                         Kelvin, ErrorRate) or justify with \
                         lint:allow(unit-safety)"
                    ),
                );
            }
        }
        i = j + 1;
    }
}

/// Extracts `(name, type)` pairs for parameters typed `f64` / `&f64`.
fn f64_params(sig: &str) -> Vec<(String, String)> {
    let mut res = Vec::new();
    let Some(open) = sig.find('(') else {
        return res;
    };
    // Cut the parameter list at the matching close paren.
    let mut depth = 0i32;
    let mut end = sig.len();
    for (k, c) in sig[open..].char_indices() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | '>' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = open + k;
                    break;
                }
            }
            _ => {}
        }
    }
    let params = &sig[open + 1..end.min(sig.len())];
    for part in params.split(',') {
        let Some((name, ty)) = part.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        let ty = ty.trim();
        let bare = ty.trim_start_matches('&').trim();
        if bare == "f64"
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !name.is_empty()
        {
            res.push((name.to_string(), ty.to_string()));
        }
    }
    res
}
