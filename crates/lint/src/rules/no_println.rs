//! no-println (EVL005): stdout/stderr macros in library code.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Tokens forbidden by the no-println rule. `eprintln!(` contains
/// `println!(` as a substring, so matches require a non-identifier
/// character before the token (see [`has_macro_token`]).
const PRINT_TOKENS: [&str; 5] = [
    "println!(",
    "print!(",
    "eprintln!(",
    "eprint!(",
    "dbg!(",
];

/// True when `line` invokes the macro `tok` (which includes the
/// trailing `!(`): the match must not be the tail of a longer
/// identifier, so `eprintln!(` does not also count as `println!(`.
fn has_macro_token(line: &str, tok: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(tok) {
        let abs = start + pos;
        let prev = line[..abs].chars().next_back();
        if !prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Flags stdout/stderr macros outside test regions.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    for (i, line) in s.code_lines() {
        if s.in_test(i) {
            continue;
        }
        for tok in PRINT_TOKENS {
            if has_macro_token(line, tok) {
                let shown = tok.trim_end_matches('(');
                sink.push(
                    path,
                    i,
                    None,
                    Rule::NoPrintln,
                    format!(
                        "`{shown}` writes to stdout/stderr from library code; \
                         emit an eval-trace event/metric (or return the text) \
                         or justify with lint:allow(no-println)"
                    ),
                );
            }
        }
    }
}
