//! sink-forward (EVL007): `TraceSink` impls that swallow records.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// The three `Record` variants every sink must handle explicitly when
/// it matches on the record at all.
const RECORD_VARIANTS: [&str; 3] = ["Record::Event", "Record::Metric", "Record::Span"];

/// True when a (comment-stripped) line holds a wildcard match arm: a
/// pattern that is `_`, or an or-pattern ending in `| _`, before `=>`.
fn is_wildcard_arm(line: &str) -> bool {
    let Some(head) = line.split("=>").next() else {
        return false;
    };
    if !line.contains("=>") {
        return false;
    }
    let head = head.trim();
    head == "_" || head.ends_with("| _") || head.ends_with("|_")
}

/// Flags `impl ... TraceSink for ...` blocks that can swallow records:
/// wildcard `_ =>` arms, or a `match` over `Record` that does not name
/// all three variants. The trace contract (decorators keep the JSONL
/// stream bit-identical) only holds if every sink forwards every
/// variant.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    let n = s.lines.len();
    let mut i = 0usize;
    while i < n {
        let starts_impl = !s.in_test(i)
            && s.lines[i].code.contains("TraceSink for")
            && (s.lines[i].code.contains("impl")
                || (i > 0 && s.lines[i - 1].code.contains("impl")));
        if !starts_impl {
            i += 1;
            continue;
        }
        let impl_line = i;
        // Walk to the end of the impl's brace region.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = i;
        let mut region = String::new();
        'outer: for (j, line) in s.code_lines().skip(i) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened {
                region.push_str(line);
                region.push('\n');
                if j > impl_line && is_wildcard_arm(line) {
                    sink.push(
                        path,
                        j,
                        None,
                        Rule::SinkForward,
                        "wildcard `_ =>` arm inside a `TraceSink` impl can silently \
                         swallow record variants"
                            .to_string(),
                    );
                }
            }
            if opened && depth <= 0 {
                end = j;
                break 'outer;
            }
            end = j;
        }
        if region.contains("Record::") {
            let missing: Vec<&str> = RECORD_VARIANTS
                .iter()
                .filter(|v| !region.contains(*v))
                .copied()
                .collect();
            if !missing.is_empty() {
                sink.push(
                    path,
                    impl_line,
                    None,
                    Rule::SinkForward,
                    format!(
                        "`TraceSink` impl matches on `Record` but never handles {}; \
                         sinks must forward every variant",
                        missing.join(", ")
                    ),
                );
            }
        }
        i = end + 1;
    }
}
