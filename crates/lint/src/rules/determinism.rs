//! determinism (EVL002): entropy/wall-clock/hash-order sources.

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Tokens forbidden by the determinism rule.
const NONDET_TOKENS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "SystemTime",
    "Instant::now",
    "HashMap",
    "HashSet",
];

/// Flags entropy, wall-clock and hash-ordered-collection tokens.
pub fn run(s: &LexedFile, path: &str, sink: &mut Sink<'_>) {
    for (i, line) in s.code_lines() {
        for tok in NONDET_TOKENS {
            if line.contains(tok) {
                let fix = match tok {
                    "HashMap" => "use BTreeMap (stable iteration order)",
                    "HashSet" => "use BTreeSet (stable iteration order)",
                    _ => "derive all randomness from the seeded eval-rng stream",
                };
                sink.push(
                    path,
                    i,
                    None,
                    Rule::Determinism,
                    format!("`{tok}` breaks bit-identical simulation; {fix}"),
                );
            }
        }
    }
}
