//! dead-suppression (EVL011): `lint:allow` markers that do nothing.
//!
//! Every suppression in the tree carries a justification — but a
//! justification for a finding that no longer exists is worse than
//! none: the marker keeps suppressing, so when a *new* violation
//! appears on that line it sails through review pre-approved. This
//! rule runs last, after every other family has reported, and flags
//! each marker that suppressed nothing (plus markers naming unknown
//! rule families, which can never suppress anything — usually typos).
//!
//! Dead-suppression findings cannot themselves be suppressed.

use std::collections::BTreeMap;

use crate::lexer::LexedFile;
use crate::rules::Sink;
use crate::Rule;

/// Flags unused and unknown `lint:allow` markers. `files` is every
/// lexed in-scope file; `sink.used` must already hold the credits from
/// all other rule families.
pub fn run(files: &BTreeMap<String, LexedFile>, sink: &mut Sink<'_>) {
    let mut findings = Vec::new();
    for (path, lexed) in files {
        for (line_no, line) in lexed.lines.iter().enumerate() {
            for rule_name in &line.allows {
                if sink
                    .used
                    .contains(&(path.clone(), line_no, rule_name.clone()))
                {
                    continue;
                }
                let message = match Rule::from_name(rule_name) {
                    None => format!(
                        "lint:allow({rule_name}) names no known rule family \
                         (known: {}); fix the typo or delete the marker",
                        Rule::ALL.map(|r| r.name()).join(", ")
                    ),
                    Some(Rule::DeadSuppression) => {
                        "dead-suppression findings cannot be suppressed; delete \
                         this marker"
                            .to_string()
                    }
                    Some(r) => format!(
                        "lint:allow({r}) suppresses no finding; the violation \
                         it justified is gone — delete the stale marker"
                    ),
                };
                findings.push((path.clone(), line_no, message));
            }
        }
    }
    for (path, line, message) in findings {
        sink.force(&path, line, None, Rule::DeadSuppression, message);
    }
}
