//! Phase-1 tokenizer: one pass over a source file that produces both a
//! **stripped line view** (comments and string/char literal contents
//! blanked, structure preserved — what the line-shape rules match
//! against) and a **token stream** (identifiers, string literals with
//! their contents, punctuation, each with a line/column span — what the
//! fact extractor consumes).
//!
//! The line view is bit-compatible with the original single-file
//! scanner this engine replaced; `tests/tokenizer_equiv.rs` pins that
//! equivalence over the whole workspace corpus, which is what lets the
//! eight ported rule families guarantee a zero finding-diff.
//!
//! The lexer also carries the two comment-channel protocols:
//! `lint:allow(<rule>)` suppression markers (collected per line) and
//! the file-level `lint:hot-path` marker.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `count`, `CAMPAIGN_CHIPS_DONE`).
    Ident,
    /// A string literal; `text` holds the raw contents (escapes kept
    /// verbatim, quotes and raw-string hashes stripped).
    Str,
    /// A single punctuation character (`(`, `.`, `:`, `=`, ...).
    Punct,
}

/// One token with its span (0-based line, 0-based char column of the
/// token start).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Identifier text, string contents, or the punctuation character.
    pub text: String,
    /// 0-based source line of the token start.
    pub line: usize,
    /// 0-based char column of the token start.
    pub col: usize,
}

/// Per-line metadata of the stripped view.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and literal *contents* blanked; line
    /// length and column positions of code are preserved.
    pub code: String,
    /// Rule names suppressed on this line via `lint:allow(...)`.
    pub allows: Vec<String>,
    /// True when the line holds no code at all (comment or blank).
    pub comment_only: bool,
    /// True inside a `#[cfg(test)]` item's brace region.
    pub in_test: bool,
}

/// A lexed source file: line view + token stream + file markers.
#[derive(Debug)]
pub struct LexedFile {
    /// Per-line stripped view and metadata.
    pub lines: Vec<Line>,
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// True when any comment contains `lint:hot-path`.
    pub hot_path: bool,
}

impl LexedFile {
    /// True when 0-based `line` sits inside a `#[cfg(test)]` region.
    pub fn in_test(&self, line: usize) -> bool {
        self.lines.get(line).is_some_and(|l| l.in_test)
    }

    /// Iterates the stripped code lines (what the shape rules match).
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lines.iter().enumerate().map(|(i, l)| (i, l.code.as_str()))
    }

    /// True when `rule_name` is suppressed at 0-based `line`: an allow
    /// marker on the line itself or in the contiguous comment block
    /// directly above it. Returns the 0-based line of the marker that
    /// matched, so suppression usage can be credited (dead-suppression).
    pub fn allow_marker_for(&self, line: usize, rule_name: &str) -> Option<usize> {
        let hit = |l: usize| self.lines[l].allows.iter().any(|a| a == rule_name);
        if line < self.lines.len() && hit(line) {
            return Some(line);
        }
        let mut l = line.min(self.lines.len().saturating_sub(1));
        while l > 0 && self.lines[l - 1].comment_only {
            l -= 1;
            if hit(l) {
                return Some(l);
            }
        }
        None
    }
}

/// Tokenizes `source`. Never fails: unterminated literals and comments
/// lex as extending to end of file, like the scanner this replaces.
pub fn lex(source: &str) -> LexedFile {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut lines: Vec<Line> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    let mut hot_path = false;

    // Cross-line literal accumulator: contents + span of the start.
    let mut lit = String::new();
    let mut lit_line = 0usize;
    let mut lit_col = 0usize;

    for (line_no, raw) in source.lines().enumerate() {
        let b: Vec<char> = raw.chars().collect();
        let mut out = String::with_capacity(raw.len());
        let mut comment_text = String::new();
        let mut i = 0usize;

        // Identifier accumulator for this line (idents never span lines).
        let mut ident = String::new();
        let mut ident_col = 0usize;
        macro_rules! flush_ident {
            () => {
                if !ident.is_empty() {
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: std::mem::take(&mut ident),
                        line: line_no,
                        col: ident_col,
                    });
                }
            };
        }

        // Line comments never span lines.
        if st == St::Line {
            st = St::Code;
        }
        while i < b.len() {
            let c = b[i];
            let next = b.get(i + 1).copied();
            match st {
                St::Code => match (c, next) {
                    ('/', Some('/')) => {
                        flush_ident!();
                        st = St::Line;
                        comment_text.push_str(&raw[raw.len() - (b.len() - i)..]);
                        break;
                    }
                    ('/', Some('*')) => {
                        flush_ident!();
                        st = St::Block(1);
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    }
                    ('r', Some('"')) => {
                        flush_ident!();
                        st = St::RawStr(0);
                        out.push_str("r\"");
                        lit.clear();
                        lit_line = line_no;
                        lit_col = i;
                        i += 2;
                    }
                    ('r', Some('#')) => {
                        // r#"..."# or r#ident; count hashes then expect '"'.
                        let mut h = 0u32;
                        let mut j = i + 1;
                        while b.get(j) == Some(&'#') {
                            h += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            flush_ident!();
                            st = St::RawStr(h);
                            for _ in i..=j {
                                out.push(' ');
                            }
                            lit.clear();
                            lit_line = line_no;
                            lit_col = i;
                            i = j + 1;
                        } else {
                            // r#ident (raw identifier): keep lexing as code.
                            if ident.is_empty() {
                                ident_col = i;
                            }
                            ident.push(c);
                            out.push(c);
                            i += 1;
                        }
                    }
                    ('"', _) => {
                        flush_ident!();
                        st = St::Str;
                        out.push('"');
                        lit.clear();
                        lit_line = line_no;
                        lit_col = i;
                        i += 1;
                    }
                    ('\'', _) => {
                        flush_ident!();
                        // Char literal vs lifetime: a literal is '\x', 'c',
                        // or multi-char escape ending in a quote nearby.
                        if next == Some('\\') {
                            st = St::Char;
                            out.push('\'');
                            i += 2;
                        } else if b.get(i + 2) == Some(&'\'') {
                            out.push_str("' '");
                            i += 3;
                        } else {
                            out.push('\'');
                            i += 1; // lifetime
                        }
                    }
                    _ => {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            if ident.is_empty() {
                                ident_col = i;
                            }
                            ident.push(c);
                        } else {
                            flush_ident!();
                            if !c.is_whitespace() {
                                tokens.push(Token {
                                    kind: TokenKind::Punct,
                                    text: c.to_string(),
                                    line: line_no,
                                    col: i,
                                });
                            }
                        }
                        out.push(c);
                        i += 1;
                    }
                },
                St::Block(depth) => match (c, next) {
                    ('*', Some('/')) => {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        comment_text.push(' ');
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        st = St::Block(depth + 1);
                        i += 2;
                    }
                    _ => {
                        comment_text.push(c);
                        i += 1;
                    }
                },
                St::Str => match (c, next) {
                    ('\\', Some(n)) => {
                        lit.push(c);
                        lit.push(n);
                        i += 2;
                    }
                    ('"', _) => {
                        st = St::Code;
                        out.push('"');
                        tokens.push(Token {
                            kind: TokenKind::Str,
                            text: std::mem::take(&mut lit),
                            line: lit_line,
                            col: lit_col,
                        });
                        i += 1;
                    }
                    _ => {
                        lit.push(c);
                        i += 1;
                    }
                },
                St::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if b.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            st = St::Code;
                            out.push('"');
                            tokens.push(Token {
                                kind: TokenKind::Str,
                                text: std::mem::take(&mut lit),
                                line: lit_line,
                                col: lit_col,
                            });
                            i += 1 + h as usize;
                            continue;
                        }
                    }
                    lit.push(c);
                    i += 1;
                }
                St::Char => match (c, next) {
                    ('\\', Some(_)) => i += 2,
                    ('\'', _) => {
                        st = St::Code;
                        out.push('\'');
                        i += 1;
                    }
                    _ => i += 1,
                },
                St::Line => break,
            }
        }
        flush_ident!();
        // A literal that spans lines keeps accumulating; reflect the
        // line break in its contents so columns stay meaningful.
        if st == St::Str || matches!(st, St::RawStr(_)) {
            lit.push('\n');
        }

        let mut line_allows = Vec::new();
        let mut rest = comment_text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let tail = &rest[pos + "lint:allow(".len()..];
            if let Some(end) = tail.find(')') {
                line_allows.push(tail[..end].trim().to_string());
                rest = &tail[end + 1..];
            } else {
                break;
            }
        }
        if comment_text.contains("lint:hot-path") {
            hot_path = true;
        }
        lines.push(Line {
            comment_only: out.trim().is_empty(),
            code: out,
            allows: line_allows,
            in_test: false,
        });
    }

    // Mark #[cfg(test)] brace regions on the stripped view.
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the next item and track depth.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    LexedFile {
        lines,
        tokens,
        hot_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_view_blanks_comments_and_literal_contents() {
        let f = lex("let x = \"HashMap\"; // HashMap in a comment\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains('"'));
    }

    #[test]
    fn tokens_carry_string_contents_and_spans() {
        let f = lex("t.count(\"campaign.chips_done\");\n");
        let s: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "campaign.chips_done");
        assert_eq!(s[0].line, 0);
        assert_eq!(s[0].col, 8);
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["t", "count"]);
    }

    #[test]
    fn raw_strings_and_escapes_lex_as_single_tokens() {
        let f = lex("let a = r#\"x \"inner\" y\"#; let b = \"a\\\"b\";\n");
        let s: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(s, ["x \"inner\" y", "a\\\"b"]);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = lex("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n");
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, true, true, true, true, false]);
    }

    #[test]
    fn allow_markers_resolve_through_comment_blocks() {
        let f = lex("// lint:allow(determinism): justified\n// more context\nuse std::collections::HashMap;\n");
        assert_eq!(f.allow_marker_for(2, "determinism"), Some(0));
        assert_eq!(f.allow_marker_for(2, "panic-safety"), None);
    }

    #[test]
    fn hot_path_marker_is_detected() {
        assert!(lex("// lint:hot-path\nfn f() {}\n").hot_path);
        assert!(!lex("fn f() {}\n").hot_path);
    }

    #[test]
    fn multiline_strings_emit_one_token_at_the_start() {
        let f = lex("let s = \"line one\nline two\";\nlet t = 1;\n");
        let s: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 0);
        assert!(s[0].text.contains('\n'));
    }
}
