//! # eval-units
//!
//! Unit-safe newtypes for the physical quantities the EVAL reproduction
//! passes across crate boundaries, plus the canonical constants of the
//! paper's evaluation setup (Figure 7(a) / Table 1).
//!
//! The motivating failure mode is silent: a `Vdd` in volts fed where a
//! `Vbb` body bias was expected, or a frequency in GHz used as a period in
//! ns, corrupts every `PE(f)` curve downstream without any test failing.
//! The newtypes make such mix-ups type errors, and their *validated*
//! constructors reject values outside the actuator ranges of Figure 7(a)
//! (e.g. `Vdd ∈ [0.6, 1.2] V`, `ErrorRate ∈ [0, 1]`).
//!
//! Two construction paths exist on purpose:
//!
//! * `Volts::vdd(x)` / `GHz::new(x)` / … — validated, `Result`-returning;
//!   use these at API boundaries and when ingesting external data.
//! * `Volts::raw(x)` / `GHz::raw(x)` / … — `const`, unchecked; use these
//!   for compile-time constants and inner loops that stay on the discrete
//!   actuator ladders (which are validated once at construction).
//!
//! The [`consts`] module is the **single source of truth** for the paper's
//! numbers (`PMAX` = 30 W, `TMAX` = 85 °C, `PEMAX` = 1e-4, σ/μ = 0.09,
//! φ = 0.5). `eval-lint`'s `config-invariants` rule flags any other crate
//! that re-literalises them.
//!
//! ## Example
//!
//! ```
//! use eval_units::{GHz, Volts};
//!
//! let vdd = Volts::vdd(1.05).expect("in the ASV range");
//! assert!(Volts::vdd(1.5).is_err()); // outside [0.6, 1.2] V
//! let f = GHz::new(4.2).expect("positive and finite");
//! assert!((f.get() * 2.0 - 8.4).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// A value rejected by a unit's validated constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitRangeError {
    /// Which unit/constructor rejected the value.
    pub unit: &'static str,
    /// The offending value.
    pub value: f64,
    /// Inclusive lower bound of the accepted range.
    pub min: f64,
    /// Inclusive upper bound of the accepted range.
    pub max: f64,
}

impl fmt::Display for UnitRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} outside [{}, {}]",
            self.unit, self.value, self.min, self.max
        )
    }
}

impl Error for UnitRangeError {}

fn checked(
    unit: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<f64, UnitRangeError> {
    if value.is_finite() && value >= min && value <= max {
        Ok(value)
    } else {
        Err(UnitRangeError {
            unit,
            value,
            min,
            max,
        })
    }
}

macro_rules! unit_newtype {
    (
        $(#[$doc:meta])*
        $name:ident, $symbol:literal
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a value without validation (`const`; for compile-time
            /// constants and ladder-quantized inner loops).
            pub const fn raw(value: f64) -> Self {
                Self(value)
            }

            /// The underlying `f64`.
            pub const fn get(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{} ", $symbol), self.0)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit_newtype!(
    /// An electric potential in volts. Use [`Volts::vdd`] / [`Volts::vbb`]
    /// for the supply/body-bias actuator ranges of Figure 7(a).
    Volts,
    "V"
);

unit_newtype!(
    /// A clock frequency in gigahertz.
    GHz,
    "GHz"
);

unit_newtype!(
    /// A power in watts.
    Watts,
    "W"
);

unit_newtype!(
    /// An absolute temperature in kelvin. Chip-level code senses and
    /// reports Celsius; convert at the boundary with
    /// [`Kelvin::from_celsius`] / [`Kelvin::celsius`].
    Kelvin,
    "K"
);

unit_newtype!(
    /// An error rate in errors per instruction (or per access), a
    /// probability-like quantity in `[0, 1]`.
    ErrorRate,
    "err/inst"
);

impl Volts {
    /// ASV supply range of Figure 7(a): 800 mV – 1.2 V in 50 mV steps,
    /// widened to 0.6 V at the bottom for the degraded operating points
    /// §2's Table 1 sweeps.
    pub const VDD_MIN: f64 = 0.6;
    /// Upper end of the ASV supply range.
    pub const VDD_MAX: f64 = 1.2;
    /// ABB range of Figure 7(a): ±500 mV of body bias.
    pub const VBB_MIN: f64 = -0.5;
    /// Upper end of the ABB range (forward bias).
    pub const VBB_MAX: f64 = 0.5;

    /// A validated supply voltage in `[0.6, 1.2]` V.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `v` is outside the range or not finite.
    pub fn vdd(v: f64) -> Result<Self, UnitRangeError> {
        checked("Vdd", v, Self::VDD_MIN, Self::VDD_MAX).map(Self)
    }

    /// A validated body-bias voltage in `[-0.5, 0.5]` V.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `v` is outside the range or not finite.
    pub fn vbb(v: f64) -> Result<Self, UnitRangeError> {
        checked("Vbb", v, Self::VBB_MIN, Self::VBB_MAX).map(Self)
    }

    /// The value in millivolts (display convenience).
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl GHz {
    /// A validated frequency: positive, finite, and below 100 GHz (far
    /// above any plausible operating point of the modeled 45 nm parts).
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `f` is not in `(0, 100]`.
    pub fn new(f: f64) -> Result<Self, UnitRangeError> {
        checked("frequency", f, f64::MIN_POSITIVE, 100.0).map(Self)
    }

    /// The corresponding clock period in nanoseconds.
    pub fn period_ns(self) -> f64 {
        1.0 / self.0
    }
}

impl Watts {
    /// A validated power: non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `w` is negative or not finite.
    pub fn new(w: f64) -> Result<Self, UnitRangeError> {
        checked("power", w, 0.0, f64::MAX).map(Self)
    }
}

impl Kelvin {
    /// Offset between the Celsius and Kelvin scales.
    pub const CELSIUS_OFFSET: f64 = 273.15;

    /// A validated absolute temperature: non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `k` is negative or not finite.
    pub fn new(k: f64) -> Result<Self, UnitRangeError> {
        checked("temperature", k, 0.0, f64::MAX).map(Self)
    }

    /// Converts a Celsius temperature (validated against absolute zero).
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `c` is below −273.15 °C or not finite.
    pub fn from_celsius(c: f64) -> Result<Self, UnitRangeError> {
        checked("temperature (C)", c, -Self::CELSIUS_OFFSET, f64::MAX)
            .map(|c| Self(c + Self::CELSIUS_OFFSET))
    }

    /// The value on the Celsius scale.
    pub fn celsius(self) -> f64 {
        self.0 - Self::CELSIUS_OFFSET
    }
}

impl ErrorRate {
    /// A validated error rate in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `p` is outside `[0, 1]` or not finite.
    pub fn new(p: f64) -> Result<Self, UnitRangeError> {
        checked("error rate", p, 0.0, 1.0).map(Self)
    }
}

/// The paper's canonical constants — defined here **once** and imported
/// everywhere else (`eval-lint` rule `config-invariants` enforces this).
pub mod consts {
    use super::{ErrorRate, GHz, Volts, Watts};

    /// `PMAX`: maximum per-processor power (Figure 7(a)).
    pub const P_MAX: Watts = Watts::raw(30.0);
    /// `TMAX`: maximum junction temperature, Celsius (Figure 7(a)).
    pub const T_MAX_C: f64 = 85.0;
    /// `TH_MAX`: maximum heat-sink temperature, Celsius (Figure 7(a)).
    pub const TH_MAX_C: f64 = 70.0;
    /// `PEMAX`: maximum tolerated error rate, errors/instruction (§4.1).
    pub const PE_MAX: ErrorRate = ErrorRate::raw(1e-4);
    /// Total σ/μ of the within-die Vt variation (VARIUS setup, Table 1).
    pub const SIGMA_OVER_MU: f64 = 0.09;
    /// Spatial-correlation range φ as a fraction of the die width (Table 1).
    pub const PHI: f64 = 0.5;
    /// Nominal core frequency of the modeled part.
    pub const F_NOMINAL: GHz = GHz::raw(4.0);
    /// Nominal supply voltage of the modeled part.
    pub const VDD_NOMINAL: Volts = Volts::raw(1.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdd_accepts_the_asv_ladder_and_rejects_outside() {
        assert!(Volts::vdd(0.6).is_ok());
        assert!(Volts::vdd(1.2).is_ok());
        assert!(Volts::vdd(0.55).is_err());
        assert!(Volts::vdd(1.25).is_err());
        assert!(Volts::vdd(f64::NAN).is_err());
    }

    #[test]
    fn vbb_is_symmetric_about_zero() {
        assert!(Volts::vbb(-0.5).is_ok());
        assert!(Volts::vbb(0.5).is_ok());
        assert!(Volts::vbb(0.51).is_err());
        assert!(Volts::vbb(-0.51).is_err());
    }

    #[test]
    fn error_rate_is_a_probability() {
        assert!(ErrorRate::new(0.0).is_ok());
        assert!(ErrorRate::new(1.0).is_ok());
        assert!(ErrorRate::new(-1e-9).is_err());
        assert!(ErrorRate::new(1.0 + 1e-9).is_err());
    }

    #[test]
    fn frequency_must_be_positive_and_finite() {
        assert!(GHz::new(4.0).is_ok());
        assert!(GHz::new(0.0).is_err());
        assert!(GHz::new(-1.0).is_err());
        assert!(GHz::new(f64::INFINITY).is_err());
        assert!((GHz::raw(4.0).period_ns() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kelvin_round_trips_celsius() {
        let t = Kelvin::from_celsius(85.0).expect("valid");
        assert!((t.celsius() - 85.0).abs() < 1e-12);
        assert!((t.get() - 358.15).abs() < 1e-12);
        assert!(Kelvin::from_celsius(-300.0).is_err());
    }

    #[test]
    fn paper_constants_match_figure_7a() {
        assert_eq!(consts::P_MAX.get(), 30.0);
        assert_eq!(consts::T_MAX_C, 85.0);
        assert_eq!(consts::PE_MAX.get(), 1e-4);
        assert_eq!(consts::SIGMA_OVER_MU, 0.09);
        assert_eq!(consts::PHI, 0.5);
    }

    #[test]
    fn errors_render_with_unit_and_range() {
        let e = Volts::vdd(2.0).expect_err("out of range");
        let msg = e.to_string();
        assert!(msg.contains("Vdd") && msg.contains("0.6") && msg.contains("1.2"), "{msg}");
    }

    #[test]
    fn display_includes_unit_symbols() {
        assert_eq!(Volts::raw(1.0).to_string(), "1 V");
        assert_eq!(GHz::raw(4.0).to_string(), "4 GHz");
        assert_eq!(Watts::raw(30.0).to_string(), "30 W");
    }
}
