//! Chip grid geometry.
//!
//! The chip is normalized to the unit square: distances are expressed as a
//! fraction of the chip edge, matching how the EVAL paper expresses the
//! correlation range `phi` (0.5 means "half the chip width").

/// A rectangular grid of cells covering the (unit-square) chip.
///
/// Each cell takes a single value of the systematic variation component,
/// exactly as in the VARIUS model ("a chip is divided into a grid; each grid
/// cell takes on a single value of Vt's systematic component").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipGrid {
    nx: usize,
    ny: usize,
}

impl ChipGrid {
    /// Creates a grid with `nx` columns and `ny` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be non-zero");
        Self { nx, ny }
    }

    /// Creates a square `n x n` grid.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Center coordinates of cell `(ix, iy)` in chip-edge units.
    ///
    /// The longer grid edge maps to 1.0; the aspect ratio is preserved.
    pub fn cell_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        debug_assert!(ix < self.nx && iy < self.ny);
        let scale = 1.0 / self.nx.max(self.ny) as f64;
        (
            (ix as f64 + 0.5) * scale,
            (iy as f64 + 0.5) * scale,
        )
    }

    /// Flat index of cell `(ix, iy)` (row-major).
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Inverse of [`ChipGrid::index`].
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.cells());
        (idx % self.nx, idx / self.nx)
    }

    /// Euclidean distance between the centers of two cells, in chip-edge units.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let (axc, ayc) = self.cell_center(ax, ay);
        let (bxc, byc) = self.cell_center(bx, by);
        ((axc - bxc).powi(2) + (ayc - byc).powi(2)).sqrt()
    }

    /// Iterates over all flat cell indices inside the axis-aligned rectangle
    /// `[x0, x1) x [y0, y1)` given in cell coordinates.
    ///
    /// Used to map a subsystem's floorplan rectangle onto grid cells.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the grid bounds or is empty.
    pub fn rect_cells(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> Vec<usize> {
        assert!(x0 < x1 && y0 < y1, "empty rectangle");
        assert!(x1 <= self.nx && y1 <= self.ny, "rectangle out of bounds");
        let mut out = Vec::with_capacity((x1 - x0) * (y1 - y0));
        for iy in y0..y1 {
            for ix in x0..x1 {
                out.push(self.index(ix, iy));
            }
        }
        out
    }
}

impl Default for ChipGrid {
    /// A 32 x 32 grid: fine enough that the 15 subsystems of a core quadrant
    /// each cover several cells, coarse enough that the one-time Cholesky
    /// factorization stays cheap.
    fn default() -> Self {
        Self::square(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = ChipGrid::new(7, 5);
        for iy in 0..5 {
            for ix in 0..7 {
                let idx = g.index(ix, iy);
                assert_eq!(g.coords(idx), (ix, iy));
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let g = ChipGrid::square(8);
        assert_eq!(g.distance(3, 3), 0.0);
        assert!((g.distance(0, 63) - g.distance(63, 0)).abs() < 1e-15);
    }

    #[test]
    fn corner_to_corner_distance_is_near_sqrt2() {
        let g = ChipGrid::square(64);
        let d = g.distance(0, 64 * 64 - 1);
        // Centers are half a cell in from the corners.
        assert!((d - std::f64::consts::SQRT_2 * (63.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn rect_cells_covers_expected_cells() {
        let g = ChipGrid::square(4);
        let cells = g.rect_cells(1, 1, 3, 2);
        assert_eq!(cells, vec![g.index(1, 1), g.index(2, 1)]);
    }

    #[test]
    #[should_panic(expected = "empty rectangle")]
    fn rect_cells_rejects_empty() {
        ChipGrid::square(4).rect_cells(2, 2, 2, 3);
    }

    #[test]
    fn rectangular_grid_preserves_aspect() {
        let g = ChipGrid::new(8, 4);
        let (x, y) = g.cell_center(7, 3);
        assert!(x < 1.0 && y < 0.5 + 1e-12);
    }
}
