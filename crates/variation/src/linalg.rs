//! Minimal dense linear algebra: just enough to sample correlated Gaussian
//! fields (a symmetric matrix store and a Cholesky factorization with
//! diagonal jitter for near-PSD inputs).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Error returned when a Cholesky factorization fails even after jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    /// Pivot index at which the factorization broke down.
    pub pivot: usize,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (breakdown at pivot {})",
            self.pivot
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerTriangular {
    n: usize,
    /// Packed rows: row i holds i+1 entries.
    data: Vec<f64>,
}

impl LowerTriangular {
    /// Factors the symmetric matrix `a`.
    ///
    /// Correlation matrices built from valid variogram models are PSD but can
    /// be numerically semi-definite; a small diagonal jitter (growing by 10x
    /// up to `1e-6`) is added automatically on breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError`] if the matrix is not positive definite even
    /// with the maximum jitter.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn cholesky(a: &Matrix) -> Result<Self, CholeskyError> {
        assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
        let mut jitter = 0.0;
        loop {
            match Self::try_factor(a, jitter) {
                Ok(l) => return Ok(l),
                Err(e) => {
                    if jitter >= 1e-6 {
                        return Err(e);
                    }
                    jitter = if jitter == 0.0 { 1e-12 } else { jitter * 10.0 };
                }
            }
        }
    }

    fn try_factor(a: &Matrix, jitter: f64) -> Result<Self, CholeskyError> {
        let n = a.rows();
        let mut l = vec![0.0; n * (n + 1) / 2];
        let row_start = |i: usize| i * (i + 1) / 2;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[row_start(i) + k] * l[row_start(j) + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(CholeskyError { pivot: i });
                    }
                    l[row_start(i) + j] = sum.sqrt();
                } else {
                    l[row_start(i) + j] = sum / l[row_start(j) + j];
                }
            }
        }
        Ok(Self { n, data: l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Computes `L * z` for a vector `z` of i.i.d. standard normals, turning
    /// it into a sample of the correlated field.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn mul_vec(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n, "vector length must match dimension");
        let mut out = vec![0.0; self.n];
        let mut start = 0;
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[start..start + i + 1];
            let mut acc = 0.0;
            for (lk, zk) in row.iter().zip(z.iter()) {
                acc += lk * zk;
            }
            *o = acc;
            start += i + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> Matrix {
        // A = M^T M + I for a simple M, guaranteed SPD.
        let mut a = Matrix::zeros(3, 3);
        let vals = [
            [4.0, 2.0, 0.6],
            [2.0, 5.0, 1.0],
            [0.6, 1.0, 3.0],
        ];
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = vals[i][j];
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd_3x3();
        let l = LowerTriangular::cholesky(&a).unwrap();
        // Check A = L L^T by multiplying basis vectors.
        for j in 0..3 {
            let mut e = vec![0.0; 3];
            e[j] = 1.0;
            // L L^T e_j: compute L^T e_j first via full reconstruction check
            // A[i][j] = sum_k L[i][k] L[j][k]
            let li = |r: usize, c: usize| {
                if c > r {
                    0.0
                } else {
                    l.mul_vec(&{
                        let mut v = vec![0.0; 3];
                        v[c] = 1.0;
                        v
                    })[r]
                }
            };
            for i in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += li(i, k) * li(j, k);
                }
                assert!((s - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        assert!(LowerTriangular::cholesky(&a).is_err());
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but singular.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        let l = LowerTriangular::cholesky(&a).unwrap();
        assert_eq!(l.dim(), 2);
    }

    #[test]
    fn mul_vec_identity_factor_is_identity() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = 1.0;
        }
        let l = LowerTriangular::cholesky(&a).unwrap();
        let z = vec![1.0, -2.0, 3.0, -4.0];
        let out = l.mul_vec(&z);
        for (o, zi) in out.iter().zip(z.iter()) {
            assert!((o - zi).abs() < 1e-9);
        }
    }
}
