//! Gaussian distribution utilities with tail-accurate `erfc`.
//!
//! Timing-error probabilities in EVAL live deep in the Gaussian tail
//! (the error-rate constraint is 1e-4 errors/instruction and "error-free"
//! operation corresponds to ~1e-12), so the complementary error function
//! must be accurate in a *relative* sense far from the mean. We use the
//! Chebyshev-fitted rational approximation (fractional error < 1.2e-7 for
//! all arguments) popularized by *Numerical Recipes*.

/// Complementary error function with fractional error below `1.2e-7`.
///
/// # Example
///
/// ```
/// use eval_variation::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(5.0) < 2e-11);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t * (-z * z
        - 1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87
                                    + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Phi(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal upper-tail probability `Q(x) = 1 - Phi(x)`.
///
/// Accurate in relative terms even for large `x`, unlike `1.0 - normal_cdf(x)`.
pub fn normal_tail(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (Acklam's algorithm, |rel err| < 1.15e-9).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Example
///
/// ```
/// use eval_variation::{inverse_normal_cdf, normal_cdf};
/// let x = inverse_normal_cdf(0.975);
/// assert!((x - 1.959964).abs() < 1e-4);
/// assert!((normal_cdf(x) - 0.975).abs() < 1e-9);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the accurate erfc.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Inverse of the standard normal upper-tail: returns `z` with
/// `normal_tail(z) = q`. Unlike `inverse_normal_cdf(1.0 - q)`, this stays
/// accurate for tail probabilities far below machine epsilon relative to 1
/// (e.g. `q = 1e-17`), which is where timing-error sign-off margins live.
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
///
/// # Example
///
/// ```
/// use eval_variation::{inverse_normal_tail, normal_tail};
/// let z = inverse_normal_tail(1e-15);
/// assert!((normal_tail(z) / 1e-15 - 1.0).abs() < 1e-5);
/// ```
pub fn inverse_normal_tail(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "probability must be in (0, 1)");
    if q >= 0.02425 {
        return inverse_normal_cdf(1.0 - q);
    }
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let r = (-2.0 * q.ln()).sqrt();
    let z = -(((((C[0] * r + C[1]) * r + C[2]) * r + C[3]) * r + C[4]) * r + C[5])
        / ((((D[0] * r + D[1]) * r + D[2]) * r + D[3]) * r + 1.0);
    // One Newton step on Q(z) - q using the relative-accurate tail.
    let e = normal_tail(z) - q;
    let phi = (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    z + e / phi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_9),
            (1.0, 0.157_299_207_050_3),
            (2.0, 0.004_677_734_981_063),
            (3.0, 2.209_049_699_858_5e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-6,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_negative_symmetry() {
        for x in [0.3, 1.1, 2.7] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_tail_deep_values() {
        // Q(6) ~ 9.866e-10; relative accuracy should hold.
        let q6 = normal_tail(6.0);
        assert!(((q6 - 9.865_9e-10) / 9.865_9e-10).abs() < 1e-4);
        // Monotone decreasing.
        assert!(normal_tail(7.0) < q6);
    }

    #[test]
    fn inverse_cdf_roundtrip() {
        for &p in &[1e-9, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!(
                (back - p).abs() < 1e-8 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e6),
                "roundtrip failed at p={p}: x={x}, back={back}"
            );
        }
    }

    #[test]
    fn inverse_cdf_median_is_near_zero() {
        // The Halley refinement uses erfc (1.2e-7 fractional error), so the
        // median lands within that tolerance of zero rather than exactly on it.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "probability must be in (0, 1)")]
    fn inverse_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }
}
