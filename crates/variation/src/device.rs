//! Alpha-power-law device equations (Equations 1–2 of the EVAL paper).
//!
//! Gate delay:    `Tg  ∝ Vdd * Leff / (mu(T) * (Vdd - Vt)^alpha)`
//! Leakage power: `Psta ∝ Vdd * T^2 * exp(-q Vt / k T)`
//!
//! Everything here is expressed as a *factor relative to nominal conditions*
//! so that callers can scale a nominal path delay (or leakage budget) by the
//! local process, voltage and temperature state.

/// `q/k` in kelvin per volt (electron charge over Boltzmann constant).
pub const Q_OVER_K: f64 = 11_604.518;

/// Celsius-to-kelvin offset.
pub const KELVIN: f64 = 273.15;

/// Device-physics constants shared by the whole chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Velocity-saturation exponent of the alpha-power law (~1.3 at 45 nm).
    pub alpha: f64,
    /// Mobility temperature exponent: `mu(T) ∝ T^-mu_exp` (~1.5).
    pub mu_exp: f64,
    /// Nominal supply voltage in volts.
    pub vdd_nominal: f64,
    /// Nominal threshold voltage in volts at `t_ref_c`.
    pub vt_nominal: f64,
    /// Nominal effective channel length (normalized; 1.0 = nominal).
    pub leff_nominal: f64,
    /// Reference temperature in Celsius at which `Vt` maps are expressed.
    pub t_ref_c: f64,
    /// Vt sensitivity to temperature in V/K (negative: Vt drops when hot).
    pub k1_vt_per_kelvin: f64,
    /// Vt sensitivity to supply voltage (DIBL; negative).
    pub k2_vt_per_vdd: f64,
    /// Vt sensitivity to body bias (negative: forward bias lowers Vt).
    pub k3_vt_per_vbb: f64,
    /// Leakage subthreshold-slope factor: effective `n * kT/q` divisor is
    /// captured by dividing `Vt` by `n_sub` in the exponent.
    pub n_sub: f64,
    /// Delay exponent of the channel length: `Tg ∝ Leff^leff_exp`. Above
    /// 1.0 because a longer channel both weakens drive current and raises
    /// gate capacitance.
    pub leff_exp: f64,
}

impl DeviceParams {
    /// Constants matching the EVAL evaluation setup (45 nm, 1 V, Vt = 150 mV
    /// at 100 C).
    pub fn micro08() -> Self {
        Self {
            alpha: 1.5,
            mu_exp: 1.5,
            vdd_nominal: 1.0,
            vt_nominal: 0.250,
            leff_nominal: 1.0,
            t_ref_c: 100.0,
            k1_vt_per_kelvin: -0.9e-3,
            k2_vt_per_vdd: -0.05,
            k3_vt_per_vbb: -0.15,
            n_sub: 1.8,
            leff_exp: 1.7,
        }
    }

    /// Threshold voltage at operating conditions, from its reference value
    /// `vt0` (measured at `t_ref_c`, nominal Vdd, zero body bias).
    ///
    /// Implements Equation 9 of the paper in delta form:
    /// `Vt = Vt0 + k1 (T - T0) + k2 (Vdd - Vdd0) + k3 Vbb`.
    pub fn vt_at(&self, vt0: f64, t_c: f64, vdd: f64, vbb: f64) -> f64 {
        vt0 + self.k1_vt_per_kelvin * (t_c - self.t_ref_c)
            + self.k2_vt_per_vdd * (vdd - self.vdd_nominal)
            + self.k3_vt_per_vbb * vbb
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::micro08()
    }
}

/// Relative gate-delay factor: 1.0 at nominal `(Vt, Leff, Vdd, T)`.
///
/// `vt` and `leff` are the *local* values (already including variation and
/// any body-bias/temperature adjustment); `vdd` is the local supply;
/// `t_c` the local temperature in Celsius.
///
/// # Panics
///
/// Panics if the device would not switch (`vdd <= vt`), which indicates the
/// caller is exploring an invalid operating point and should have rejected
/// it earlier.
///
/// # Example
///
/// ```
/// use eval_variation::{delay_factor, DeviceParams};
/// let p = DeviceParams::micro08();
/// let nominal = delay_factor(&p, p.vt_nominal, 1.0, p.vdd_nominal, p.t_ref_c);
/// assert!((nominal - 1.0).abs() < 1e-12);
/// // Higher Vt -> slower gate.
/// assert!(delay_factor(&p, p.vt_nominal + 0.05, 1.0, 1.0, 100.0) > 1.0);
/// // Higher Vdd -> faster gate.
/// assert!(delay_factor(&p, p.vt_nominal, 1.0, 1.1, 100.0) < 1.0);
/// ```
pub fn delay_factor(p: &DeviceParams, vt: f64, leff: f64, vdd: f64, t_c: f64) -> f64 {
    assert!(
        vdd > vt,
        "supply voltage {vdd} V must exceed threshold {vt} V"
    );
    let t_k = t_c + KELVIN;
    let t_ref_k = p.t_ref_c + KELVIN;
    let overdrive = (vdd - vt).powf(p.alpha);
    let overdrive_nom = (p.vdd_nominal - p.vt_nominal).powf(p.alpha);
    // mu(T) ∝ T^-mu_exp, so delay ∝ T^mu_exp.
    let mobility = (t_k / t_ref_k).powf(p.mu_exp);
    (vdd / p.vdd_nominal)
        * (leff / p.leff_nominal).powf(p.leff_exp)
        * mobility
        * (overdrive_nom / overdrive)
}

/// Relative subthreshold-leakage factor: 1.0 at nominal `(Vt, Vdd, T)`.
///
/// # Example
///
/// ```
/// use eval_variation::{leakage_factor, DeviceParams};
/// let p = DeviceParams::micro08();
/// let nominal = leakage_factor(&p, p.vt_nominal, p.vdd_nominal, p.t_ref_c);
/// assert!((nominal - 1.0).abs() < 1e-12);
/// // Lower Vt -> exponentially more leakage.
/// assert!(leakage_factor(&p, p.vt_nominal - 0.08, 1.0, 100.0) > 2.0);
/// // Hotter -> more leakage.
/// assert!(leakage_factor(&p, p.vt_nominal, 1.0, 120.0) > 1.0);
/// ```
pub fn leakage_factor(p: &DeviceParams, vt: f64, vdd: f64, t_c: f64) -> f64 {
    let t_k = t_c + KELVIN;
    let t_ref_k = p.t_ref_c + KELVIN;
    let expo = -Q_OVER_K * vt / (p.n_sub * t_k);
    let expo_nom = -Q_OVER_K * p.vt_nominal / (p.n_sub * t_ref_k);
    (vdd / p.vdd_nominal) * (t_k / t_ref_k).powi(2) * (expo - expo_nom).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_increases_with_leff() {
        let p = DeviceParams::micro08();
        assert!(
            delay_factor(&p, 0.15, 1.05, 1.0, 100.0) > delay_factor(&p, 0.15, 1.0, 1.0, 100.0)
        );
    }

    #[test]
    fn delay_increases_with_temperature() {
        let p = DeviceParams::micro08();
        assert!(delay_factor(&p, 0.15, 1.0, 1.0, 120.0) > delay_factor(&p, 0.15, 1.0, 1.0, 80.0));
    }

    #[test]
    fn asv_speedup_magnitude_is_plausible() {
        // +100 mV of supply speeds gates up by ~8-12% at this design point
        // (d ln Tg / d Vdd = 1/Vdd - alpha/(Vdd - Vt)).
        let p = DeviceParams::micro08();
        let f = delay_factor(&p, p.vt_nominal, 1.0, 1.1, 100.0);
        assert!(f < 0.96 && f > 0.85, "delay factor at 1.1 V was {f}");
    }

    #[test]
    fn fbb_lowers_vt_and_speeds_up() {
        let p = DeviceParams::micro08();
        let vt_fbb = p.vt_at(p.vt_nominal, 100.0, 1.0, 0.5);
        assert!(vt_fbb < p.vt_nominal);
        assert!(delay_factor(&p, vt_fbb, 1.0, 1.0, 100.0) < 1.0);
    }

    #[test]
    fn rbb_raises_vt_and_cuts_leakage() {
        let p = DeviceParams::micro08();
        let vt_rbb = p.vt_at(p.vt_nominal, 100.0, 1.0, -0.5);
        assert!(vt_rbb > p.vt_nominal);
        assert!(leakage_factor(&p, vt_rbb, 1.0, 100.0) < 1.0);
    }

    #[test]
    fn leakage_sigma_vt_spread_is_large() {
        // A -3 sigma Vt cell (3 sigma ~ 40 mV lower) should leak
        // noticeably more, and a +3 sigma cell noticeably less.
        let p = DeviceParams::micro08();
        let lo = leakage_factor(&p, p.vt_nominal - 0.0405, 1.0, 100.0);
        let hi = leakage_factor(&p, p.vt_nominal + 0.0405, 1.0, 100.0);
        assert!(lo > 1.5 && hi < 0.7, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "must exceed threshold")]
    fn delay_rejects_subthreshold_operation() {
        let p = DeviceParams::micro08();
        delay_factor(&p, 0.9, 1.0, 0.8, 100.0);
    }
}
