//! Chip populations: the "100 chips per experiment" Monte Carlo protocol.

use crate::maps::{ChipMap, VariationModel, VariationParams};
use crate::grid::ChipGrid;

/// A reproducible set of manufactured chips sharing statistical parameters
/// but with personalized variation maps (EVAL §5: "each individual experiment
/// is repeated 100 times, using 100 chips").
#[derive(Debug, Clone)]
pub struct ChipPopulation {
    model: VariationModel,
    base_seed: u64,
    count: usize,
}

impl ChipPopulation {
    /// Creates a population of `count` chips on `grid` with `params`,
    /// deterministically derived from `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(grid: ChipGrid, params: VariationParams, base_seed: u64, count: usize) -> Self {
        assert!(count > 0, "population must contain at least one chip");
        Self {
            model: VariationModel::new(grid, params),
            base_seed,
            count,
        }
    }

    /// The paper's protocol: 100 chips on the default grid with MICRO'08
    /// parameters.
    pub fn micro08(base_seed: u64) -> Self {
        Self::new(ChipGrid::default(), VariationParams::micro08(), base_seed, 100)
    }

    /// Number of chips in the population.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the population is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The shared sampler.
    pub fn model(&self) -> &VariationModel {
        &self.model
    }

    /// Generates chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn chip(&self, i: usize) -> ChipMap {
        assert!(i < self.count, "chip index {i} out of range {}", self.count);
        self.model
            .sample_chip(self.base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)))
    }

    /// Iterates over all chips in the population.
    pub fn iter(&self) -> impl Iterator<Item = ChipMap> + '_ {
        (0..self.count).map(move |i| self.chip(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let p1 = ChipPopulation::new(ChipGrid::square(8), VariationParams::micro08(), 5, 4);
        let p2 = ChipPopulation::new(ChipGrid::square(8), VariationParams::micro08(), 5, 4);
        assert_eq!(p1.chip(2), p2.chip(2));
    }

    #[test]
    fn chips_differ_from_each_other() {
        let p = ChipPopulation::new(ChipGrid::square(8), VariationParams::micro08(), 5, 3);
        assert_ne!(p.chip(0).vt.values(), p.chip(1).vt.values());
        assert_ne!(p.chip(1).vt.values(), p.chip(2).vt.values());
    }

    #[test]
    fn iter_yields_len_chips() {
        let p = ChipPopulation::new(ChipGrid::square(6), VariationParams::micro08(), 1, 5);
        assert_eq!(p.iter().count(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chip_index_is_bounds_checked() {
        let p = ChipPopulation::new(ChipGrid::square(6), VariationParams::micro08(), 1, 2);
        p.chip(2);
    }
}
