//! Spatial correlation of the systematic variation component.
//!
//! VARIUS correlates the systematic component of `Vt` (and `Leff`) with a
//! function that depends only on the distance `r` between two points and
//! decreases to zero at a distance `phi` called the *range*. We use the
//! spherical variogram model recommended by VARIUS:
//!
//! ```text
//! rho(r) = 1 - 3r/(2 phi) + r^3 / (2 phi^3)   for r <= phi
//! rho(r) = 0                                   for r >  phi
//! ```

use crate::grid::ChipGrid;
use crate::linalg::Matrix;

/// Spherical correlation function with range `phi`.
///
/// Returns the correlation between the systematic components at two points
/// separated by distance `r` (both in chip-edge units).
///
/// # Panics
///
/// Panics if `phi <= 0` or `r < 0`.
///
/// # Example
///
/// ```
/// use eval_variation::spherical_correlation;
/// assert_eq!(spherical_correlation(0.0, 0.5), 1.0);
/// assert_eq!(spherical_correlation(0.5, 0.5), 0.0);
/// assert!(spherical_correlation(0.25, 0.5) > 0.0);
/// ```
pub fn spherical_correlation(r: f64, phi: f64) -> f64 {
    assert!(phi > 0.0, "correlation range must be positive");
    assert!(r >= 0.0, "distance must be non-negative");
    if r >= phi {
        0.0
    } else {
        let x = r / phi;
        1.0 - 1.5 * x + 0.5 * x * x * x
    }
}

/// Builds the full cell-to-cell correlation matrix for `grid` with range `phi`.
///
/// The result is symmetric positive semi-definite with unit diagonal.
pub fn correlation_matrix(grid: &ChipGrid, phi: f64) -> Matrix {
    let n = grid.cells();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = 1.0;
        for j in 0..i {
            let rho = spherical_correlation(grid.distance(i, j), phi);
            m[(i, j)] = rho;
            m[(j, i)] = rho;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(spherical_correlation(0.0, 0.3), 1.0);
        assert_eq!(spherical_correlation(0.3, 0.3), 0.0);
        assert_eq!(spherical_correlation(1.0, 0.3), 0.0);
    }

    #[test]
    fn monotonically_decreasing_within_range() {
        let phi = 0.5;
        let mut prev = spherical_correlation(0.0, phi);
        for k in 1..=100 {
            let r = phi * k as f64 / 100.0;
            let c = spherical_correlation(r, phi);
            assert!(c <= prev + 1e-15, "correlation increased at r={r}");
            prev = c;
        }
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let g = ChipGrid::square(6);
        let m = correlation_matrix(&g, 0.5);
        for i in 0..g.cells() {
            assert_eq!(m[(i, i)], 1.0);
            for j in 0..g.cells() {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn rejects_nonpositive_phi() {
        spherical_correlation(0.1, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The spherical model is a valid correlation: bounded by [0, 1],
        /// 1 at zero distance, 0 at and beyond the range.
        #[test]
        fn prop_spherical_bounds(r in 0.0f64..3.0, phi in 0.05f64..2.0) {
            let c = spherical_correlation(r, phi);
            prop_assert!((0.0..=1.0).contains(&c));
            if r >= phi {
                prop_assert_eq!(c, 0.0);
            }
        }

        /// Correlation decays with distance for a fixed range.
        #[test]
        fn prop_spherical_monotone(r1 in 0.0f64..1.0, dr in 0.0f64..1.0, phi in 0.1f64..2.0) {
            let a = spherical_correlation(r1, phi);
            let b = spherical_correlation(r1 + dr, phi);
            prop_assert!(b <= a + 1e-15);
        }
    }
}
