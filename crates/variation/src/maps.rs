//! Per-chip variation maps: systematic (spatially correlated) plus random
//! components for `Vt` and `Leff`.

use eval_rng::ChaCha12Rng;

use crate::correlation::correlation_matrix;
use crate::grid::ChipGrid;
use crate::linalg::LowerTriangular;

/// Statistical parameters of the variation model (EVAL §5, Figure 7(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    /// Mean threshold voltage in volts (at the reference temperature).
    pub vt_mean: f64,
    /// Total `sigma/mu` for Vt (systematic and random in equal parts).
    pub vt_sigma_over_mu: f64,
    /// Mean effective channel length (normalized to 1.0).
    pub leff_mean: f64,
    /// Total `sigma/mu` for Leff.
    pub leff_sigma_over_mu: f64,
    /// Correlation range as a fraction of the chip edge.
    pub phi: f64,
}

impl VariationParams {
    /// The EVAL evaluation settings: `sigma/mu = 0.09` for `Vt`, `Leff`
    /// with half that ratio (0.045), `phi = 0.5`, equal systematic/random
    /// split. The `Vt` mean matches `DeviceParams::micro08().vt_nominal`
    /// (the calibrated 250 mV design point at the 100 C reference).
    pub fn micro08() -> Self {
        Self {
            vt_mean: 0.250,
            vt_sigma_over_mu: 0.09,
            leff_mean: 1.0,
            leff_sigma_over_mu: 0.045,
            phi: 0.5,
        }
    }

    /// Systematic standard deviation of Vt in volts
    /// (`sigma_sys = sigma_ran = sqrt(sigma^2 / 2)`).
    pub fn vt_sigma_sys(&self) -> f64 {
        self.vt_mean * self.vt_sigma_over_mu / std::f64::consts::SQRT_2
    }

    /// Random standard deviation of Vt in volts.
    pub fn vt_sigma_ran(&self) -> f64 {
        self.vt_sigma_sys()
    }

    /// Systematic standard deviation of Leff (normalized units).
    pub fn leff_sigma_sys(&self) -> f64 {
        self.leff_mean * self.leff_sigma_over_mu / std::f64::consts::SQRT_2
    }

    /// Random standard deviation of Leff (normalized units).
    pub fn leff_sigma_ran(&self) -> f64 {
        self.leff_sigma_sys()
    }
}

impl Default for VariationParams {
    fn default() -> Self {
        Self::micro08()
    }
}

/// A per-cell scalar field over the chip grid (e.g. the systematic Vt map).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarField {
    grid: ChipGrid,
    values: Vec<f64>,
}

impl ScalarField {
    /// Wraps per-cell `values` (row-major, one per grid cell).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != grid.cells()`.
    pub fn new(grid: ChipGrid, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), grid.cells(), "one value per grid cell");
        Self { grid, values }
    }

    /// The grid this field is defined on.
    pub fn grid(&self) -> ChipGrid {
        self.grid
    }

    /// Value at flat cell index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn at(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Borrow all per-cell values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean over all cells.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation over all cells.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f64>()
            / (self.values.len() as f64 - 1.0);
        var.sqrt()
    }

    /// Minimum cell value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum cell value.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean over a set of flat cell indices (e.g. a subsystem footprint).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty or contains an out-of-bounds index.
    pub fn mean_over(&self, cells: &[usize]) -> f64 {
        assert!(!cells.is_empty(), "cell set must be non-empty");
        cells.iter().map(|&c| self.values[c]).sum::<f64>() / cells.len() as f64
    }
}

/// The variation maps of one manufactured chip.
///
/// `vt` and `leff` are the **systematic** fields; the random component is
/// carried as per-parameter sigmas and added analytically by consumers
/// (the timing model widens path distributions with it, matching VARIUS).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipMap {
    /// Systematic threshold-voltage map in volts (at reference temperature).
    pub vt: ScalarField,
    /// Systematic effective-channel-length map (normalized).
    pub leff: ScalarField,
    /// Random per-transistor sigma of Vt in volts.
    pub vt_sigma_ran: f64,
    /// Random per-transistor sigma of Leff (normalized).
    pub leff_sigma_ran: f64,
    /// Seed this chip was generated from (for reproducibility/labelling).
    pub seed: u64,
}

/// Generator of per-chip variation maps.
///
/// Building the model performs the one-time Cholesky factorization of the
/// grid correlation matrix; sampling a chip is then two matrix-vector
/// products.
#[derive(Debug, Clone)]
pub struct VariationModel {
    grid: ChipGrid,
    params: VariationParams,
    factor: LowerTriangular,
}

impl VariationModel {
    /// Builds the sampler for `grid` and `params`.
    ///
    /// # Panics
    ///
    /// Panics if the correlation matrix cannot be factored, which cannot
    /// happen for the spherical model with jitter (it is a valid variogram).
    pub fn new(grid: ChipGrid, params: VariationParams) -> Self {
        let corr = correlation_matrix(&grid, params.phi);
        let factor = LowerTriangular::cholesky(&corr)
            // lint:allow(panic-safety): documented above — the spherical
            // variogram with diagonal jitter is always factorable.
            .expect("spherical correlation matrix is positive semi-definite");
        Self {
            grid,
            params,
            factor,
        }
    }

    /// The grid chips are sampled on.
    pub fn grid(&self) -> ChipGrid {
        self.grid
    }

    /// The statistical parameters in use.
    pub fn params(&self) -> VariationParams {
        self.params
    }

    /// Samples the variation maps of one chip from a deterministic stream
    /// derived from `seed`. Identical seeds give identical chips.
    pub fn sample_chip(&self, seed: u64) -> ChipMap {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let n = self.grid.cells();
        let z_vt: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let z_leff: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();

        let vt_field = self.factor.mul_vec(&z_vt);
        let leff_field = self.factor.mul_vec(&z_leff);

        let vt = ScalarField::new(
            self.grid,
            vt_field
                .iter()
                .map(|g| self.params.vt_mean + g * self.params.vt_sigma_sys())
                .collect(),
        );
        let leff = ScalarField::new(
            self.grid,
            leff_field
                .iter()
                .map(|g| self.params.leff_mean + g * self.params.leff_sigma_sys())
                .collect(),
        );

        ChipMap {
            vt,
            leff,
            vt_sigma_ran: self.params.vt_sigma_ran(),
            leff_sigma_ran: self.params.leff_sigma_ran(),
            seed,
        }
    }
}

/// Box–Muller standard-normal sample.
fn standard_normal(rng: &mut ChaCha12Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > 0.0 {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VariationModel {
        VariationModel::new(ChipGrid::square(12), VariationParams::micro08())
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model();
        let a = m.sample_chip(42);
        let b = m.sample_chip(42);
        assert_eq!(a, b);
        let c = m.sample_chip(43);
        assert_ne!(a.vt.values(), c.vt.values());
    }

    #[test]
    fn field_statistics_match_params() {
        // Average over many chips: per-cell mean ~ vt_mean, sigma ~ sigma_sys.
        let m = model();
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for seed in 0..200 {
            let chip = m.sample_chip(seed);
            for &v in chip.vt.values() {
                sum += v;
                sum_sq += v * v;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        let sigma = var.sqrt();
        let params = VariationParams::micro08();
        assert!((mean - params.vt_mean).abs() < 0.002, "mean={mean}");
        assert!(
            (sigma - params.vt_sigma_sys()).abs() < 0.0015,
            "sigma={sigma}, want {}",
            params.vt_sigma_sys()
        );
    }

    #[test]
    fn nearby_cells_are_more_correlated_than_distant_ones() {
        let m = model();
        let g = m.grid();
        let a = g.index(0, 0);
        let near = g.index(1, 0);
        let far = g.index(11, 11);
        let (mut c_near, mut c_far) = (0.0, 0.0);
        let n = 400;
        let mut mean_a = 0.0;
        let mut samples = Vec::with_capacity(n);
        for seed in 0..n as u64 {
            let chip = m.sample_chip(seed);
            samples.push((chip.vt.at(a), chip.vt.at(near), chip.vt.at(far)));
            mean_a += chip.vt.at(a);
        }
        mean_a /= n as f64;
        let mean_near = samples.iter().map(|s| s.1).sum::<f64>() / n as f64;
        let mean_far = samples.iter().map(|s| s.2).sum::<f64>() / n as f64;
        for (va, vn, vf) in samples {
            c_near += (va - mean_a) * (vn - mean_near);
            c_far += (va - mean_a) * (vf - mean_far);
        }
        assert!(
            c_near > c_far,
            "near covariance {c_near} should exceed far covariance {c_far}"
        );
        assert!(c_near > 0.0);
    }

    #[test]
    fn mean_over_subsets_matches_field() {
        let m = model();
        let chip = m.sample_chip(1);
        let all: Vec<usize> = (0..chip.vt.grid().cells()).collect();
        assert!((chip.vt.mean_over(&all) - chip.vt.mean()).abs() < 1e-12);
    }

    #[test]
    fn leff_params_are_half_of_vt_ratio() {
        let p = VariationParams::micro08();
        assert!((p.leff_sigma_over_mu - 0.5 * p.vt_sigma_over_mu).abs() < 1e-12);
    }
}

impl ScalarField {
    /// Renders the field as an ASCII heat map (rows of characters from
    /// light `.` to heavy `@`), normalized to the field's own range —
    /// handy for eyeballing the spatial correlation of a sampled map.
    pub fn render_ascii(&self) -> String {
        const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut out = String::with_capacity((self.grid.nx() + 1) * self.grid.ny());
        for iy in 0..self.grid.ny() {
            for ix in 0..self.grid.nx() {
                let v = self.at(self.grid.index(ix, iy));
                let idx = (((v - lo) / span) * (RAMP.len() as f64 - 1.0)).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::grid::ChipGrid;

    #[test]
    fn ascii_map_has_one_row_per_grid_row() {
        let g = ChipGrid::new(6, 4);
        let field = ScalarField::new(g, (0..24).map(|i| i as f64).collect());
        let art = field.render_ascii();
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.chars().count() == 6));
        // The smallest value renders light, the largest heavy.
        assert!(art.starts_with('.'));
        assert!(art.trim_end().ends_with('@'));
    }

    #[test]
    fn constant_field_renders_uniformly() {
        let g = ChipGrid::square(3);
        let field = ScalarField::new(g, vec![5.0; 9]);
        let art = field.render_ascii();
        let chars: std::collections::BTreeSet<char> =
            art.chars().filter(|c| *c != '\n').collect();
        assert_eq!(chars.len(), 1);
    }
}
