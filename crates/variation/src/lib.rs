//! # eval-variation
//!
//! Within-die (WID) process-variation maps in the style of VARIUS
//! (Sarangi et al., *IEEE Trans. on Semiconductor Manufacturing*, 2008),
//! which is the model used by the EVAL paper (MICRO 2008) — see §2.1 there.
//!
//! Two process parameters are modeled: the threshold voltage `Vt` and the
//! effective channel length `Leff`. Each has a **systematic** component —
//! a multivariate-normal random field over a chip grid with a spherical
//! spatial-correlation function of range `phi` — and a **random**
//! per-transistor component added analytically.
//!
//! The crate also provides the alpha-power-law device equations that turn
//! `(Vt, Leff, Vdd, T)` into relative gate delay and leakage factors
//! (Equations 1–2 of the paper).
//!
//! ## Example
//!
//! ```
//! use eval_variation::{VariationParams, VariationModel, ChipGrid};
//!
//! let grid = ChipGrid::square(16);
//! let params = VariationParams::micro08();
//! let model = VariationModel::new(grid, params);
//! let chip = model.sample_chip(7);
//! // Systematic Vt is a field around the nominal mean:
//! let mean_vt = chip.vt.mean();
//! assert!((mean_vt - params.vt_mean).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod device;
pub mod gaussian;
pub mod grid;
pub mod linalg;
pub mod maps;
pub mod population;

pub use correlation::spherical_correlation;
pub use device::{delay_factor, leakage_factor, DeviceParams};
pub use gaussian::{erfc, inverse_normal_cdf, inverse_normal_tail, normal_cdf, normal_tail};
pub use grid::ChipGrid;
pub use linalg::{CholeskyError, LowerTriangular, Matrix};
pub use maps::{ChipMap, ScalarField, VariationModel, VariationParams};
pub use population::ChipPopulation;
