//! Microarchitecture-substrate benchmarks: simulation throughput of the
//! core model, phase detection and workload profiling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use eval_uarch::{
    profile_workload, CoreConfig, Gshare, Hierarchy, OooCore, PhaseDetector, TraceGenerator,
    Workload,
};

fn bench_core(c: &mut Criterion) {
    let w = Workload::by_name("gcc").expect("workload exists");
    let mut group = c.benchmark_group("ooo_core");
    let instrs = 20_000u64;
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("simulate_20k_instructions", |b| {
        b.iter(|| {
            let mut core = OooCore::new(CoreConfig::micro08());
            let mut trace = TraceGenerator::new(&w, 5).peekable();
            black_box(core.run(&mut trace, instrs))
        })
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let w = Workload::by_name("swim").expect("workload exists");
    c.bench_function("trace/generate_1k", |b| {
        b.iter(|| {
            black_box(
                TraceGenerator::new(&w, 9)
                    .take(1000)
                    .map(|i| i.bb_id as u64)
                    .sum::<u64>(),
            )
        })
    });

    c.bench_function("cache/hierarchy_access", |b| {
        let mut h = Hierarchy::new();
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x40).wrapping_mul(0x9E3779B97F4A7C15) % (1 << 22);
            black_box(h.access(a))
        })
    });

    c.bench_function("bpred/gshare_predict", |b| {
        let mut g = Gshare::default_config();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(g.predict_and_train(i % 32, i % 3 == 0))
        })
    });

    c.bench_function("phase/detector_observe", |b| {
        let mut d = PhaseDetector::micro08();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(d.observe(i % 24))
        })
    });
}

fn bench_profile(c: &mut Criterion) {
    let w = Workload::by_name("mcf").expect("workload exists");
    let mut group = c.benchmark_group("profile");
    group.sample_size(10);
    group.bench_function("profile_workload_4k", |b| {
        b.iter(|| black_box(profile_workload(&w, 4_000, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_core, bench_components, bench_profile);
criterion_main!(benches);
