//! Controller-path benchmarks: how long does the deployable fuzzy
//! controller take compared to the exhaustive oracle?
//!
//! The paper estimates ~6 us for a full controller run at 4 GHz (§4.3.3)
//! and motivates fuzzy control by `Exhaustive` being "too expensive to
//! execute on-the-fly" — these benchmarks quantify both claims for this
//! implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eval_adapt::{
    decide_phase, retune, ExhaustiveOptimizer, FuzzyOptimizer, Optimizer, SubsystemScene,
    TrainingBudget,
};
use eval_core::{
    ChipFactory, ChipModel, Environment, EvalConfig, SubsystemId, VariantSelection, N_SUBSYSTEMS,
};
use eval_uarch::{profile_workload, Workload, WorkloadProfile};

struct Setup {
    config: EvalConfig,
    chip: ChipModel,
    fuzzy: FuzzyOptimizer,
    profile: WorkloadProfile,
}

fn setup() -> Setup {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(42);
    let budget = TrainingBudget {
        examples: 120,
        ..TrainingBudget::default()
    };
    let fuzzy = FuzzyOptimizer::train(&config, &chip, 0, Environment::TS_ASV, &budget);
    let w = Workload::by_name("swim").expect("workload exists");
    let profile = profile_workload(&w, 6_000, 1);
    Setup {
        config,
        chip,
        fuzzy,
        profile,
    }
}

fn scene<'a>(s: &'a Setup, id: SubsystemId) -> SubsystemScene<'a> {
    SubsystemScene {
        state: s.chip.core(0).subsystem(id),
        variants: VariantSelection::default(),
        th_c: 60.0,
        alpha_f: 0.5,
        rho: 0.6,
        pe_budget: s.config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
        env: Environment::TS_ASV,
    }
}

fn bench_controller(c: &mut Criterion) {
    let s = setup();
    let sc = scene(&s, SubsystemId::Dcache);

    // The deployment-phase query the paper prices at microseconds.
    c.bench_function("fuzzy_freq_query", |b| {
        b.iter(|| black_box(s.fuzzy.freq_max(&s.config, black_box(&sc))))
    });
    c.bench_function("fuzzy_power_query", |b| {
        b.iter(|| black_box(s.fuzzy.power_settings(&s.config, black_box(&sc), 4.0)))
    });

    // The oracle it replaces.
    let oracle = ExhaustiveOptimizer::new();
    c.bench_function("exhaustive_freq_query", |b| {
        b.iter(|| black_box(oracle.freq_max(&s.config, black_box(&sc))))
    });
    c.bench_function("exhaustive_power_query", |b| {
        b.iter(|| black_box(oracle.power_settings(&s.config, black_box(&sc), 4.0)))
    });

    // One full per-phase decision (15 subsystems + choices + retuning).
    let ph = &s.profile.phases[0];
    c.bench_function("decide_phase_fuzzy", |b| {
        b.iter(|| {
            black_box(decide_phase(
                &s.config,
                s.chip.core(0),
                &s.fuzzy,
                Environment::TS_ASV,
                black_box(ph),
                s.profile.class,
                s.profile.rp_cycles,
                60.0,
            ))
        })
    });

    // Retuning alone.
    let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
    c.bench_function("retune_cycles", |b| {
        b.iter(|| {
            black_box(retune(
                &s.config,
                s.chip.core(0),
                60.0,
                black_box(4.6),
                &settings,
                &ph.activity.alpha_f,
                &ph.activity.rho,
                &VariantSelection::default(),
            ))
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(7);
    let mut group = c.benchmark_group("fuzzy_training");
    group.sample_size(10);
    for examples in [60usize, 120] {
        group.bench_function(format!("examples_{examples}"), |b| {
            let budget = TrainingBudget {
                examples,
                ..TrainingBudget::default()
            };
            b.iter(|| {
                black_box(FuzzyOptimizer::train(
                    &config,
                    &chip,
                    0,
                    Environment::TS,
                    &budget,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller, bench_training);
criterion_main!(benches);
