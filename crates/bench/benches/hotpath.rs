//! Hot-path benchmarks: the memoized, warm-started operating-point fast
//! path against the reference (pre-optimization) implementations it
//! replaced.
//!
//! Pairs to watch:
//!
//! * `solve_thermal` vs `solve_thermal_reference` — undamped fixed-point
//!   iteration vs the original 0.5-damped loop;
//! * `freq_max_*` vs `freq_max_reference` — cached guess-verify ladder
//!   search vs uncached bisection;
//! * `campaign_exhdyn` — a small end-to-end campaign exercising everything
//!   at once.
//!
//! `cargo run -p eval-bench --bin hotpath` produces the same comparisons
//! as machine-readable JSON (`BENCH_hotpath.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eval_adapt::{Campaign, ExhaustiveOptimizer, Optimizer, Scheme, SubsystemScene};
use eval_core::{
    ChipFactory, ChipModel, Environment, EvalConfig, OperatingConditions, SubsystemId,
    VariantSelection, N_SUBSYSTEMS,
};
use eval_power::{solve_thermal, solve_thermal_reference, ThermalEnvironment};
use eval_uarch::Workload;
use eval_units::{GHz, Volts};

fn setup() -> (EvalConfig, ChipModel) {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(42);
    (config, chip)
}

fn scene<'a>(config: &EvalConfig, chip: &'a ChipModel, id: SubsystemId) -> SubsystemScene<'a> {
    SubsystemScene {
        state: chip.core(0).subsystem(id),
        variants: VariantSelection::default(),
        th_c: 60.0,
        alpha_f: 0.5,
        rho: 0.6,
        pe_budget: config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
        env: Environment::TS_ASV,
    }
}

fn bench_solver(c: &mut Criterion) {
    let (config, chip) = setup();
    let state = chip.core(0).subsystem(SubsystemId::Dcache);
    let params = state.power_params(&VariantSelection::default());
    let tenv = ThermalEnvironment {
        th_c: 60.0,
        alpha_f: 0.5,
    };
    let op = eval_power::OperatingPoint::raw(4.0, 1.0, 0.0);

    c.bench_function("solve_thermal_fast", |b| {
        b.iter(|| black_box(solve_thermal(&params, &tenv, black_box(&op), &config.device)))
    });
    c.bench_function("solve_thermal_reference", |b| {
        b.iter(|| {
            black_box(solve_thermal_reference(
                &params,
                &tenv,
                black_box(&op),
                &config.device,
            ))
        })
    });

    let timing = state.timing(&VariantSelection::default());
    let cond = OperatingConditions {
        vdd: Volts::raw(1.0),
        vbb: Volts::raw(0.0),
        t_c: 65.0,
    };
    let budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
    c.bench_function("pe_access", |b| {
        b.iter(|| black_box(timing.pe_access(GHz::raw(4.0), black_box(&cond))))
    });
    c.bench_function("pe_access_bounded", |b| {
        b.iter(|| black_box(timing.pe_access_bounded(GHz::raw(4.0), black_box(&cond), 0.6, budget)))
    });
}

fn bench_freq_max(c: &mut Criterion) {
    let (config, chip) = setup();
    let sc = scene(&config, &chip, SubsystemId::Dcache);

    // Cold: a fresh cache every query, as the first query of a campaign
    // sees it. This is the "freq_max ladder sweep" headline pair.
    c.bench_function("freq_max_fast_cold", |b| {
        b.iter(|| {
            let opt = ExhaustiveOptimizer::new();
            black_box(opt.freq_max(&config, black_box(&sc)))
        })
    });
    // Warm: the steady state inside a campaign, where repeated queries
    // against the same scene hit the memoized solves.
    let warm = ExhaustiveOptimizer::new();
    c.bench_function("freq_max_fast_warm", |b| {
        b.iter(|| black_box(warm.freq_max(&config, black_box(&sc))))
    });
    c.bench_function("freq_max_reference", |b| {
        b.iter(|| {
            let opt = ExhaustiveOptimizer::new();
            black_box(opt.freq_max_reference(&config, black_box(&sc)))
        })
    });
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("exhdyn_2chips", |b| {
        b.iter(|| {
            let mut campaign = Campaign::new(2);
            campaign.profile_budget = 3_000;
            campaign.workloads = vec![Workload::by_name("gzip").expect("workload exists")];
            campaign.threads = 1;
            black_box(
                campaign
                    .run(&[Environment::TS_ASV], &[Scheme::ExhDyn])
                    .expect("campaign runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver, bench_freq_max, bench_campaign);
criterion_main!(benches);
