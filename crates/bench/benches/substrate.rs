//! Substrate benchmarks: the physical-model building blocks every
//! optimizer query leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eval_core::{ChipFactory, EvalConfig, OperatingConditions, SubsystemId, VariantSelection};
use eval_power::{solve_thermal, OperatingPoint, SubsystemPowerParams, ThermalEnvironment};
use eval_variation::{ChipGrid, DeviceParams, VariationModel, VariationParams};

fn bench_variation(c: &mut Criterion) {
    // One-time Cholesky factorization of the 1024-cell correlation matrix.
    let mut group = c.benchmark_group("variation");
    group.sample_size(10);
    group.bench_function("model_build_32x32", |b| {
        b.iter(|| {
            black_box(VariationModel::new(
                ChipGrid::square(32),
                VariationParams::micro08(),
            ))
        })
    });
    group.finish();

    let model = VariationModel::new(ChipGrid::square(32), VariationParams::micro08());
    c.bench_function("variation/sample_chip", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(model.sample_chip(seed))
        })
    });
}

fn bench_thermal(c: &mut Criterion) {
    let device = DeviceParams::micro08();
    let params = SubsystemPowerParams {
        kdyn_w: 0.6,
        ksta_nom_w: 0.4,
        rth_c_per_w: 8.0,
        vt0: device.vt_nominal,
    };
    let env = ThermalEnvironment {
        th_c: 60.0,
        alpha_f: 0.6,
    };
    let op = OperatingPoint {
        f_ghz: 4.4,
        vdd: 1.1,
        vbb: 0.1,
    };
    c.bench_function("thermal/fixed_point_solve", |b| {
        b.iter(|| black_box(solve_thermal(&params, &env, &op, &device)))
    });
}

fn bench_pe(c: &mut Criterion) {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(3);
    let dcache = chip.core(0).subsystem(SubsystemId::Dcache);
    let cond = OperatingConditions {
        vdd: 1.05,
        vbb: 0.0,
        t_c: 72.0,
    };
    let variants = VariantSelection::default();
    c.bench_function("timing/pe_access_dcache", |b| {
        b.iter(|| black_box(dcache.timing(&variants).pe_access(black_box(4.4), &cond)))
    });
    c.bench_function("timing/max_frequency_bisection", |b| {
        b.iter(|| black_box(dcache.timing(&variants).max_frequency(&cond, 1e-6)))
    });

    let mut group = c.benchmark_group("chip");
    group.sample_size(10);
    group.bench_function("build_from_map", |b| {
        b.iter(|| black_box(factory.chip(black_box(99))))
    });
    group.finish();
}

criterion_group!(benches, bench_variation, bench_thermal, bench_pe);
criterion_main!(benches);
