//! # eval-bench
//!
//! Experiment drivers for the EVAL reproduction: one binary per table or
//! figure of the paper's evaluation (§6), plus Criterion micro-benchmarks
//! of the building blocks.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1` | Figure 1: path-delay distributions and `PE(f)` curves |
//! | `fig2` | Figure 2: tolerate / tilt / shift / reshape / adapt |
//! | `fig8` | Figure 8: subsystem `PE` and processor `Perf` vs `f` |
//! | `fig9` | Figure 9: power vs error rate vs frequency/performance |
//! | `fig10` | Figure 10: relative frequency per environment |
//! | `fig11` | Figure 11: relative performance per environment |
//! | `fig12` | Figure 12: power per environment |
//! | `fig13` | Figure 13: controller outcome mix |
//! | `table2` | Table 2: fuzzy-vs-exhaustive selection error |
//! | `headline` | §6 headline numbers, paper vs measured |
//! | `figures` | Figures 10–12 from one shared campaign |
//! | `breakdown` | per-workload detail behind the averages |
//! | `retiming` | §7 baseline: EVAL vs ReCycle-style time borrowing |
//! | `ablation` | σ/μ, φ, rule-count and DVFS-granularity sensitivity |
//! | `varmap` | ASCII view of sampled variation maps |
//!
//! Scale knobs come from the environment so the full protocol
//! (`EVAL_CHIPS=100`) and quick looks (`EVAL_CHIPS=5`) use the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use eval_adapt::{Campaign, CampaignResult, CheckpointOptions, Scheme};
use eval_core::Environment;
use eval_obs::ProgressSink;
use eval_trace::{ensure_parent_dir, Collector, Registry, StreamingJsonl, Tracer};

/// The collecting side of a [`TraceSession`]: an in-memory [`Collector`]
/// (trace written atomically at end-of-run) or a crash-safe
/// [`StreamingJsonl`] (one complete chip segment flushed per commit; used
/// whenever checkpointing is on), either optionally wrapped in a
/// [`ProgressSink`] heartbeating to stderr. The decorator forwards every
/// record verbatim, so the traced JSONL stream is bit-identical either
/// way.
enum SessionSink {
    Plain(Collector),
    Progress(ProgressSink<Collector, std::io::Stderr>),
    Stream(StreamingJsonl),
    StreamProgress(ProgressSink<StreamingJsonl, std::io::Stderr>),
}

/// An optional telemetry session for the experiment binaries, enabled by
/// any of:
///
/// * `--trace <path>` (or `--trace=<path>`, or `EVAL_TRACE`) — write the
///   JSONL trace stream;
/// * `--progress` (or `EVAL_PROGRESS=1`) — heartbeat live campaign
///   progress (chips done/total, chips/sec, ETA, solver counters) to
///   stderr while the run executes;
/// * `--metrics-out <path>` (or `--metrics-out=<path>`, or
///   `EVAL_METRICS_OUT`) — write a Prometheus-text snapshot of the
///   metric registry at end-of-run, servable with `eval-obs serve`;
/// * `--checkpoint <path>` (or `--checkpoint=<path>`, or
///   `EVAL_CHECKPOINT`) — checkpoint campaign progress chip-by-chip to a
///   sidecar, and stream the trace (when requested) one committed chip
///   at a time instead of buffering it to end-of-run;
/// * `--resume` (or `EVAL_RESUME=1`) — resume from the sidecar (which
///   defaults to `<trace basename>.ckpt.jsonl` when only `--trace` is
///   given), skipping chips it already holds.
///
/// Flags win over environment variables. Output paths are validated (and
/// parent directories created, and the streaming trace opened) up front,
/// so a bad path fails before hours of chip work instead of after.
/// [`TraceSession::finish`] completes all outputs. The `"kind":"event"`
/// lines are bit-deterministic across runs and thread counts; span lines
/// and `*_us` metrics carry wall-clock timings and are excluded from
/// that contract.
pub struct TraceSession {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    checkpoint: Option<CheckpointOptions>,
    sink: SessionSink,
}

/// `<trace>.ckpt.jsonl` next to the trace file (the default sidecar when
/// `--resume`/`--checkpoint` is used with only a trace path).
fn derived_checkpoint_path(trace: &Path) -> PathBuf {
    trace.with_extension("ckpt.jsonl")
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, msg)
}

impl TraceSession {
    /// Builds a session from `std::env::args` / environment variables,
    /// or `None` when no telemetry was requested.
    ///
    /// # Errors
    ///
    /// Fails fast on unusable output paths, on `--resume` without any way
    /// to locate a sidecar, on a trace file that cannot be reconciled
    /// with the sidecar's committed frontier, or on a corrupt sidecar.
    pub fn from_env() -> std::io::Result<Option<TraceSession>> {
        let mut args = std::env::args();
        let mut trace_path: Option<PathBuf> = None;
        let mut metrics_path: Option<PathBuf> = None;
        let mut checkpoint_path: Option<PathBuf> = None;
        let mut progress = false;
        let mut resume = false;
        while let Some(arg) = args.next() {
            if arg == "--trace" {
                trace_path = args.next().map(Into::into);
            } else if let Some(p) = arg.strip_prefix("--trace=") {
                trace_path = Some(p.into());
            } else if arg == "--metrics-out" {
                metrics_path = args.next().map(Into::into);
            } else if let Some(p) = arg.strip_prefix("--metrics-out=") {
                metrics_path = Some(p.into());
            } else if arg == "--checkpoint" {
                checkpoint_path = args.next().map(Into::into);
            } else if let Some(p) = arg.strip_prefix("--checkpoint=") {
                checkpoint_path = Some(p.into());
            } else if arg == "--progress" {
                progress = true;
            } else if arg == "--resume" {
                resume = true;
            }
        }
        let trace_path = trace_path.or_else(|| std::env::var_os("EVAL_TRACE").map(Into::into));
        let metrics_path =
            metrics_path.or_else(|| std::env::var_os("EVAL_METRICS_OUT").map(Into::into));
        let checkpoint_path =
            checkpoint_path.or_else(|| std::env::var_os("EVAL_CHECKPOINT").map(Into::into));
        let truthy = |var: &str| std::env::var(var).is_ok_and(|v| !v.is_empty() && v != "0");
        let progress = progress || truthy("EVAL_PROGRESS");
        let resume = resume || truthy("EVAL_RESUME");

        let checkpoint = match (checkpoint_path, resume) {
            (Some(path), resume) => Some(CheckpointOptions { path, resume }),
            (None, true) => {
                let trace = trace_path.as_ref().ok_or_else(|| {
                    invalid(
                        "--resume needs --checkpoint <path>, or --trace <path> to derive \
                         the sidecar from"
                            .to_string(),
                    )
                })?;
                Some(CheckpointOptions {
                    path: derived_checkpoint_path(trace),
                    resume: true,
                })
            }
            (None, false) => None,
        };
        if trace_path.is_none() && metrics_path.is_none() && checkpoint.is_none() && !progress {
            return Ok(None);
        }

        // Fail-fast output validation: surface path problems when flags
        // are parsed, not after hours of chip work.
        for path in [&trace_path, &metrics_path]
            .into_iter()
            .flatten()
            .chain(checkpoint.as_ref().map(|o| &o.path))
        {
            ensure_parent_dir(path).map_err(|e| {
                invalid(format!("cannot create parent of {}: {e}", path.display()))
            })?;
        }

        let sink = match (&trace_path, &checkpoint) {
            // Checkpointed trace: stream it, so the on-disk file is
            // always a complete prefix the sidecar can reconcile with.
            (Some(trace), Some(opts)) => {
                let committed = if opts.resume {
                    eval_adapt::committed_chips(&opts.path)
                        .map_err(|e| invalid(e.to_string()))?
                } else {
                    0
                };
                let stream = if opts.resume && trace.exists() {
                    StreamingJsonl::resume(trace, committed)?
                } else if committed > 0 {
                    return Err(invalid(format!(
                        "cannot resume: sidecar {} holds {committed} chips but the trace \
                         file {} is missing (remove the sidecar to start fresh)",
                        opts.path.display(),
                        trace.display()
                    )));
                } else {
                    StreamingJsonl::create(trace)?
                };
                if progress {
                    SessionSink::StreamProgress(ProgressSink::stderr(stream))
                } else {
                    SessionSink::Stream(stream)
                }
            }
            _ => {
                let collector = Collector::new();
                if progress {
                    SessionSink::Progress(ProgressSink::stderr(collector))
                } else {
                    SessionSink::Plain(collector)
                }
            }
        };
        Ok(Some(TraceSession {
            trace_path,
            metrics_path,
            checkpoint,
            sink,
        }))
    }

    /// A tracer recording into this session.
    pub fn tracer(&self) -> Tracer<'_> {
        match &self.sink {
            SessionSink::Plain(c) => Tracer::new(c),
            SessionSink::Progress(p) => Tracer::new(p),
            SessionSink::Stream(s) => Tracer::new(s),
            SessionSink::StreamProgress(p) => Tracer::new(p),
        }
    }

    /// The checkpoint sidecar configuration, when `--checkpoint` or
    /// `--resume` was requested.
    pub fn checkpoint_options(&self) -> Option<&CheckpointOptions> {
        self.checkpoint.as_ref()
    }

    /// The trace output path, when `--trace` was requested.
    pub fn trace_path(&self) -> Option<&Path> {
        self.trace_path.as_deref()
    }

    /// A snapshot of the session's metric registry so far.
    pub fn registry(&self) -> Registry {
        match &self.sink {
            SessionSink::Plain(c) => c.registry(),
            SessionSink::Progress(p) => p.inner().registry(),
            SessionSink::Stream(s) => s.registry(),
            SessionSink::StreamProgress(p) => p.inner().registry(),
        }
    }

    /// Flushes the session: completes the JSONL stream (`--trace`),
    /// writes the Prometheus metrics snapshot (`--metrics-out`), stamps
    /// both artifacts with provenance (content address + appended trace
    /// footer + run-journal entries when `EVAL_RUNS_JOURNAL` is set),
    /// and prints the end-of-run span/metric summary.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if an output file cannot be written.
    pub fn finish(self) -> std::io::Result<()> {
        let stamped =
            u64::from(self.trace_path.is_some()) + u64::from(self.metrics_path.is_some());
        if stamped > 0 {
            self.tracer()
                .count_n(eval_trace::names::PROVENANCE_ARTIFACTS, stamped);
        }
        let (summary, registry) = match self.sink {
            SessionSink::Plain(c) => {
                if let Some(path) = &self.trace_path {
                    c.write_jsonl(path)?;
                }
                (c.summary(), c.registry())
            }
            SessionSink::Progress(p) => {
                let c = p.into_inner();
                if let Some(path) = &self.trace_path {
                    c.write_jsonl(path)?;
                }
                (c.summary(), c.registry())
            }
            SessionSink::Stream(s) => {
                let out = (s.summary(), s.registry());
                s.finish()?;
                out
            }
            SessionSink::StreamProgress(p) => {
                let s = p.into_inner();
                let out = (s.summary(), s.registry());
                s.finish()?;
                out
            }
        };
        if let Some(path) = &self.trace_path {
            eval_trace::provenance::stamp_trace(path)?;
        }
        if let Some(path) = &self.metrics_path {
            eval_obs::write_prometheus(&registry, path)?;
            let bytes = std::fs::read(path)?;
            let prov =
                eval_trace::Provenance::capture("metrics-prom").with_content_address(&bytes);
            eval_trace::provenance::append_journal(path, &prov)?;
        }
        println!();
        println!("{summary}");
        if let Some(path) = &self.trace_path {
            eprintln!("# trace written to {}", path.display());
        }
        if let Some(path) = &self.metrics_path {
            eprintln!("# metrics written to {}", path.display());
        }
        if let Some(opts) = &self.checkpoint {
            eprintln!("# checkpoint sidecar at {}", opts.path.display());
        }
        Ok(())
    }
}

/// The tracer of an optional session ([`Tracer::noop`] when absent).
pub fn session_tracer(session: &Option<TraceSession>) -> Tracer<'_> {
    session.as_ref().map_or(Tracer::noop(), TraceSession::tracer)
}

/// Runs one campaign through an optional session: checkpointed when the
/// session carries `--checkpoint`/`--resume`, plainly traced otherwise.
/// Quarantined chips are reported as warnings on stderr; only a sweep
/// with *no* surviving chips is an error.
///
/// # Errors
///
/// Everything [`Campaign::run_checkpointed`] /
/// [`Campaign::run_traced`] can return.
pub fn run_campaign(
    campaign: &Campaign,
    envs: &[Environment],
    schemes: &[Scheme],
    session: &Option<TraceSession>,
) -> Result<CampaignResult, eval_adapt::CampaignError> {
    let tracer = session_tracer(session);
    let result = match session.as_ref().and_then(TraceSession::checkpoint_options) {
        Some(opts) => campaign.run_checkpointed(envs, schemes, tracer, opts)?,
        None => campaign.run_traced(envs, schemes, tracer)?,
    };
    for failure in &result.chips_failed {
        eprintln!(
            "# WARNING: chip {} quarantined and excluded from averages: {}",
            failure.chip, failure.error
        );
    }
    Ok(result)
}

/// Fault-injection knob for quarantine/crash testing: `EVAL_FAIL_CHIP=<n>`
/// makes chip `n` fail instead of running (see `Campaign::fail_chip`).
pub fn fail_chip_from_env() -> Option<usize> {
    std::env::var("EVAL_FAIL_CHIP").ok()?.parse().ok()
}

/// Number of chips for campaign binaries: `EVAL_CHIPS` env var, else
/// `default`. The paper's protocol is 100.
pub fn chips_from_env(default: usize) -> usize {
    std::env::var("EVAL_CHIPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Workload subset for campaign binaries: `EVAL_WORKLOADS` (comma-separated
/// names), else all 16.
pub fn workloads_from_env() -> Vec<eval_uarch::Workload> {
    match std::env::var("EVAL_WORKLOADS") {
        Ok(list) => {
            let ws: Vec<_> = list
                .split(',')
                .filter_map(|n| eval_uarch::Workload::by_name(n.trim()))
                .collect();
            if ws.is_empty() {
                eval_uarch::Workload::all()
            } else {
                ws
            }
        }
        Err(_) => eval_uarch::Workload::all(),
    }
}

/// Builds the standard Figures 10–12 campaign.
pub fn standard_campaign(default_chips: usize) -> Campaign {
    let mut c = Campaign::new(chips_from_env(default_chips));
    c.workloads = workloads_from_env();
    c.fail_chip = fail_chip_from_env();
    c
}

/// Runs the Figures 10–12 campaign (six environments, three schemes) and
/// returns the result. This is the expensive shared computation.
pub fn run_figure10_campaign(
    default_chips: usize,
    session: &Option<TraceSession>,
) -> Result<CampaignResult, eval_adapt::CampaignError> {
    let campaign = standard_campaign(default_chips);
    eprintln!(
        "# campaign: {} chips x {} workloads x 6 environments x 3 schemes",
        campaign.chips,
        campaign.workloads.len()
    );
    run_campaign(&campaign, &Environment::FIGURE10, &Scheme::ALL, session)
}

/// Prints a row-per-environment matrix with `Static`, `Fuzzy-Dyn` and
/// `Exh-Dyn` columns plus the Baseline/NoVar reference lines.
pub fn print_environment_matrix<F: Fn(&eval_adapt::CellResult) -> f64>(
    title: &str,
    unit: &str,
    result: &CampaignResult,
    metric: F,
) {
    println!("# {title}");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "environment", "Static", "Fuzzy-Dyn", "Exh-Dyn"
    );
    for env in Environment::FIGURE10 {
        let get = |s: Scheme| {
            result
                .cell(env, s)
                .map(&metric)
                .map(|v| format!("{v:10.3}"))
                .unwrap_or_else(|| format!("{:>10}", "-"))
        };
        println!(
            "{:<14} {} {} {}",
            env.name,
            get(Scheme::Static),
            get(Scheme::FuzzyDyn),
            get(Scheme::ExhDyn)
        );
    }
    println!(
        "{:<14} {:>10.3}   (reference, {unit})",
        "Baseline",
        metric(&result.baseline)
    );
    println!(
        "{:<14} {:>10.3}   (reference, {unit})",
        "NoVar",
        metric(&result.novar)
    );
}

/// Emits a CSV block (machine-readable mirror of the printed table).
pub fn print_environment_csv<F: Fn(&eval_adapt::CellResult) -> f64>(
    metric_name: &str,
    result: &CampaignResult,
    metric: F,
) {
    println!("csv,environment,scheme,{metric_name}");
    println!("csv,Baseline,-,{:.6}", metric(&result.baseline));
    println!("csv,NoVar,-,{:.6}", metric(&result.novar));
    for (env, scheme, cell) in &result.cells {
        println!("csv,{},{},{:.6}", env.name, scheme.label(), metric(cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_env_parsing_defaults() {
        // No env var in the test environment (or unparseable): default.
        std::env::remove_var("EVAL_CHIPS");
        assert_eq!(chips_from_env(7), 7);
        std::env::set_var("EVAL_CHIPS", "12");
        assert_eq!(chips_from_env(7), 12);
        std::env::set_var("EVAL_CHIPS", "0");
        assert_eq!(chips_from_env(7), 7);
        std::env::remove_var("EVAL_CHIPS");
    }

    #[test]
    fn workload_env_parsing() {
        std::env::set_var("EVAL_WORKLOADS", "swim, mcf");
        let ws = workloads_from_env();
        assert_eq!(ws.len(), 2);
        std::env::remove_var("EVAL_WORKLOADS");
        assert_eq!(workloads_from_env().len(), 16);
    }
}
