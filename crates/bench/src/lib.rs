//! # eval-bench
//!
//! Experiment drivers for the EVAL reproduction: one binary per table or
//! figure of the paper's evaluation (§6), plus Criterion micro-benchmarks
//! of the building blocks.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1` | Figure 1: path-delay distributions and `PE(f)` curves |
//! | `fig2` | Figure 2: tolerate / tilt / shift / reshape / adapt |
//! | `fig8` | Figure 8: subsystem `PE` and processor `Perf` vs `f` |
//! | `fig9` | Figure 9: power vs error rate vs frequency/performance |
//! | `fig10` | Figure 10: relative frequency per environment |
//! | `fig11` | Figure 11: relative performance per environment |
//! | `fig12` | Figure 12: power per environment |
//! | `fig13` | Figure 13: controller outcome mix |
//! | `table2` | Table 2: fuzzy-vs-exhaustive selection error |
//! | `headline` | §6 headline numbers, paper vs measured |
//! | `figures` | Figures 10–12 from one shared campaign |
//! | `breakdown` | per-workload detail behind the averages |
//! | `retiming` | §7 baseline: EVAL vs ReCycle-style time borrowing |
//! | `ablation` | σ/μ, φ, rule-count and DVFS-granularity sensitivity |
//! | `varmap` | ASCII view of sampled variation maps |
//!
//! Scale knobs come from the environment so the full protocol
//! (`EVAL_CHIPS=100`) and quick looks (`EVAL_CHIPS=5`) use the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eval_adapt::{Campaign, CampaignResult, Scheme};
use eval_core::Environment;
use eval_obs::ProgressSink;
use eval_trace::{Collector, Tracer};

/// The collecting side of a [`TraceSession`]: either a bare
/// [`Collector`], or one wrapped in a [`ProgressSink`] heartbeating to
/// stderr. The decorator forwards every record verbatim, so the traced
/// JSONL stream is bit-identical either way.
enum SessionSink {
    Plain(Collector),
    Progress(ProgressSink<Collector, std::io::Stderr>),
}

/// An optional telemetry session for the experiment binaries, enabled by
/// any of:
///
/// * `--trace <path>` (or `--trace=<path>`, or `EVAL_TRACE`) — write the
///   JSONL trace stream at end-of-run;
/// * `--progress` (or `EVAL_PROGRESS=1`) — heartbeat live campaign
///   progress (chips done/total, chips/sec, ETA, solver counters) to
///   stderr while the run executes;
/// * `--metrics-out <path>` (or `--metrics-out=<path>`, or
///   `EVAL_METRICS_OUT`) — write a Prometheus-text snapshot of the
///   metric registry at end-of-run, servable with `eval-obs serve`.
///
/// Flags win over environment variables. Events/metrics accumulate in
/// memory and are flushed by [`TraceSession::finish`]. The
/// `"kind":"event"` lines are bit-deterministic across runs and thread
/// counts; span lines and `*_us` metrics carry wall-clock timings and
/// are excluded from that contract.
pub struct TraceSession {
    trace_path: Option<std::path::PathBuf>,
    metrics_path: Option<std::path::PathBuf>,
    sink: SessionSink,
}

impl TraceSession {
    /// Builds a session from `std::env::args` / environment variables,
    /// or `None` when no telemetry was requested.
    pub fn from_env() -> Option<TraceSession> {
        let mut args = std::env::args();
        let mut trace_path: Option<std::path::PathBuf> = None;
        let mut metrics_path: Option<std::path::PathBuf> = None;
        let mut progress = false;
        while let Some(arg) = args.next() {
            if arg == "--trace" {
                trace_path = args.next().map(Into::into);
            } else if let Some(p) = arg.strip_prefix("--trace=") {
                trace_path = Some(p.into());
            } else if arg == "--metrics-out" {
                metrics_path = args.next().map(Into::into);
            } else if let Some(p) = arg.strip_prefix("--metrics-out=") {
                metrics_path = Some(p.into());
            } else if arg == "--progress" {
                progress = true;
            }
        }
        let trace_path = trace_path.or_else(|| std::env::var_os("EVAL_TRACE").map(Into::into));
        let metrics_path =
            metrics_path.or_else(|| std::env::var_os("EVAL_METRICS_OUT").map(Into::into));
        let progress = progress
            || std::env::var("EVAL_PROGRESS").is_ok_and(|v| !v.is_empty() && v != "0");
        if trace_path.is_none() && metrics_path.is_none() && !progress {
            return None;
        }
        let collector = Collector::new();
        let sink = if progress {
            SessionSink::Progress(ProgressSink::stderr(collector))
        } else {
            SessionSink::Plain(collector)
        };
        Some(TraceSession {
            trace_path,
            metrics_path,
            sink,
        })
    }

    /// A tracer recording into this session.
    pub fn tracer(&self) -> Tracer<'_> {
        match &self.sink {
            SessionSink::Plain(c) => Tracer::new(c),
            SessionSink::Progress(p) => Tracer::new(p),
        }
    }

    /// Flushes the session: writes the JSONL stream (`--trace`) and the
    /// Prometheus metrics snapshot (`--metrics-out`), and prints the
    /// end-of-run span/metric summary.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if an output file cannot be written.
    pub fn finish(self) -> std::io::Result<()> {
        let collector = match self.sink {
            SessionSink::Plain(c) => c,
            SessionSink::Progress(p) => p.into_inner(),
        };
        if let Some(path) = &self.trace_path {
            collector.write_jsonl(path)?;
        }
        if let Some(path) = &self.metrics_path {
            eval_obs::write_prometheus(&collector.registry(), path)?;
        }
        println!();
        println!("{}", collector.summary());
        if let Some(path) = &self.trace_path {
            eprintln!("# trace written to {}", path.display());
        }
        if let Some(path) = &self.metrics_path {
            eprintln!("# metrics written to {}", path.display());
        }
        Ok(())
    }
}

/// The tracer of an optional session ([`Tracer::noop`] when absent).
pub fn session_tracer(session: &Option<TraceSession>) -> Tracer<'_> {
    session.as_ref().map_or(Tracer::noop(), TraceSession::tracer)
}

/// Number of chips for campaign binaries: `EVAL_CHIPS` env var, else
/// `default`. The paper's protocol is 100.
pub fn chips_from_env(default: usize) -> usize {
    std::env::var("EVAL_CHIPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Workload subset for campaign binaries: `EVAL_WORKLOADS` (comma-separated
/// names), else all 16.
pub fn workloads_from_env() -> Vec<eval_uarch::Workload> {
    match std::env::var("EVAL_WORKLOADS") {
        Ok(list) => {
            let ws: Vec<_> = list
                .split(',')
                .filter_map(|n| eval_uarch::Workload::by_name(n.trim()))
                .collect();
            if ws.is_empty() {
                eval_uarch::Workload::all()
            } else {
                ws
            }
        }
        Err(_) => eval_uarch::Workload::all(),
    }
}

/// Builds the standard Figures 10–12 campaign.
pub fn standard_campaign(default_chips: usize) -> Campaign {
    let mut c = Campaign::new(chips_from_env(default_chips));
    c.workloads = workloads_from_env();
    c
}

/// Runs the Figures 10–12 campaign (six environments, three schemes) and
/// returns the result. This is the expensive shared computation.
pub fn run_figure10_campaign(
    default_chips: usize,
    tracer: Tracer<'_>,
) -> Result<CampaignResult, eval_adapt::CampaignError> {
    let campaign = standard_campaign(default_chips);
    eprintln!(
        "# campaign: {} chips x {} workloads x 6 environments x 3 schemes",
        campaign.chips,
        campaign.workloads.len()
    );
    campaign.run_traced(&Environment::FIGURE10, &Scheme::ALL, tracer)
}

/// Prints a row-per-environment matrix with `Static`, `Fuzzy-Dyn` and
/// `Exh-Dyn` columns plus the Baseline/NoVar reference lines.
pub fn print_environment_matrix<F: Fn(&eval_adapt::CellResult) -> f64>(
    title: &str,
    unit: &str,
    result: &CampaignResult,
    metric: F,
) {
    println!("# {title}");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "environment", "Static", "Fuzzy-Dyn", "Exh-Dyn"
    );
    for env in Environment::FIGURE10 {
        let get = |s: Scheme| {
            result
                .cell(env, s)
                .map(&metric)
                .map(|v| format!("{v:10.3}"))
                .unwrap_or_else(|| format!("{:>10}", "-"))
        };
        println!(
            "{:<14} {} {} {}",
            env.name,
            get(Scheme::Static),
            get(Scheme::FuzzyDyn),
            get(Scheme::ExhDyn)
        );
    }
    println!(
        "{:<14} {:>10.3}   (reference, {unit})",
        "Baseline",
        metric(&result.baseline)
    );
    println!(
        "{:<14} {:>10.3}   (reference, {unit})",
        "NoVar",
        metric(&result.novar)
    );
}

/// Emits a CSV block (machine-readable mirror of the printed table).
pub fn print_environment_csv<F: Fn(&eval_adapt::CellResult) -> f64>(
    metric_name: &str,
    result: &CampaignResult,
    metric: F,
) {
    println!("csv,environment,scheme,{metric_name}");
    println!("csv,Baseline,-,{:.6}", metric(&result.baseline));
    println!("csv,NoVar,-,{:.6}", metric(&result.novar));
    for (env, scheme, cell) in &result.cells {
        println!("csv,{},{},{:.6}", env.name, scheme.label(), metric(cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_env_parsing_defaults() {
        // No env var in the test environment (or unparseable): default.
        std::env::remove_var("EVAL_CHIPS");
        assert_eq!(chips_from_env(7), 7);
        std::env::set_var("EVAL_CHIPS", "12");
        assert_eq!(chips_from_env(7), 12);
        std::env::set_var("EVAL_CHIPS", "0");
        assert_eq!(chips_from_env(7), 7);
        std::env::remove_var("EVAL_CHIPS");
    }

    #[test]
    fn workload_env_parsing() {
        std::env::set_var("EVAL_WORKLOADS", "swim, mcf");
        let ws = workloads_from_env();
        assert_eq!(ws.len(), 2);
        std::env::remove_var("EVAL_WORKLOADS");
        assert_eq!(workloads_from_env().len(), 16);
    }
}
