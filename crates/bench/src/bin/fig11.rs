//! Figure 11: performance of each environment relative to `NoVar`.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 10) and `EVAL_WORKLOADS`;
//! `--trace <path>` / `EVAL_TRACE` dumps the JSONL event stream;
//! `--checkpoint <path>` / `--resume` make the campaign restartable.

use eval_bench::{
    print_environment_csv, print_environment_matrix, run_figure10_campaign, TraceSession,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let result = run_figure10_campaign(10, &trace)?;
    print_environment_matrix(
        "Figure 11: relative performance (NoVar = 1.0)",
        "x NoVar",
        &result,
        |c| c.perf_rel,
    );
    println!();
    print_environment_csv("perf_rel", &result, |c| c.perf_rel);
    println!();
    println!("# paper shape: same ordering as Figure 10 with smaller magnitudes;");
    println!("# their preferred scheme (TS+ASV+Q+FU, Fuzzy-Dyn) gains 14% over NoVar.");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
