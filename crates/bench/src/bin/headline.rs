//! The §6 headline numbers, paper vs measured:
//!
//! * Baseline cycles at 78% of the no-variation frequency;
//! * the preferred scheme (TS+ASV+Q+FU with Fuzzy-Dyn) increases frequency
//!   by 56% over Baseline (21% over NoVar) and performance by 40% (14%);
//! * power rides the 30 W budget; area overhead is 10.6%.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 15; paper protocol is 100) and
//! `EVAL_WORKLOADS`. Pass `--trace <path>` (or set `EVAL_TRACE`) to dump
//! the structured JSONL event/metric stream and an end-of-run summary;
//! `--checkpoint <path>` / `--resume` make the campaign restartable.

use eval_adapt::{Campaign, Scheme};
use eval_bench::{chips_from_env, fail_chip_from_env, run_campaign, workloads_from_env, TraceSession};
use eval_core::{AreaBreakdown, Environment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let mut campaign = Campaign::new(chips_from_env(15));
    campaign.workloads = workloads_from_env();
    campaign.fail_chip = fail_chip_from_env();
    eprintln!(
        "# headline campaign: {} chips x {} workloads",
        campaign.chips,
        campaign.workloads.len()
    );
    let result = run_campaign(
        &campaign,
        &[Environment::TS_ASV_Q_FU],
        &[Scheme::FuzzyDyn, Scheme::ExhDyn],
        &trace,
    )?;
    let best = result
        .cell(Environment::TS_ASV_Q_FU, Scheme::FuzzyDyn)
        .expect("cell exists");
    let exh = result
        .cell(Environment::TS_ASV_Q_FU, Scheme::ExhDyn)
        .expect("cell exists");
    let area = AreaBreakdown::for_environment(&Environment::TS_ASV_Q_FU);

    println!("# EVAL headline results (TS+ASV+Q+FU, Fuzzy-Dyn)");
    println!("{:<44} {:>8} {:>10}", "quantity", "paper", "measured");
    let row = |name: &str, paper: f64, measured: f64| {
        println!("{name:<44} {paper:>8.2} {measured:>10.2}");
    };
    row("baseline frequency (x NoVar)", 0.78, result.baseline.freq_rel);
    row("best frequency (x NoVar)", 1.21, best.freq_rel);
    row(
        "best frequency (x Baseline)",
        1.56,
        best.freq_rel / result.baseline.freq_rel,
    );
    row("best performance (x NoVar)", 1.14, best.perf_rel);
    row(
        "best performance (x Baseline)",
        1.40,
        best.perf_rel / result.baseline.perf_rel,
    );
    row("NoVar power (W)", 25.0, result.novar.power_w);
    row("Baseline power (W)", 17.0, result.baseline.power_w);
    row("best power (W, cap 30)", 30.0, best.power_w);
    row("area overhead (%)", 10.6, area.total_pct());
    println!();
    println!(
        "# Fuzzy-Dyn vs Exh-Dyn (should be nearly identical): f {:.3} vs {:.3}, perf {:.3} vs {:.3}",
        best.freq_rel, exh.freq_rel, best.perf_rel, exh.perf_rel
    );

    // Sanity assertions on the orderings the paper establishes.
    assert!(
        result.baseline.freq_rel < 0.9,
        "baseline must lose substantial frequency to variation"
    );
    assert!(
        best.freq_rel > result.baseline.freq_rel * 1.2,
        "the adapted processor must be much faster than baseline"
    );
    assert!(
        best.perf_rel > result.baseline.perf_rel,
        "performance must improve too"
    );
    assert!(
        best.power_w <= 30.0 + 1e-6,
        "the power constraint must hold"
    );
    assert!(
        (best.freq_rel - exh.freq_rel).abs() < 0.05,
        "fuzzy control must track the exhaustive oracle"
    );
    println!("# all ordering assertions passed");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
