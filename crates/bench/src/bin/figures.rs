//! Runs the shared Figures 10–12 campaign **once** and prints all three
//! views (relative frequency, relative performance, power) — cheaper than
//! invoking `fig10`, `fig11` and `fig12` separately, which each rerun it.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 10) and `EVAL_WORKLOADS`;
//! `--trace <path>` / `EVAL_TRACE` dumps the JSONL event stream;
//! `--checkpoint <path>` / `--resume` make the campaign restartable.

use eval_bench::{
    print_environment_csv, print_environment_matrix, run_figure10_campaign, TraceSession,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let result = run_figure10_campaign(10, &trace)?;
    print_environment_matrix(
        "Figure 10: relative frequency (NoVar = 1.0)",
        "x NoVar",
        &result,
        |c| c.freq_rel,
    );
    println!();
    print_environment_matrix(
        "Figure 11: relative performance (NoVar = 1.0)",
        "x NoVar",
        &result,
        |c| c.perf_rel,
    );
    println!();
    print_environment_matrix(
        "Figure 12: processor power (watts)",
        "W",
        &result,
        |c| c.power_w,
    );
    println!();
    print_environment_csv("freq_rel", &result, |c| c.freq_rel);
    print_environment_csv("perf_rel", &result, |c| c.perf_rel);
    print_environment_csv("power_w", &result, |c| c.power_w);
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
