//! Figure 1: impact of variation on processor frequency.
//!
//! (a) dynamic path-delay distribution without variation — all paths below
//!     the nominal period;
//! (b) the spread-out distribution with variation — the processor needs a
//!     longer period `Tvar`;
//! (c) the per-stage error rate `PE(f)`;
//! (d) the 2-stage pipeline error rate per instruction (Equation 4).

use eval_core::EvalConfig;
use eval_timing::{OperatingConditions, PathClass, PipelineErrorModel, StageTiming, SubsystemKind};
use eval_units::GHz;
use eval_variation::{ChipGrid, VariationModel, VariationParams};

fn main() {
    let config = EvalConfig::micro08();
    let t_nom = config.t_nominal_ns();
    let model = VariationModel::new(ChipGrid::default(), VariationParams::micro08());
    let chip = model.sample_chip(1);
    let device = config.device;

    println!("# Figure 1(a,b): path-delay densities (logic stage), ps");
    let class = PathClass::for_kind(SubsystemKind::Logic);
    let nominal = class.nominal_distribution(t_nom);
    // With variation: the slowest cell of a sample footprint.
    let cells: Vec<usize> = (0..16).collect();
    let stage = StageTiming::from_chip(&class, t_nom, &chip, &cells, device, 12);
    let kappa = stage.worst_cell_factor(&OperatingConditions::nominal());
    println!("csv,delay_ps,density_novar,density_var");
    for k in 0..=80 {
        let t = t_nom * (0.3 + k as f64 * 0.0125);
        let gauss = |mean: f64, sigma: f64| {
            let z = (t - mean) / sigma;
            (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
        };
        let d0 = gauss(nominal.mean_ns(), nominal.sigma_ns());
        let d1 = gauss(nominal.mean_ns() * kappa, nominal.sigma_ns() * kappa * 1.4);
        println!("csv,{:.1},{:.4},{:.4}", t * 1e3, d0, d1);
    }
    println!(
        "# Tnom = {:.0} ps; slowest-cell delay factor on this chip = {:.3}",
        t_nom * 1e3,
        kappa
    );

    println!();
    println!("# Figure 1(c): PE(f) for one memory stage and one logic stage");
    let mem = StageTiming::from_chip(
        &PathClass::for_kind(SubsystemKind::Memory),
        t_nom,
        &chip,
        &(16..52).collect::<Vec<_>>(),
        device,
        2,
    );
    let cond = OperatingConditions::nominal();
    println!("csv,f_ghz,pe_memory,pe_logic");
    for k in 0..=40 {
        let f = GHz::raw(2.8 + 0.05 * k as f64);
        println!(
            "csv,{:.2},{:.3e},{:.3e}",
            f.get(),
            mem.pe_access(f, &cond),
            stage.pe_access(f, &cond)
        );
    }

    println!();
    println!("# Figure 1(d): 2-stage pipeline, PE per instruction (Eq. 4)");
    let pipeline = PipelineErrorModel::new(vec![(1.0, mem.clone()), (0.6, stage.clone())]);
    println!("csv,f_ghz,pe_per_instruction");
    for k in 0..=40 {
        let f = GHz::raw(2.8 + 0.05 * k as f64);
        println!("csv,{:.2},{:.3e}", f.get(), pipeline.pe_uniform(f, &cond));
    }
    let fvar = pipeline.fvar_uniform(&cond, 1e-12).get();
    println!("# fvar (error-free) = {fvar:.2} GHz vs nominal {:.1} GHz", config.f_nominal_ghz);
}
