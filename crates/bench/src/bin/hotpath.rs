//! Hot-path smoke benchmark: times the memoized operating-point fast path
//! against the reference implementations it replaced, prints a comparison
//! table, and (with `--bench-json <path>`) writes the results as JSON.
//!
//! ```text
//! cargo run --release -p eval-bench --bin hotpath -- --bench-json BENCH_hotpath.json
//! ```
//!
//! Each benchmark is self-timed: the body is repeated until a sample takes
//! at least a few milliseconds, several samples are collected, and the
//! median per-iteration time is reported. With `--samples N` every
//! benchmark collects exactly N samples and the full per-benchmark sample
//! vector is recorded in the JSON (`samples_ns`), which is what the
//! quantile gate in `eval-obs bench-check` consumes. The JSON carries a
//! provenance header (content address, git revision, host fingerprint,
//! metric-schema hash). The committed `BENCH_hotpath.json` at the
//! workspace root is this binary's output.

use std::hint::black_box;
use std::time::Instant;

use eval_adapt::{Campaign, ExhaustiveOptimizer, Optimizer, Scheme, SubsystemScene};
use eval_bench::{fail_chip_from_env, run_campaign, TraceSession};
use eval_core::{
    ChipFactory, ChipModel, Environment, EvalConfig, OperatingConditions, SubsystemId,
    VariantSelection, N_SUBSYSTEMS,
};
use eval_power::{solve_thermal, solve_thermal_reference, OperatingPoint, ThermalEnvironment};
use eval_uarch::Workload;
use eval_trace::names;
use eval_units::{GHz, Volts};

/// Per-iteration nanoseconds for `body`, one entry per sample in
/// collection order, self-calibrated so each sample runs for at least
/// `min_sample_ms`.
fn time_samples<F: FnMut()>(mut body: F, min_sample_ms: u64, samples: usize) -> Vec<f64> {
    // Calibrate: grow the iteration count until one sample is long enough
    // to drown out timer quantization.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            body();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= min_sample_ms || iters > 1_000_000_000 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                body();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect()
}

/// The median of a sample vector (the vector is left untouched).
fn median_ns(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

/// Median per-iteration nanoseconds for `body` (see [`time_samples`]).
fn time_ns<F: FnMut()>(body: F, min_sample_ms: u64, samples: usize) -> f64 {
    median_ns(&time_samples(body, min_sample_ms, samples))
}

struct Row {
    name: &'static str,
    /// All fast-path samples, collection order.
    samples_ns: Vec<f64>,
    fast_ns: f64,
    reference_ns: Option<f64>,
}

impl Row {
    fn new(name: &'static str, samples_ns: Vec<f64>, reference_ns: Option<f64>) -> Row {
        let fast_ns = median_ns(&samples_ns);
        Row {
            name,
            samples_ns,
            fast_ns,
            reference_ns,
        }
    }

    fn speedup(&self) -> Option<f64> {
        self.reference_ns.map(|r| r / self.fast_ns)
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn scene<'a>(config: &EvalConfig, chip: &'a ChipModel, id: SubsystemId) -> SubsystemScene<'a> {
    SubsystemScene {
        state: chip.core(0).subsystem(id),
        variants: VariantSelection::default(),
        th_c: 60.0,
        alpha_f: 0.5,
        rho: 0.6,
        pe_budget: config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
        env: Environment::TS_ASV,
    }
}

fn small_campaign() {
    let mut campaign = Campaign::new(2);
    campaign.profile_budget = 3_000;
    campaign.workloads = vec![Workload::by_name("gzip").expect("workload exists")];
    campaign.threads = 1;
    black_box(
        campaign
            .run(&[Environment::TS_ASV], &[Scheme::ExhDyn])
            .expect("campaign runs"),
    );
}

/// Runs the same small campaign once under a tracer and returns the
/// end-of-run `solver.*` counters as `(name, value)` pairs — flushed
/// into the JSON so `eval-obs bench-check` can gate on cache hit-rate
/// alongside raw latency. When the binary carries a [`TraceSession`]
/// (`--trace`/`--checkpoint`/...), the campaign runs through it so the
/// session's trace, sidecar and metrics cover this run too.
fn campaign_metrics(
    session: &Option<TraceSession>,
) -> Result<Vec<(&'static str, f64)>, Box<dyn std::error::Error>> {
    let mut campaign = Campaign::new(2);
    campaign.profile_budget = 3_000;
    campaign.workloads = vec![Workload::by_name("gzip").expect("workload exists")];
    campaign.threads = 1;
    campaign.fail_chip = fail_chip_from_env();
    let local;
    let registry = match session {
        Some(s) => {
            run_campaign(&campaign, &[Environment::TS_ASV], &[Scheme::ExhDyn], session)?;
            s.registry()
        }
        None => {
            local = eval_trace::Collector::new();
            campaign.run_traced(
                &[Environment::TS_ASV],
                &[Scheme::ExhDyn],
                eval_trace::Tracer::new(&local),
            )?;
            local.registry()
        }
    };
    let hits = registry.counter(names::SOLVER_CACHE_HITS);
    let misses = registry.counter(names::SOLVER_CACHE_MISSES);
    let mut out = vec![
        (names::SOLVER_CACHE_HITS, hits as f64),
        (names::SOLVER_CACHE_MISSES, misses as f64),
        (names::SOLVER_ITERATIONS, registry.counter(names::SOLVER_ITERATIONS) as f64),
        (names::DECISION_COUNT, registry.counter(names::DECISION_COUNT) as f64),
    ];
    if hits + misses > 0 {
        out.push((names::SOLVER_CACHE_HIT_RATE, hits as f64 / (hits + misses) as f64));
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut json_path = None;
    let mut samples_override: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench-json" => {
                json_path = Some(args.next().ok_or("--bench-json needs a path")?);
            }
            "--samples" => {
                let n = args.next().ok_or("--samples needs a count")?;
                samples_override = Some(parse_samples(&n)?);
            }
            // Session flags, parsed by TraceSession::from_env below.
            "--trace" | "--metrics-out" | "--checkpoint" => {
                args.next();
            }
            "--progress" | "--resume" => {}
            other if other.starts_with("--trace=")
                || other.starts_with("--metrics-out=")
                || other.starts_with("--checkpoint=")
                || other.starts_with("--bench-json=")
                || other.starts_with("--samples=") =>
            {
                if let Some(p) = other.strip_prefix("--bench-json=") {
                    json_path = Some(p.to_string());
                }
                if let Some(n) = other.strip_prefix("--samples=") {
                    samples_override = Some(parse_samples(n)?);
                }
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
    }
    let session = TraceSession::from_env()?;

    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(42);
    let state = chip.core(0).subsystem(SubsystemId::Dcache);
    let params = state.power_params(&VariantSelection::default());
    let timing = state.timing(&VariantSelection::default());
    let tenv = ThermalEnvironment {
        th_c: 60.0,
        alpha_f: 0.5,
    };
    let op = OperatingPoint::raw(4.0, 1.0, 0.0);
    let cond = OperatingConditions {
        vdd: Volts::raw(1.0),
        vbb: Volts::raw(0.0),
        t_c: 65.0,
    };
    let budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
    let sc = scene(&config, &chip, SubsystemId::Dcache);

    let mut rows = Vec::new();
    let n = |default: usize| samples_override.unwrap_or(default);

    rows.push(Row::new(
        "solve_thermal",
        time_samples(
            || {
                black_box(solve_thermal(&params, &tenv, black_box(&op), &config.device)).ok();
            },
            5,
            n(7),
        ),
        Some(time_ns(
            || {
                black_box(solve_thermal_reference(
                    &params,
                    &tenv,
                    black_box(&op),
                    &config.device,
                ))
                .ok();
            },
            5,
            7,
        )),
    ));

    rows.push(Row::new(
        "pe_access_bounded",
        time_samples(
            || {
                black_box(timing.pe_access_bounded(GHz::raw(4.0), black_box(&cond), 0.6, budget));
            },
            5,
            n(7),
        ),
        Some(time_ns(
            || {
                black_box(timing.pe_access(GHz::raw(4.0), black_box(&cond)));
            },
            5,
            7,
        )),
    ));

    rows.push(Row::new(
        "freq_max_ladder_sweep",
        time_samples(
            || {
                let opt = ExhaustiveOptimizer::new();
                black_box(opt.freq_max(&config, black_box(&sc)));
            },
            20,
            n(7),
        ),
        Some(time_ns(
            || {
                let opt = ExhaustiveOptimizer::new();
                black_box(opt.freq_max_reference(&config, black_box(&sc)));
            },
            20,
            7,
        )),
    ));

    let warm = ExhaustiveOptimizer::new();
    rows.push(Row::new(
        "freq_max_warm_reuse",
        time_samples(
            || {
                black_box(warm.freq_max(&config, black_box(&sc)));
            },
            20,
            n(7),
        ),
        None,
    ));

    rows.push(Row::new(
        "campaign_exhdyn_2chips",
        time_samples(small_campaign, 1, n(3)),
        None,
    ));

    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "benchmark", "fast", "reference", "speedup"
    );
    for row in &rows {
        println!(
            "{:<28} {:>14} {:>14} {:>9}",
            row.name,
            human(row.fast_ns),
            row.reference_ns.map_or_else(|| "-".to_string(), human),
            row.speedup()
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        );
    }

    if let Some(path) = json_path {
        let mut metrics = campaign_metrics(&session)?;
        if let Some(count) = samples_override {
            metrics.push((names::BENCH_SAMPLES, count as f64));
        }
        // The content address covers the document *without* its own
        // stamp, so bit-identical measurements hash identically even
        // when produced by different revisions or hosts.
        let record_samples = samples_override.is_some();
        let body = render_bench_json(&rows, &metrics, record_samples, None);
        let prov = eval_trace::Provenance::capture("bench-json")
            .with_content_address(body.as_bytes());
        let out = render_bench_json(&rows, &metrics, record_samples, Some(&prov));
        eval_trace::write_atomic(std::path::Path::new(&path), out.as_bytes())?;
        eval_trace::provenance::append_journal(std::path::Path::new(&path), &prov)?;
        println!("\nwrote {path}");
    }
    if let Some(session) = session {
        session.finish()?;
    }
    Ok(())
}

/// Renders the bench JSON document (format 2: provenance header, plus
/// per-benchmark sample vectors when `--samples` is active). Pass
/// `provenance: None` for the content-address pass — the address covers
/// exactly that rendering.
fn render_bench_json(
    rows: &[Row],
    metrics: &[(&'static str, f64)],
    record_samples: bool,
    provenance: Option<&eval_trace::Provenance>,
) -> String {
    let mut out = String::from("{\n  \"format\": 2,\n  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"fast_ns\": {:.1}, \"reference_ns\": {}, \"speedup\": {}",
            row.name,
            row.fast_ns,
            row.reference_ns
                .map_or_else(|| "null".to_string(), |r| format!("{r:.1}")),
            row.speedup()
                .map_or_else(|| "null".to_string(), |s| format!("{s:.2}")),
        ));
        if record_samples {
            out.push_str(", \"samples_ns\": [");
            for (j, s) in row.samples_ns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{s:.1}"));
            }
            out.push(']');
        }
        out.push_str(&format!("}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    out.push_str("  ],\n  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            name,
            if value.fract() == 0.0 {
                format!("{value:.1}")
            } else {
                format!("{value:.6}")
            },
            if i + 1 < metrics.len() { "," } else { "" },
        ));
    }
    out.push_str("  }");
    if let Some(prov) = provenance {
        out.push_str(",\n  \"provenance\": ");
        out.push_str(&prov.to_json());
    }
    out.push_str("\n}\n");
    out
}

/// Parses the `--samples` count (at least 2 — one sample has no
/// distribution).
fn parse_samples(text: &str) -> Result<usize, String> {
    match text.parse::<usize>() {
        Ok(count) if count >= 2 => Ok(count),
        _ => Err(format!("--samples needs an integer count >= 2, got {text}")),
    }
}
