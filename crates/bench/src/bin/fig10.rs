//! Figure 10: processor frequency for each environment, normalized to
//! `NoVar` (Static / Fuzzy-Dyn / Exh-Dyn bars per environment).
//!
//! Protocol knobs: `EVAL_CHIPS` (default 10; the paper uses 100) and
//! `EVAL_WORKLOADS` (default: all 16). `--trace <path>` / `EVAL_TRACE`
//! dumps the structured JSONL event/metric stream; `--checkpoint <path>`
//! plus `--resume` make the campaign crash-safe and restartable.

use eval_bench::{
    print_environment_csv, print_environment_matrix, run_figure10_campaign, TraceSession,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let result = run_figure10_campaign(10, &trace)?;
    print_environment_matrix(
        "Figure 10: relative frequency (NoVar = 1.0)",
        "x NoVar",
        &result,
        |c| c.freq_rel,
    );
    println!();
    print_environment_csv("freq_rel", &result, |c| c.freq_rel);
    println!();
    println!(
        "# paper shape: Baseline 0.78; TS ~0.87; TS+ASV static 0.97, dynamic ~1.05;"
    );
    println!("# adding Q+FU with dynamic adaptation reaches 1.21 (their best).");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
