//! Figure 9: three-dimensional views of the power vs error-rate vs
//! frequency surface (a) and the power vs error-rate vs performance
//! surface (b), for the integer ALU of one sample chip running `swim`
//! with per-subsystem ASV/ABB.

use eval_adapt::surface::pe_power_frequency_surface;
use eval_core::{ChipFactory, Environment, EvalConfig, PerfModel, SubsystemId};
use eval_uarch::{profile_workload, QueueSize, Workload};

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(2008);
    let state = chip.core(0).subsystem(SubsystemId::IntAlu);
    let w = Workload::by_name("swim").expect("workload exists");
    let profile = profile_workload(&w, 8_000, 2008);
    let ph = &profile.phases[0];
    let perf = PerfModel::new(
        ph.cpi_comp(QueueSize::Full),
        ph.mr,
        ph.mp_ns,
        profile.rp_cycles,
    );
    let novar = perf.perf(config.f_nominal_ghz, 0.0);

    let points = pe_power_frequency_surface(
        &config,
        state,
        Environment::TS_ABB_ASV,
        config.th_c,
        ph.activity.alpha_f[SubsystemId::IntAlu.index()].max(0.2),
        ph.activity.rho[SubsystemId::IntAlu.index()].max(0.2),
        &perf,
        novar,
    );

    println!("# Figure 9(a): minimum realizable PE for each (power, frequency) — IntALU");
    println!("# Figure 9(b): the same Pareto points with relative performance");
    println!("csv,f_rel,power_w,pe,perf_rel");
    for p in &points {
        println!(
            "csv,{:.3},{:.3},{:.3e},{:.4}",
            p.f_rel, p.power_w, p.pe, p.perf_rel
        );
    }
    println!("# {} Pareto points", points.len());

    // Line (1) of the figure: constant power through the optimum.
    let mid_power = points
        .iter()
        .map(|p| p.power_w)
        .sum::<f64>()
        / points.len().max(1) as f64;
    println!();
    println!("# Line (1): PE vs f at ~constant power ({mid_power:.2} W band)");
    println!("csv,f_rel,pe,perf_rel");
    for p in points
        .iter()
        .filter(|p| (p.power_w - mid_power).abs() < 0.15 * mid_power)
    {
        println!("csv,{:.3},{:.3e},{:.4}", p.f_rel, p.pe, p.perf_rel);
    }
}
