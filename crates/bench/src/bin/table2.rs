//! Table 2: difference between the selections of the fuzzy controller and
//! `Exhaustive`, in absolute units and as a percentage of nominal, split by
//! subsystem type (memory / mixed / logic).
//!
//! Protocol knobs: `EVAL_CHIPS` (default 3 chips of fidelity probing),
//! `EVAL_QUERIES` (default 60 random scenes per chip and environment).

use eval_adapt::{fidelity_table, TrainingBudget};
use eval_bench::chips_from_env;
use eval_core::{Environment, EvalConfig};

fn main() {
    let config = EvalConfig::micro08();
    let chips = chips_from_env(3);
    let queries: usize = std::env::var("EVAL_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    eprintln!("# fidelity: {chips} chips x {queries} scenes x 4 environments");

    let rows = fidelity_table(
        &config,
        &Environment::TABLE2,
        chips,
        queries,
        &TrainingBudget::default(),
        2008,
    );

    let nominal_mhz = config.f_nominal_ghz * 1e3;
    println!("# Table 2: |Fuzzy - Exhaustive| (mean absolute difference)");
    println!(
        "{:<14} {:<12} {:>16} {:>16} {:>16}",
        "param", "environment", "memory", "mixed", "logic"
    );
    println!("csv,param,environment,memory,mixed,logic");
    for row in &rows {
        let pct = |v: f64| format!("{:.0} ({:.1}%)", v, 100.0 * v / nominal_mhz);
        println!(
            "{:<14} {:<12} {:>16} {:>16} {:>16}",
            "freq (MHz)",
            row.env.name,
            pct(row.freq_mhz[0]),
            pct(row.freq_mhz[1]),
            pct(row.freq_mhz[2])
        );
        println!(
            "csv,freq_mhz,{},{:.1},{:.1},{:.1}",
            row.env.name, row.freq_mhz[0], row.freq_mhz[1], row.freq_mhz[2]
        );
    }
    for row in rows.iter().filter(|r| r.env.asv) {
        println!(
            "{:<14} {:<12} {:>16.1} {:>16.1} {:>16.1}",
            "Vdd (mV)", row.env.name, row.vdd_mv[0], row.vdd_mv[1], row.vdd_mv[2]
        );
        println!(
            "csv,vdd_mv,{},{:.1},{:.1},{:.1}",
            row.env.name, row.vdd_mv[0], row.vdd_mv[1], row.vdd_mv[2]
        );
    }
    for row in rows.iter().filter(|r| r.env.abb) {
        println!(
            "{:<14} {:<12} {:>16.1} {:>16.1} {:>16.1}",
            "Vbb (mV)", row.env.name, row.vbb_mv[0], row.vbb_mv[1], row.vbb_mv[2]
        );
        println!(
            "csv,vbb_mv,{},{:.1},{:.1},{:.1}",
            row.env.name, row.vbb_mv[0], row.vbb_mv[1], row.vbb_mv[2]
        );
    }
    println!();
    println!("# paper shape: frequency errors of ~135-450 MHz (3-11% of nominal),");
    println!("# Vdd errors of ~14-24 mV, Vbb errors of ~69-129 mV.");
}
