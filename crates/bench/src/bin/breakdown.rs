//! Per-workload breakdown of the preferred scheme (TS+ASV+Q+FU, Fuzzy-Dyn)
//! — the per-application detail behind the Figure 10/11 averages.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 6) and `EVAL_WORKLOADS`.

use eval_adapt::Scheme;
use eval_bench::standard_campaign;
use eval_core::Environment;

fn main() -> Result<(), eval_adapt::CampaignError> {
    let campaign = standard_campaign(6);
    eprintln!(
        "# per-workload breakdown: {} chips x {} workloads (TS+ASV+Q+FU, Fuzzy-Dyn)",
        campaign.chips,
        campaign.workloads.len()
    );
    let rows = campaign.run_per_workload(Environment::TS_ASV_Q_FU, Scheme::FuzzyDyn)?;
    println!(
        "{:<10} {:>9} {:>9} {:>9}",
        "workload", "freq_rel", "perf_rel", "power_W"
    );
    println!("csv,workload,freq_rel,perf_rel,power_w");
    for (name, cell) in &rows {
        println!(
            "{name:<10} {:>9.3} {:>9.3} {:>9.1}",
            cell.freq_rel, cell.perf_rel, cell.power_w
        );
        println!(
            "csv,{name},{:.4},{:.4},{:.2}",
            cell.freq_rel, cell.perf_rel, cell.power_w
        );
    }
    let mean = |f: fn(&eval_adapt::CellResult) -> f64| {
        rows.iter().map(|(_, c)| f(c)).sum::<f64>() / rows.len() as f64
    };
    println!(
        "# suite means: freq {:.3}, perf {:.3}, power {:.1} W",
        mean(|c| c.freq_rel),
        mean(|c| c.perf_rel),
        mean(|c| c.power_w)
    );
    Ok(())
}
