//! Related-work comparison (§7): EVAL vs dynamic pipeline retiming.
//!
//! "The performance gains from EVAL (40%) are larger than from dynamic
//! retiming (10–20%)" — this binary reproduces that comparison on a chip
//! population: worst-stage baseline, ReCycle-style time borrowing (10% of
//! the cycle), ideal (mean-stage) retiming, and the EVAL `TS+ASV` adapted
//! frequency, all relative to the no-variation nominal.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 12).

use eval_adapt::{decide_phase, ExhaustiveOptimizer};
use eval_bench::chips_from_env;
use eval_core::{retime_core, ChipFactory, Environment, EvalConfig};
use eval_uarch::{profile_workload, Workload};

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chips = chips_from_env(12);

    let workload = Workload::by_name("gcc").expect("gcc exists");
    let profile = profile_workload(&workload, 6_000, 17);
    let oracle = ExhaustiveOptimizer::new();

    let mut sums = [0.0f64; 4]; // baseline, retimed, ideal, eval
    println!("# dynamic retiming vs EVAL ({chips} chips, workload {})", workload.name);
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10}",
        "chip", "baseline", "retime(10%)", "retime(max)", "EVAL"
    );
    println!("csv,chip,baseline_rel,retimed_rel,ideal_rel,eval_rel");
    for (i, chip) in factory.population(1234, chips).enumerate() {
        let core = chip.core(0);
        let r = retime_core(&config, core, 0.10);
        // EVAL: slowest adapted phase (a bin must hold across the run).
        let f_eval = profile
            .phases
            .iter()
            .map(|ph| {
                decide_phase(
                    &config,
                    core,
                    &oracle,
                    Environment::TS_ASV,
                    ph,
                    workload.class,
                    profile.rp_cycles,
                    config.th_c,
                )
                .f_ghz
            })
            .fold(f64::INFINITY, f64::min);
        let rel = |f: f64| f / config.f_nominal_ghz;
        let row = [
            rel(r.f_baseline_ghz),
            rel(r.f_retimed_ghz),
            rel(r.f_ideal_ghz),
            rel(f_eval),
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        println!(
            "{i:>5} {:>10.3} {:>12.3} {:>12.3} {:>10.3}",
            row[0], row[1], row[2], row[3]
        );
        println!("csv,{i},{:.4},{:.4},{:.4},{:.4}", row[0], row[1], row[2], row[3]);
    }
    let n = chips as f64;
    println!();
    println!(
        "# means: baseline {:.3}, retimed {:.3} ({:+.0}%), ideal retiming {:.3} ({:+.0}%), \
         EVAL {:.3} ({:+.0}%)",
        sums[0] / n,
        sums[1] / n,
        100.0 * (sums[1] / sums[0] - 1.0),
        sums[2] / n,
        100.0 * (sums[2] / sums[0] - 1.0),
        sums[3] / n,
        100.0 * (sums[3] / sums[0] - 1.0)
    );
    println!("# paper: retiming recovers 10-20%; EVAL recovers far more.");
}
