//! Ablations over the model's design choices (DESIGN.md §6/§8): how the
//! headline quantities respond to
//!
//! * the amount of variation (`sigma/mu` of `Vt`),
//! * the spatial-correlation range `phi`,
//! * the design guardband spent by timing speculation (reported, fixed at
//!   build time), and
//! * the fuzzy-controller rule count (accuracy vs the exhaustive oracle).
//!
//! Protocol knobs: `EVAL_CHIPS` (default 10 per configuration).

use eval_adapt::{
    fidelity_table, ExhaustiveOptimizer, GlobalDvfsOptimizer, Optimizer, SubsystemScene,
    TrainingBudget,
};
use eval_bench::chips_from_env;
use eval_core::{
    ChipFactory, Environment, EvalConfig, SubsystemId, VariantSelection, N_SUBSYSTEMS,
};
use eval_fuzzy::TrainingConfig;

fn mean_fvar(config: &EvalConfig, chips: usize, seed: u64) -> f64 {
    let factory = ChipFactory::new(config.clone());
    factory
        .population(seed, chips)
        .map(|chip| chip.core(0).fvar_nominal(config).get() / config.f_nominal_ghz)
        .sum::<f64>()
        / chips as f64
}

fn main() {
    let chips = chips_from_env(10);

    println!("# Ablation 1: variation amount (Vt sigma/mu) vs baseline frequency");
    println!("csv,vt_sigma_over_mu,mean_fvar_rel");
    for sigma in [0.03, 0.06, 0.09, 0.12] {
        let mut config = EvalConfig::micro08();
        config.variation.vt_sigma_over_mu = sigma;
        config.variation.leff_sigma_over_mu = sigma / 2.0;
        let f = mean_fvar(&config, chips, 42);
        println!("csv,{sigma:.2},{f:.4}");
    }
    println!("# paper setting: 0.09 -> ~0.78; more variation, lower baseline.");

    println!();
    println!("# Ablation 2: correlation range phi vs baseline frequency");
    println!("csv,phi,mean_fvar_rel");
    for phi in [0.1, 0.25, 0.5, 1.0] {
        let mut config = EvalConfig::micro08();
        config.variation.phi = phi;
        let f = mean_fvar(&config, chips, 43);
        println!("csv,{phi:.2},{f:.4}");
    }
    println!("# shorter range = more independent slow spots = slower worst stage.");

    println!();
    println!("# Ablation 3: fuzzy rule count vs frequency-selection error (TS+ASV)");
    println!("csv,rules,mem_err_mhz,mixed_err_mhz,logic_err_mhz");
    let config = EvalConfig::micro08();
    for rules in [9usize, 16, 25, 36] {
        let budget = TrainingBudget {
            examples: 220.max(rules * 8),
            config: TrainingConfig {
                rules,
                ..TrainingConfig::micro08()
            },
            seed: 7,
        };
        let rows = fidelity_table(&config, &[Environment::TS_ASV], 1, 40, &budget, 77);
        let r = &rows[0];
        println!(
            "csv,{rules},{:.0},{:.0},{:.0}",
            r.freq_mhz[0], r.freq_mhz[1], r.freq_mhz[2]
        );
    }
    println!("# paper setting: 25 rules 'give good results'.");

    println!();
    println!("# Ablation 4: fine-grain per-subsystem ASV vs whole-core DVFS (§7)");
    println!("csv,chip,f_global_rel,f_fine_rel");
    let factory = ChipFactory::new(config.clone());
    let exhaustive = ExhaustiveOptimizer::new();
    let (mut sum_g, mut sum_f) = (0.0, 0.0);
    for (i, chip) in factory.population(500, chips).enumerate() {
        let scenes: Vec<SubsystemScene<'_>> = SubsystemId::ALL
            .iter()
            .map(|id| SubsystemScene {
                state: chip.core(0).subsystem(*id),
                variants: VariantSelection::default(),
                th_c: config.th_c,
                alpha_f: 0.4,
                rho: 0.6,
                pe_budget: config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS),
                env: Environment::TS_ASV,
            })
            .collect();
        let (_, f_global) = GlobalDvfsOptimizer::best_shared_setting(&config, &scenes);
        let f_fine = scenes
            .iter()
            .map(|s| exhaustive.freq_max(&config, s))
            .fold(f64::INFINITY, f64::min);
        sum_g += f_global / config.f_nominal_ghz;
        sum_f += f_fine / config.f_nominal_ghz;
        println!(
            "csv,{i},{:.4},{:.4}",
            f_global / config.f_nominal_ghz,
            f_fine / config.f_nominal_ghz
        );
    }
    println!(
        "# means: global DVFS {:.3}, fine-grain ASV {:.3} ({:+.1}%)",
        sum_g / chips as f64,
        sum_f / chips as f64,
        100.0 * (sum_f / sum_g - 1.0)
    );
    println!("# fine-grain control is the paper's §7 advantage over whole-chip DVFS.");
}
