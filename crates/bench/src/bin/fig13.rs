//! Figure 13: outcomes of the fuzzy-controller system — for each of the
//! four voltage environments (A: TS, B: TS+ABB, C: TS+ASV, D: TS+ABB+ASV)
//! and each microarchitecture-technique set (no opt / FU opt / Queue opt /
//! FU+Queue opt), the fraction of controller invocations ending in
//! NoChange, LowFreq, Error, Temp or Power.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 8) and `EVAL_WORKLOADS`;
//! `--trace <path>` / `EVAL_TRACE` dumps the JSONL event stream (all 16
//! variant campaigns trace into one file). `--checkpoint <path>` gives
//! each variant campaign its own sidecar (`<path>.<variant>`); `--resume`
//! works only without `--trace`, because a single streamed trace file
//! cannot be reconciled across 16 independent campaigns.

use eval_adapt::{Campaign, CheckpointOptions, Outcome, Scheme};
use eval_bench::{chips_from_env, fail_chip_from_env, session_tracer, workloads_from_env, TraceSession};
use eval_core::Environment;

/// Lower-case alphanumeric slug for embedding a variant label in a path.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let base_ckpt = trace
        .as_ref()
        .and_then(TraceSession::checkpoint_options)
        .cloned();
    if let Some(opts) = &base_ckpt {
        if opts.resume && trace.as_ref().is_some_and(|s| s.trace_path().is_some()) {
            return Err(
                "fig13 streams 16 independent campaigns into one trace file, which cannot \
                 be reconciled on resume; use --checkpoint without --trace to resume"
                    .into(),
            );
        }
    }
    let mut campaign = Campaign::new(chips_from_env(8));
    campaign.workloads = workloads_from_env();
    campaign.fail_chip = fail_chip_from_env();
    eprintln!(
        "# campaign: {} chips x {} workloads x 16 environment variants (Fuzzy-Dyn)",
        campaign.chips,
        campaign.workloads.len()
    );

    let technique_sets: [(&str, bool, bool); 4] = [
        ("No opt", false, false),
        ("FU opt", true, false),
        ("Queue opt", false, true),
        ("FU+Queue opt", true, true),
    ];

    println!("# Figure 13: controller outcome mix (percent of invocations)");
    println!(
        "{:<14} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "techniques", "environment", "NoChange", "LowFreq", "Error", "Temp", "Power"
    );
    println!("csv,techniques,environment,nochange,lowfreq,error,temp,power");
    for (label, fu, queue) in technique_sets {
        for base in Environment::TABLE2 {
            let env = Environment {
                fu_replication: fu,
                queue,
                ..base
            };
            let result = match &base_ckpt {
                Some(opts) => {
                    let variant = CheckpointOptions {
                        path: format!("{}.{}-{}", opts.path.display(), slug(label), slug(base.name))
                            .into(),
                        resume: opts.resume,
                    };
                    campaign.run_checkpointed(
                        &[env],
                        &[Scheme::FuzzyDyn],
                        session_tracer(&trace),
                        &variant,
                    )?
                }
                None => campaign.run_traced(&[env], &[Scheme::FuzzyDyn], session_tracer(&trace))?,
            };
            for failure in &result.chips_failed {
                eprintln!(
                    "# WARNING: [{label}/{}] chip {} quarantined: {}",
                    base.name, failure.chip, failure.error
                );
            }
            let cell = result.cell(env, Scheme::FuzzyDyn).expect("cell exists");
            let frac = |o: Outcome| 100.0 * cell.outcomes.fraction(o);
            println!(
                "{:<14} {:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                label,
                base.name,
                frac(Outcome::NoChange),
                frac(Outcome::LowFreq),
                frac(Outcome::Error),
                frac(Outcome::Temp),
                frac(Outcome::Power)
            );
            println!(
                "csv,{label},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                base.name,
                frac(Outcome::NoChange),
                frac(Outcome::LowFreq),
                frac(Outcome::Error),
                frac(Outcome::Temp),
                frac(Outcome::Power)
            );
        }
    }
    println!();
    println!("# paper shape: NoChange dominates for TS; NoChange+LowFreq cover ~50%+");
    println!("# of invocations everywhere; Temp cases are infrequent.");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
