//! Figure 13: outcomes of the fuzzy-controller system — for each of the
//! four voltage environments (A: TS, B: TS+ABB, C: TS+ASV, D: TS+ABB+ASV)
//! and each microarchitecture-technique set (no opt / FU opt / Queue opt /
//! FU+Queue opt), the fraction of controller invocations ending in
//! NoChange, LowFreq, Error, Temp or Power.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 8) and `EVAL_WORKLOADS`;
//! `--trace <path>` / `EVAL_TRACE` dumps the JSONL event stream (all 16
//! variant campaigns trace into one file).

use eval_adapt::{Campaign, Outcome, Scheme};
use eval_bench::{chips_from_env, session_tracer, workloads_from_env, TraceSession};
use eval_core::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env();
    let mut campaign = Campaign::new(chips_from_env(8));
    campaign.workloads = workloads_from_env();
    eprintln!(
        "# campaign: {} chips x {} workloads x 16 environment variants (Fuzzy-Dyn)",
        campaign.chips,
        campaign.workloads.len()
    );

    let technique_sets: [(&str, bool, bool); 4] = [
        ("No opt", false, false),
        ("FU opt", true, false),
        ("Queue opt", false, true),
        ("FU+Queue opt", true, true),
    ];

    println!("# Figure 13: controller outcome mix (percent of invocations)");
    println!(
        "{:<14} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "techniques", "environment", "NoChange", "LowFreq", "Error", "Temp", "Power"
    );
    println!("csv,techniques,environment,nochange,lowfreq,error,temp,power");
    for (label, fu, queue) in technique_sets {
        for base in Environment::TABLE2 {
            let env = Environment {
                fu_replication: fu,
                queue,
                ..base
            };
            let result =
                campaign.run_traced(&[env], &[Scheme::FuzzyDyn], session_tracer(&trace))?;
            let cell = result.cell(env, Scheme::FuzzyDyn).expect("cell exists");
            let frac = |o: Outcome| 100.0 * cell.outcomes.fraction(o);
            println!(
                "{:<14} {:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                label,
                base.name,
                frac(Outcome::NoChange),
                frac(Outcome::LowFreq),
                frac(Outcome::Error),
                frac(Outcome::Temp),
                frac(Outcome::Power)
            );
            println!(
                "csv,{label},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                base.name,
                frac(Outcome::NoChange),
                frac(Outcome::LowFreq),
                frac(Outcome::Error),
                frac(Outcome::Temp),
                frac(Outcome::Power)
            );
        }
    }
    println!();
    println!("# paper shape: NoChange dominates for TS; NoChange+LowFreq cover ~50%+");
    println!("# of invocations everywhere; Temp cases are infrequent.");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
