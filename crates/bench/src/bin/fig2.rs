//! Figure 2: tolerating and mitigating variation-induced errors in the
//! EVAL framework.
//!
//! (a) `Perf(f)` with timing speculation: performance peaks at `fopt`
//!     past `fvar`, then dips as `PE * rp` swells;
//! (b) **tilt** — the low-slope replica lowers the slope of `PE(f)`;
//! (c) **shift** — the downsized SRAM moves the curve right;
//! (d) **reshape** — ASV/ABB move the curve's bottom right (boost) or top
//!     left (save power);
//! (e) **adapt** — different phases have different curves.

use eval_core::{EvalConfig, PerfModel};
use eval_timing::{
    low_slope, resize_shift, OperatingConditions, PathClass, StageTiming, SubsystemKind,
};
use eval_units::{GHz, Volts};
use eval_variation::{ChipGrid, VariationModel, VariationParams};

fn main() {
    let config = EvalConfig::micro08();
    let t_nom = config.t_nominal_ns();
    let model = VariationModel::new(ChipGrid::default(), VariationParams::micro08());
    let chip = model.sample_chip(7);
    let device = config.device;
    let cond = OperatingConditions::nominal();

    let class = PathClass::for_kind(SubsystemKind::Mixed);
    let cells: Vec<usize> = (0..12).collect();
    let stage = StageTiming::from_chip(&class, t_nom, &chip, &cells, device, 6);

    // (a) tolerate: Perf(f) with a checker.
    println!("# Figure 2(a): tolerating errors — Perf(f) and PE(f)");
    let perf = PerfModel::new(1.0, 0.004, 52.0, 21.0);
    println!("csv,f_ghz,pe,perf_bips");
    let mut best = (0.0, 0.0);
    for k in 0..=60 {
        let f = 3.0 + 0.04 * k as f64;
        let pe = (0.9 * stage.pe_access(GHz::raw(f), &cond)).clamp(0.0, 1.0);
        let p = perf.perf(f, pe);
        if p > best.1 {
            best = (f, p);
        }
        println!("csv,{f:.2},{pe:.3e},{p:.4}");
    }
    println!("# fopt = {:.2} GHz, peak {:.3} BIPS", best.0, best.1);

    // (b) tilt and (c) shift.
    println!();
    println!("# Figure 2(b,c): tilt (low-slope FU) and shift (resized SRAM)");
    let tilted = stage.with_distribution(low_slope(&stage.distribution()));
    let shifted = stage.with_distribution(resize_shift(&stage.distribution()));
    println!("csv,f_ghz,pe_before,pe_tilt,pe_shift");
    for k in 0..=60 {
        let f = 3.0 + 0.04 * k as f64;
        println!(
            "csv,{f:.2},{:.3e},{:.3e},{:.3e}",
            stage.pe_access(GHz::raw(f), &cond),
            tilted.pe_access(GHz::raw(f), &cond),
            shifted.pe_access(GHz::raw(f), &cond)
        );
    }

    // (d) reshape via ASV: boost vs save.
    println!();
    println!("# Figure 2(d): reshape — ASV boost on slow stage, ASV save on fast stage");
    let boost = OperatingConditions {
        vdd: Volts::raw(1.15),
        ..cond
    };
    let save = OperatingConditions {
        vdd: Volts::raw(0.90),
        ..cond
    };
    println!("csv,f_ghz,pe_nominal,pe_boosted,pe_saving");
    for k in 0..=60 {
        let f = 3.0 + 0.04 * k as f64;
        println!(
            "csv,{f:.2},{:.3e},{:.3e},{:.3e}",
            stage.pe_access(GHz::raw(f), &cond),
            stage.pe_access(GHz::raw(f), &boost),
            stage.pe_access(GHz::raw(f), &save)
        );
    }

    // (e) adapt: the curve depends on the phase's exercise rate.
    println!();
    println!("# Figure 2(e): adaptation — PE per instruction differs across phases");
    println!("csv,f_ghz,pe_hot_phase,pe_cold_phase");
    for k in 0..=60 {
        let f = 3.0 + 0.04 * k as f64;
        let pe = stage.pe_access(GHz::raw(f), &cond);
        println!("csv,{f:.2},{:.3e},{:.3e}", 1.2 * pe, 0.1 * pe);
    }
}
