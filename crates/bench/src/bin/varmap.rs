//! Visualizes a sampled chip's systematic variation maps as ASCII heat
//! maps — the spatially correlated "blobs" of §2.1 are directly visible,
//! and their size tracks the correlation range `phi`.

use eval_variation::{ChipGrid, VariationModel, VariationParams};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008);
    for phi in [0.1, 0.5] {
        let params = VariationParams {
            phi,
            ..VariationParams::micro08()
        };
        let model = VariationModel::new(ChipGrid::default(), params);
        let chip = model.sample_chip(seed);
        println!("# chip {seed}, systematic Vt map, phi = {phi} (dark = high Vt = slow)");
        println!("{}", chip.vt.render_ascii());
        println!(
            "# Vt: mean {:.0} mV, sigma {:.1} mV, range [{:.0}, {:.0}] mV",
            chip.vt.mean() * 1e3,
            chip.vt.std_dev() * 1e3,
            chip.vt.min() * 1e3,
            chip.vt.max() * 1e3
        );
        println!();
    }
}
