//! Figure 12: power per processor (core + L1 + L2, plus checker where one
//! exists) for each environment.
//!
//! Protocol knobs: `EVAL_CHIPS` (default 10) and `EVAL_WORKLOADS`;
//! `--trace <path>` / `EVAL_TRACE` dumps the JSONL event stream;
//! `--checkpoint <path>` / `--resume` make the campaign restartable.

use eval_bench::{
    print_environment_csv, print_environment_matrix, run_figure10_campaign, TraceSession,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSession::from_env()?;
    let result = run_figure10_campaign(10, &trace)?;
    print_environment_matrix(
        "Figure 12: processor power (watts)",
        "W",
        &result,
        |c| c.power_w,
    );
    println!();
    print_environment_csv("power_w", &result, |c| c.power_w);
    println!();
    println!("# paper shape: NoVar ~25 W, Baseline ~17 W (it runs slower); power grows");
    println!("# as techniques are added; the best dynamic scheme rides PMAX = 30 W.");
    if let Some(session) = trace {
        session.finish()?;
    }
    Ok(())
}
