//! Figure 8: subsystem error rates vs frequency and processor performance
//! vs frequency, for `swim` on one sample chip, under `TS` (a, b) and under
//! `TS+ASV+ABB` with per-frequency exhaustive reshaping (c, d).

use eval_adapt::{ExhaustiveOptimizer, Optimizer, SubsystemScene};
use eval_core::{
    ChipFactory, Environment, EvalConfig, OperatingConditions, PerfModel, SubsystemId,
    VariantSelection, N_SUBSYSTEMS,
};
use eval_power::{solve_thermal, OperatingPoint, ThermalEnvironment};
use eval_units::{GHz, Volts};
use eval_uarch::{profile_workload, QueueSize, Workload};

fn main() {
    let config = EvalConfig::micro08();
    let factory = ChipFactory::new(config.clone());
    let chip = factory.chip(2008);
    let core = chip.core(0);
    let w = Workload::by_name("swim").expect("workload exists");
    let profile = profile_workload(&w, 8_000, 2008);
    let ph = &profile.phases[0];
    let perf = PerfModel::new(
        ph.cpi_comp(QueueSize::Full),
        ph.mr,
        ph.mp_ns,
        profile.rp_cycles,
    );
    let novar = perf.perf(config.f_nominal_ghz, 0.0);
    let variants = VariantSelection::default();
    let f_grid: Vec<f64> = (0..=36).map(|k| 2.8 + 0.06 * k as f64).collect();

    // ---------- (a) + (b): TS (nominal voltages) ----------
    println!("# Figure 8(a): subsystem PE vs relative frequency under TS (swim, chip 0)");
    print!("csv,f_rel");
    for id in SubsystemId::ALL {
        print!(",{}", id.name());
    }
    println!();
    let mut perf_ts: Vec<(f64, f64)> = Vec::new();
    for &f in &f_grid {
        print!("csv,{:.3}", f / config.f_nominal_ghz);
        let mut total_pe = 0.0;
        for id in SubsystemId::ALL {
            let state = core.subsystem(id);
            let env = ThermalEnvironment {
                th_c: config.th_c,
                alpha_f: ph.activity.alpha_f[id.index()],
            };
            let op = OperatingPoint::raw(f, 1.0, 0.0);
            let t_c = solve_thermal(&state.power_params(&variants), &env, &op, &config.device)
                .map(|s| s.t_c)
                .unwrap_or(config.constraints.t_max_c);
            let cond = OperatingConditions {
                vdd: Volts::raw(1.0),
                vbb: Volts::raw(0.0),
                t_c,
            };
            let pe = state.timing(&variants).pe_access(GHz::raw(f), &cond);
            total_pe += ph.activity.rho[id.index()] * pe;
            print!(",{pe:.3e}");
        }
        println!();
        perf_ts.push((f, perf.perf(f, total_pe.clamp(0.0, 1.0)) / novar));
    }

    println!();
    println!("# Figure 8(b): relative performance vs relative frequency under TS");
    println!("csv,f_rel,perf_rel");
    let mut best_ts = (0.0f64, 0.0f64);
    for (f, p) in &perf_ts {
        if *p > best_ts.1 {
            best_ts = (*f, *p);
        }
        println!("csv,{:.3},{:.4}", f / config.f_nominal_ghz, p);
    }
    println!(
        "# TS optimum: fR = {:.2}, PerfR = {:.2}   (paper: ~0.91, ~0.92)",
        best_ts.0 / config.f_nominal_ghz,
        best_ts.1
    );

    // ---------- (c) + (d): TS+ASV+ABB with exhaustive reshaping ----------
    println!();
    println!("# Figure 8(c): subsystem PE vs relative frequency under TS+ASV+ABB");
    let oracle = ExhaustiveOptimizer::new();
    let env = Environment::TS_ABB_ASV;
    let pe_budget = config.constraints.pe_budget_per_subsystem(N_SUBSYSTEMS);
    print!("csv,f_rel");
    for id in SubsystemId::ALL {
        print!(",{}", id.name());
    }
    println!(",total_power_w");
    let mut perf_asv: Vec<(f64, f64)> = Vec::new();
    for &f in &f_grid {
        // Per-subsystem reshaping at this frequency (the Power algorithm),
        // then a power-cap pass: if the sum exceeds PMAX, strip the most
        // expensive boosts and let those PE curves "escape up".
        let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new(); // (idx, vdd, vbb, power, pe)
        for id in SubsystemId::ALL {
            let state = core.subsystem(id);
            let scene = SubsystemScene {
                state,
                variants,
                th_c: config.th_c,
                alpha_f: ph.activity.alpha_f[id.index()],
                rho: ph.activity.rho[id.index()].max(1e-3),
                pe_budget,
                env,
            };
            let (vdd, vbb) = oracle.power_settings(&config, &scene, f);
            let (power, pe) = evaluate_at(&config, &scene, f, vdd, vbb);
            if power.is_finite() {
                rows.push((id.index(), vdd, vbb, power, pe));
            } else {
                // Thermally infeasible even at the chosen setting: fall
                // back to nominal so the totals stay meaningful.
                let (p0, pe0) = evaluate_at(&config, &scene, f, 1.0, 0.0);
                rows.push((id.index(), 1.0, 0.0, p0, pe0));
            }
        }
        let uncore = config.uncore_power_w(GHz::raw(f)) + config.checker_w;
        let mut total: f64 = uncore + rows.iter().map(|r| r.3).sum::<f64>();
        // Power-cap pass: revert boosts (most power saved first).
        if total > config.constraints.p_max_w {
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.sort_by(|&a, &b| rows[b].3.total_cmp(&rows[a].3));
            for i in order {
                if total <= config.constraints.p_max_w {
                    break;
                }
                let id = SubsystemId::from_index(rows[i].0);
                let state = core.subsystem(id);
                let scene = SubsystemScene {
                    state,
                    variants,
                    th_c: config.th_c,
                    alpha_f: ph.activity.alpha_f[id.index()],
                    rho: ph.activity.rho[id.index()].max(1e-3),
                    pe_budget,
                    env,
                };
                let (p_cheap, pe_cheap) = evaluate_at(&config, &scene, f, 1.0, 0.0);
                if p_cheap < rows[i].3 {
                    total -= rows[i].3 - p_cheap;
                    rows[i] = (rows[i].0, 1.0, 0.0, p_cheap, pe_cheap);
                }
            }
        }
        print!("csv,{:.3}", f / config.f_nominal_ghz);
        let mut total_pe = 0.0;
        for (idx, _, _, _, pe) in &rows {
            total_pe += ph.activity.rho[*idx] * pe;
            print!(",{pe:.3e}");
        }
        println!(",{total:.1}");
        perf_asv.push((f, perf.perf(f, total_pe.clamp(0.0, 1.0)) / novar));
    }

    println!();
    println!("# Figure 8(d): relative performance vs relative frequency under TS+ASV+ABB");
    println!("csv,f_rel,perf_rel");
    let mut best_asv = (0.0f64, 0.0f64);
    for (f, p) in &perf_asv {
        if *p > best_asv.1 {
            best_asv = (*f, *p);
        }
        println!("csv,{:.3},{:.4}", f / config.f_nominal_ghz, p);
    }
    println!(
        "# TS+ASV+ABB optimum (point A): fR = {:.2}, PerfR = {:.2}   (paper: ~1.03, ~1.00)",
        best_asv.0 / config.f_nominal_ghz,
        best_asv.1
    );
}

/// Subsystem power and per-access PE at a fixed operating point.
fn evaluate_at(
    config: &EvalConfig,
    scene: &SubsystemScene<'_>,
    f: f64,
    vdd: f64,
    vbb: f64,
) -> (f64, f64) {
    let op = OperatingPoint::raw(f, vdd, vbb);
    let env = ThermalEnvironment {
        th_c: scene.th_c,
        alpha_f: scene.alpha_f,
    };
    let params = scene.state.power_params(&scene.variants);
    match solve_thermal(&params, &env, &op, &config.device) {
        Ok(sol) => {
            let cond = OperatingConditions {
                vdd: Volts::raw(vdd),
                vbb: Volts::raw(vbb),
                t_c: sol.t_c,
            };
            (
                sol.total_w(),
                scene.state.timing(&scene.variants).pe_access(GHz::raw(f), &cond),
            )
        }
        Err(_) => (f64::INFINITY, 1.0),
    }
}
