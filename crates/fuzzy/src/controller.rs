//! The fuzzy-controller data structure and its deployment phase.

/// A trained fuzzy controller: `rules x inputs` Gaussian membership
/// parameters plus one output per rule (Figure 5(a) of the paper).
///
/// Deployment implements Equations 10–12:
///
/// ```text
/// W_ij = exp(-((x_j - mu_ij)/sigma_ij)^2)        (membership)
/// W_i  = prod_j W_ij                             (rule firing strength)
/// z    = sum_i W_i y_i / sum_i W_i               (weighted average)
/// ```
///
/// Inference is performed in log space so that queries far from every rule
/// center degrade gracefully to nearest-rule behaviour instead of dividing
/// zero by zero.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyController {
    inputs: usize,
    mu: Vec<f64>,
    sigma: Vec<f64>,
    y: Vec<f64>,
}

impl FuzzyController {
    /// Minimum sigma kept after training updates (avoids degenerate spikes).
    pub const SIGMA_FLOOR: f64 = 1e-3;

    /// Assembles a controller from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent, `inputs` is zero, there
    /// are no rules, or any sigma is not positive.
    pub fn from_parts(inputs: usize, mu: Vec<f64>, sigma: Vec<f64>, y: Vec<f64>) -> Self {
        assert!(inputs > 0, "controller needs at least one input");
        assert!(!y.is_empty(), "controller needs at least one rule");
        assert_eq!(mu.len(), y.len() * inputs, "mu must be rules x inputs");
        assert_eq!(sigma.len(), y.len() * inputs, "sigma must be rules x inputs");
        assert!(
            sigma.iter().all(|&s| s > 0.0),
            "sigmas must be positive"
        );
        Self {
            inputs,
            mu,
            sigma,
            y,
        }
    }

    /// Number of rules.
    pub fn rules(&self) -> usize {
        self.y.len()
    }

    /// Number of inputs per rule.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Rule outputs.
    pub fn outputs(&self) -> &[f64] {
        &self.y
    }

    /// Membership center of rule `i`, input `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn mu_at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rules() && j < self.inputs, "rule/input out of range");
        self.mu[i * self.inputs + j]
    }

    /// Membership width of rule `i`, input `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn sigma_at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rules() && j < self.inputs, "rule/input out of range");
        self.sigma[i * self.inputs + j]
    }

    /// Log firing strength of rule `i` on input `x` (sum of squared
    /// normalized distances, negated).
    fn log_strength(&self, i: usize, x: &[f64]) -> f64 {
        let base = i * self.inputs;
        let mut acc = 0.0;
        for (j, &xj) in x.iter().enumerate().take(self.inputs) {
            let d = (xj - self.mu[base + j]) / self.sigma[base + j];
            acc -= d * d;
        }
        acc
    }

    /// Estimates the output for input vector `x` (the deployment phase).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.inputs()`.
    pub fn infer(&self, x: &[f64]) -> f64 {
        let (z, _) = self.infer_with_strengths(x);
        z
    }

    /// Like [`FuzzyController::infer`] but also returns the normalized rule
    /// weights (useful for training and introspection).
    pub fn infer_with_strengths(&self, x: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(x.len(), self.inputs, "input dimension mismatch");
        let logs: Vec<f64> = (0..self.rules())
            .map(|i| self.log_strength(i, x))
            .collect();
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut weights: Vec<f64> = logs.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        let z = weights
            .iter()
            .zip(self.y.iter())
            .map(|(w, y)| w * y)
            .sum();
        (z, weights)
    }

    /// One stochastic-gradient update toward target `t` for input `x`
    /// (Equation 13 with the gradients of the weighted-average model).
    /// Returns the pre-update squared error.
    pub fn update(&mut self, x: &[f64], t: f64, learning_rate: f64) -> f64 {
        let (d, w) = self.infer_with_strengths(x);
        let err = d - t;
        for (i, &wi) in w.iter().enumerate().take(self.rules()) {
            let base = i * self.inputs;
            let common = 2.0 * err * wi;
            // dE/dy_i = 2 (d - t) * W_i / S
            self.y[i] -= learning_rate * common;
            let spread = self.y[i] - d;
            for (j, &xj) in x.iter().enumerate().take(self.inputs) {
                let mu = self.mu[base + j];
                let sg = self.sigma[base + j];
                let dx = xj - mu;
                // dE/dmu = 2 (d-t) (y_i - d)/S * W_i * 2 dx / sigma^2
                let g_mu = common * spread * 2.0 * dx / (sg * sg);
                // dE/dsigma = same * dx / sigma (extra factor dx/sigma)
                let g_sg = g_mu * dx / sg;
                self.mu[base + j] -= learning_rate * g_mu;
                self.sigma[base + j] =
                    (sg - learning_rate * g_sg).max(Self::SIGMA_FLOOR);
            }
        }
        err * err
    }

    /// Root-mean-square inference error over a labeled set.
    pub fn rms_error(&self, examples: &[(Vec<f64>, f64)]) -> f64 {
        assert!(!examples.is_empty(), "need at least one example");
        let sse: f64 = examples
            .iter()
            .map(|(x, t)| {
                let d = self.infer(x) - t;
                d * d
            })
            .sum();
        (sse / examples.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_rule(mu: f64, y: f64) -> FuzzyController {
        FuzzyController::from_parts(1, vec![mu], vec![0.5], vec![y])
    }

    #[test]
    fn one_rule_always_answers_its_output() {
        let fc = single_rule(0.3, 7.5);
        assert!((fc.infer(&[0.3]) - 7.5).abs() < 1e-12);
        assert!((fc.infer(&[100.0]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn two_rules_interpolate() {
        let fc = FuzzyController::from_parts(
            1,
            vec![0.0, 1.0],
            vec![0.3, 0.3],
            vec![0.0, 10.0],
        );
        let mid = fc.infer(&[0.5]);
        assert!((mid - 5.0).abs() < 1e-9, "midpoint = {mid}");
        assert!(fc.infer(&[0.1]) < 2.0);
        assert!(fc.infer(&[0.9]) > 8.0);
    }

    #[test]
    fn far_query_snaps_to_nearest_rule() {
        let fc = FuzzyController::from_parts(
            1,
            vec![0.0, 1.0],
            vec![0.05, 0.05],
            vec![-1.0, 1.0],
        );
        // 50 sigmas away from both centers: log-space evaluation must not NaN.
        let z = fc.infer(&[3.5]);
        assert!(z.is_finite());
        assert!((z - 1.0).abs() < 1e-6, "nearest rule should dominate: {z}");
    }

    #[test]
    fn update_reduces_error_on_repeated_presentation() {
        let mut fc = FuzzyController::from_parts(
            2,
            vec![0.2, 0.2, 0.8, 0.8],
            vec![0.2, 0.2, 0.2, 0.2],
            vec![0.0, 0.0],
        );
        let x = vec![0.5, 0.5];
        let first = fc.update(&x, 4.0, 0.04);
        for _ in 0..200 {
            fc.update(&x, 4.0, 0.04);
        }
        let last = (fc.infer(&x) - 4.0).powi(2);
        assert!(last < first * 0.01, "first {first}, last {last}");
    }

    #[test]
    fn sigma_never_collapses() {
        let mut fc = single_rule(0.5, 0.0);
        for _ in 0..10_000 {
            fc.update(&[0.500001], 100.0, 0.5);
        }
        // All sigmas still at or above the floor.
        assert!(fc.sigma.iter().all(|&s| s >= FuzzyController::SIGMA_FLOOR));
    }

    #[test]
    #[should_panic(expected = "rules x inputs")]
    fn dimension_mismatch_is_rejected() {
        FuzzyController::from_parts(2, vec![0.0; 3], vec![1.0; 4], vec![0.0; 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Inference is always finite and within the convex hull of the
        /// rule outputs (a weighted average cannot extrapolate).
        #[test]
        fn prop_inference_is_bounded_by_rule_outputs(
            mu in proptest::collection::vec(-2.0f64..2.0, 6),
            sigma in proptest::collection::vec(0.01f64..1.0, 6),
            y in proptest::collection::vec(-10.0f64..10.0, 3),
            x in proptest::collection::vec(-5.0f64..5.0, 2),
        ) {
            let fc = FuzzyController::from_parts(2, mu, sigma, y.clone());
            let z = fc.infer(&x);
            prop_assert!(z.is_finite());
            let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(z >= lo - 1e-9 && z <= hi + 1e-9, "{z} outside [{lo}, {hi}]");
        }

        /// Normalized rule weights sum to one.
        #[test]
        fn prop_weights_are_a_distribution(
            mu in proptest::collection::vec(-1.0f64..1.0, 8),
            x in proptest::collection::vec(-3.0f64..3.0, 2),
        ) {
            let fc = FuzzyController::from_parts(
                2, mu, vec![0.3; 8], vec![0.0, 1.0, 2.0, 3.0],
            );
            let (_, w) = fc.infer_with_strengths(&x);
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&wi| (0.0..=1.0 + 1e-12).contains(&wi)));
        }
    }
}
