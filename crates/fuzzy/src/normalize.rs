//! Input/output normalization for fuzzy training.
//!
//! The controller's Gaussian memberships are initialized with sigmas below
//! 0.1, which presumes inputs on a unit-ish scale. Raw EVAL inputs span
//! wildly different units (Celsius, C/W, watts, volts), so both sides are
//! mapped to `[0, 1]` before training and inference.

/// An affine `[min, max] -> [0, 1]` mapper for input vectors (plus the
/// scalar output).
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    out_min: f64,
    out_max: f64,
}

impl Normalizer {
    /// Fits the ranges of a labeled example set.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty or dimensions are inconsistent.
    pub fn fit(examples: &[(Vec<f64>, f64)]) -> Self {
        assert!(!examples.is_empty(), "cannot fit an empty example set");
        let dim = examples[0].0.len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        let mut out_min = f64::INFINITY;
        let mut out_max = f64::NEG_INFINITY;
        for (x, t) in examples {
            assert_eq!(x.len(), dim, "inconsistent example dimensions");
            for (j, &v) in x.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
            out_min = out_min.min(*t);
            out_max = out_max.max(*t);
        }
        Self {
            mins,
            maxs,
            out_min,
            out_max,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Maps an input vector into the unit cube (constant dimensions map
    /// to 0.5). Values outside the fitted range extrapolate linearly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "input dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(j, &v)| {
                let span = self.maxs[j] - self.mins[j];
                if span <= 0.0 {
                    0.5
                } else {
                    (v - self.mins[j]) / span
                }
            })
            .collect()
    }

    /// Maps a raw output into `[0, 1]`.
    pub fn normalize_output(&self, t: f64) -> f64 {
        let span = self.out_max - self.out_min;
        if span <= 0.0 {
            0.5
        } else {
            (t - self.out_min) / span
        }
    }

    /// Inverse of [`Normalizer::normalize_output`].
    pub fn denormalize_output(&self, z: f64) -> f64 {
        let span = self.out_max - self.out_min;
        if span <= 0.0 {
            self.out_min
        } else {
            self.out_min + z * span
        }
    }

    /// Applies normalization to a whole example set.
    pub fn apply(&self, examples: &[(Vec<f64>, f64)]) -> Vec<(Vec<f64>, f64)> {
        examples
            .iter()
            .map(|(x, t)| (self.normalize(x), self.normalize_output(*t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(Vec<f64>, f64)> {
        vec![
            (vec![50.0, 0.001], 2.4),
            (vec![70.0, 0.009], 5.6),
            (vec![60.0, 0.004], 4.0),
        ]
    }

    #[test]
    fn normalization_maps_extremes_to_unit_interval() {
        let n = Normalizer::fit(&examples());
        assert_eq!(n.normalize(&[50.0, 0.001]), vec![0.0, 0.0]);
        assert_eq!(n.normalize(&[70.0, 0.009]), vec![1.0, 1.0]);
        assert_eq!(n.normalize_output(2.4), 0.0);
        assert_eq!(n.normalize_output(5.6), 1.0);
    }

    #[test]
    fn output_roundtrips() {
        let n = Normalizer::fit(&examples());
        for t in [2.4, 3.3, 5.6] {
            let back = n.denormalize_output(n.normalize_output(t));
            assert!((back - t).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let ex = vec![(vec![3.0, 1.0], 0.0), (vec![3.0, 2.0], 1.0)];
        let n = Normalizer::fit(&ex);
        assert_eq!(n.normalize(&[3.0, 1.5])[0], 0.5);
    }

    #[test]
    fn apply_normalizes_everything() {
        let n = Normalizer::fit(&examples());
        let out = n.apply(&examples());
        for (x, t) in out {
            assert!(x.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
            assert!((-1e-9..=1.0 + 1e-9).contains(&t));
        }
    }
}
