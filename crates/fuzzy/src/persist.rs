//! Persistence for trained controllers.
//!
//! The paper stores the trained rule matrices in "a reserved memory area"
//! (~120 KB for the whole controller system, §5). This module provides an
//! equivalent: a small, versioned, human-readable text format for saving
//! and restoring [`FuzzyController`]s, so manufacturer-site training and
//! deployment can live in different processes.
//!
//! The format is line-oriented:
//!
//! ```text
//! fuzzy-controller v1
//! rules <n> inputs <m>
//! mu <m floats>        (n lines)
//! sigma <m floats>     (n lines)
//! y <n floats>
//! ```

use std::fmt;
use std::num::ParseFloatError;

use crate::controller::FuzzyController;

/// Error while parsing a serialized controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The header line is missing or has the wrong version.
    BadHeader,
    /// A section is missing or truncated.
    UnexpectedEnd {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// The declared dimensions are invalid (zero rules/inputs, or a row
    /// has the wrong arity).
    BadDimensions,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "missing or unsupported header"),
            PersistError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input while reading {expected}")
            }
            PersistError::BadNumber { token } => write!(f, "invalid number {token:?}"),
            PersistError::BadDimensions => write!(f, "invalid controller dimensions"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<ParseFloatError> for PersistError {
    fn from(_: ParseFloatError) -> Self {
        PersistError::BadNumber {
            token: String::new(),
        }
    }
}

fn parse_floats(line: &str, want: usize) -> Result<Vec<f64>, PersistError> {
    let vals: Result<Vec<f64>, _> = line
        .split_whitespace()
        .map(|t| {
            t.parse::<f64>().map_err(|_| PersistError::BadNumber {
                token: t.to_string(),
            })
        })
        .collect();
    let vals = vals?;
    if vals.len() != want {
        return Err(PersistError::BadDimensions);
    }
    Ok(vals)
}

impl FuzzyController {
    /// Serializes the controller to the v1 text format.
    ///
    /// Uses full-precision hex-free decimal (`{:e}`) so a round trip is
    /// bit-exact for finite values.
    pub fn to_text(&self) -> String {
        let n = self.rules();
        let m = self.inputs();
        let mut out = String::with_capacity(64 + n * m * 26);
        out.push_str("fuzzy-controller v1\n");
        out.push_str(&format!("rules {n} inputs {m}\n"));
        let dump_matrix = |out: &mut String, name: &str, get: &dyn Fn(usize, usize) -> f64| {
            for i in 0..n {
                out.push_str(name);
                for j in 0..m {
                    out.push_str(&format!(" {:e}", get(i, j)));
                }
                out.push('\n');
            }
        };
        dump_matrix(&mut out, "mu", &|i, j| self.mu_at(i, j));
        dump_matrix(&mut out, "sigma", &|i, j| self.sigma_at(i, j));
        out.push('y');
        for i in 0..n {
            out.push_str(&format!(" {:e}", self.outputs()[i]));
        }
        out.push('\n');
        out
    }

    /// Parses a controller from the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on malformed input.
    pub fn from_text(text: &str) -> Result<FuzzyController, PersistError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or(PersistError::BadHeader)?;
        if header.trim() != "fuzzy-controller v1" {
            return Err(PersistError::BadHeader);
        }
        let dims = lines.next().ok_or(PersistError::UnexpectedEnd {
            expected: "dimensions",
        })?;
        let mut it = dims.split_whitespace();
        let (n, m) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some("rules"), Some(n), Some("inputs"), Some(m)) => (
                n.parse::<usize>().map_err(|_| PersistError::BadDimensions)?,
                m.parse::<usize>().map_err(|_| PersistError::BadDimensions)?,
            ),
            _ => return Err(PersistError::BadDimensions),
        };
        if n == 0 || m == 0 {
            return Err(PersistError::BadDimensions);
        }
        let mut read_matrix = |prefix: &'static str| -> Result<Vec<f64>, PersistError> {
            let mut data = Vec::with_capacity(n * m);
            for _ in 0..n {
                let line = lines.next().ok_or(PersistError::UnexpectedEnd {
                    expected: prefix,
                })?;
                let rest = line
                    .strip_prefix(prefix)
                    .ok_or(PersistError::UnexpectedEnd { expected: prefix })?;
                data.extend(parse_floats(rest, m)?);
            }
            Ok(data)
        };
        let mu = read_matrix("mu")?;
        let sigma = read_matrix("sigma")?;
        let y_line = lines.next().ok_or(PersistError::UnexpectedEnd {
            expected: "outputs",
        })?;
        let rest = y_line
            .strip_prefix('y')
            .ok_or(PersistError::UnexpectedEnd { expected: "outputs" })?;
        let y = parse_floats(rest, n)?;
        if !sigma.iter().all(|&s| s > 0.0) {
            return Err(PersistError::BadDimensions);
        }
        Ok(FuzzyController::from_parts(m, mu, sigma, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainingConfig;

    fn trained() -> FuzzyController {
        let examples: Vec<(Vec<f64>, f64)> = (0..300)
            .map(|i| {
                let a = (i % 20) as f64 / 19.0;
                let b = ((i / 20) % 15) as f64 / 14.0;
                (vec![a, b], a * 0.5 + b * b)
            })
            .collect();
        FuzzyController::train(&examples, &TrainingConfig::micro08(), 3).expect("trains")
    }

    #[test]
    fn round_trip_is_exact() {
        let fc = trained();
        let text = fc.to_text();
        let back = FuzzyController::from_text(&text).expect("parses");
        assert_eq!(fc, back);
        // And behaves identically.
        for x in [[0.1, 0.9], [0.5, 0.5], [0.99, 0.01]] {
            assert_eq!(fc.infer(&x), back.infer(&x));
        }
    }

    #[test]
    fn footprint_matches_papers_budget() {
        // The paper's whole controller system fits in ~120 KB; one of our
        // 25-rule controllers must be a small fraction of that.
        let text = trained().to_text();
        assert!(
            text.len() < 8 * 1024,
            "serialized controller is {} bytes",
            text.len()
        );
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            FuzzyController::from_text("fuzzy-controller v9\n"),
            Err(PersistError::BadHeader)
        );
        assert_eq!(FuzzyController::from_text(""), Err(PersistError::BadHeader));
    }

    #[test]
    fn rejects_truncation() {
        let fc = trained();
        let text = fc.to_text();
        let cut = &text[..text.len() / 2];
        assert!(FuzzyController::from_text(cut).is_err());
    }

    #[test]
    fn rejects_garbage_numbers() {
        let fc = trained();
        let text = fc.to_text().replacen("mu ", "mu xyz ", 1);
        assert!(matches!(
            FuzzyController::from_text(&text),
            Err(PersistError::BadNumber { .. }) | Err(PersistError::BadDimensions)
        ));
    }

    #[test]
    fn rejects_nonpositive_sigma() {
        let mut text = String::from("fuzzy-controller v1\nrules 1 inputs 1\n");
        text.push_str("mu 0.5\nsigma 0\ny 1.0\n");
        assert_eq!(
            FuzzyController::from_text(&text),
            Err(PersistError::BadDimensions)
        );
    }
}
