//! Training phase (Appendix A of the paper).

use std::fmt;

use eval_rng::ChaCha12Rng;

use crate::controller::FuzzyController;

/// Hyper-parameters of the training phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Number of fuzzy rules (matrix rows).
    pub rules: usize,
    /// Learning rate `alpha` of Equation 13.
    pub learning_rate: f64,
    /// Passes over the training set.
    pub epochs: usize,
}

impl TrainingConfig {
    /// The paper's settings: 25 rules, `alpha` = 0.04. The paper streams
    /// 10 000 examples once; with the smaller synthetic training sets used
    /// here we take a few passes, which is equivalent in update count.
    pub fn micro08() -> Self {
        Self {
            rules: 25,
            learning_rate: 0.04,
            epochs: 6,
        }
    }
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self::micro08()
    }
}

/// Training failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// Fewer examples than rules: the rule matrix cannot be seeded.
    NotEnoughExamples {
        /// Examples provided.
        got: usize,
        /// Rules requested.
        need: usize,
    },
    /// Examples disagree on input dimensionality.
    DimensionMismatch,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NotEnoughExamples { got, need } => {
                write!(f, "need at least {need} training examples, got {got}")
            }
            TrainError::DimensionMismatch => {
                write!(f, "training examples have inconsistent input dimensions")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl FuzzyController {
    /// Trains a controller on `(input, output)` examples.
    ///
    /// Initialization follows the paper: the first `rules` examples seed
    /// `mu` with their inputs and `y` with their outputs, `sigma` gets small
    /// random values (< 0.1); the remaining examples run the gradient
    /// update, for `config.epochs` passes. Deterministic in `seed`.
    ///
    /// Inputs should be normalized to roughly `[0, 1]` (see
    /// [`crate::Normalizer`]) so that the sigma initialization is sensible.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if there are fewer examples than rules or the
    /// example dimensions are inconsistent.
    pub fn train(
        examples: &[(Vec<f64>, f64)],
        config: &TrainingConfig,
        seed: u64,
    ) -> Result<FuzzyController, TrainError> {
        if examples.len() < config.rules {
            return Err(TrainError::NotEnoughExamples {
                got: examples.len(),
                need: config.rules,
            });
        }
        let inputs = examples[0].0.len();
        if inputs == 0 || examples.iter().any(|(x, _)| x.len() != inputs) {
            return Err(TrainError::DimensionMismatch);
        }
        let mut rng = ChaCha12Rng::seed_from_u64(seed);

        // Seed rules spread across the example set (striding rather than
        // taking a prefix avoids seeding all rules from one corner when the
        // examples are sorted).
        let stride = examples.len() / config.rules;
        let mut mu = Vec::with_capacity(config.rules * inputs);
        let mut sigma = Vec::with_capacity(config.rules * inputs);
        let mut y = Vec::with_capacity(config.rules);
        for r in 0..config.rules {
            let (x, t) = &examples[r * stride];
            mu.extend_from_slice(x);
            for _ in 0..inputs {
                sigma.push(rng.gen_range(0.05..0.1));
            }
            y.push(*t);
        }
        let mut fc = FuzzyController::from_parts(inputs, mu, sigma, y);

        // Gradient passes in a shuffled order.
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for _ in 0..config.epochs {
            // Fisher-Yates with the deterministic stream.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &k in &order {
                let (x, t) = &examples[k];
                fc.update(x, *t, config.learning_rate);
            }
        }
        Ok(fc)
    }

    /// [`FuzzyController::train`] with a [`FuzzyTrained`](eval_trace::Event::FuzzyTrained)
    /// event on success (rule count, example count, epochs, final
    /// training-set RMS).
    ///
    /// # Errors
    ///
    /// Same as [`FuzzyController::train`].
    pub fn train_traced(
        examples: &[(Vec<f64>, f64)],
        config: &TrainingConfig,
        seed: u64,
        tracer: eval_trace::Tracer<'_>,
    ) -> Result<FuzzyController, TrainError> {
        let _span = tracer.span("train-matrix");
        let fc = FuzzyController::train(examples, config, seed)?;
        tracer.count(eval_trace::names::FUZZY_MATRICES_TRAINED);
        tracer.event(|| eval_trace::Event::FuzzyTrained {
            rules: config.rules as u64,
            examples: examples.len() as u64,
            epochs: config.epochs as u64,
            rms: fc.rms_error(examples),
        });
        Ok(fc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_examples<F: Fn(f64, f64) -> f64>(f: F) -> Vec<(Vec<f64>, f64)> {
        let mut out = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                let x0 = i as f64 / 39.0;
                let x1 = j as f64 / 39.0;
                out.push((vec![x0, x1], f(x0, x1)));
            }
        }
        out
    }

    #[test]
    fn learns_a_linear_function() {
        let ex = grid_examples(|a, b| 2.0 * a - b + 0.5);
        let fc = FuzzyController::train(&ex, &TrainingConfig::micro08(), 1).unwrap();
        assert!(fc.rms_error(&ex) < 0.08, "rms = {}", fc.rms_error(&ex));
    }

    #[test]
    fn learns_a_nonlinear_function() {
        // The motivating case for fuzzy control: outputs that are not a
        // linear function of the inputs (Appendix A).
        let ex = grid_examples(|a, b| (3.0 * a).sin() * 0.5 + b * b);
        let fc = FuzzyController::train(&ex, &TrainingConfig::micro08(), 2).unwrap();
        assert!(fc.rms_error(&ex) < 0.10, "rms = {}", fc.rms_error(&ex));
    }

    #[test]
    fn training_reduces_error_versus_seed_rules_only() {
        let ex = grid_examples(|a, b| a * b);
        let cfg = TrainingConfig::micro08();
        let untrained = FuzzyController::train(
            &ex,
            &TrainingConfig {
                epochs: 0,
                ..cfg
            },
            3,
        )
        .unwrap();
        let trained = FuzzyController::train(&ex, &cfg, 3).unwrap();
        assert!(trained.rms_error(&ex) < untrained.rms_error(&ex));
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let ex = grid_examples(|a, b| a + b);
        let cfg = TrainingConfig::micro08();
        let a = FuzzyController::train(&ex, &cfg, 9).unwrap();
        let b = FuzzyController::train(&ex, &cfg, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_training_matches_untraced_and_emits_event() {
        let ex = grid_examples(|a, b| a + b);
        let cfg = TrainingConfig::micro08();
        let collector = eval_trace::Collector::new();
        let traced =
            FuzzyController::train_traced(&ex, &cfg, 9, eval_trace::Tracer::new(&collector))
                .unwrap();
        let plain = FuzzyController::train(&ex, &cfg, 9).unwrap();
        assert_eq!(traced, plain);
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            eval_trace::Event::FuzzyTrained { rules: 25, epochs: 6, .. }
        ));
        assert_eq!(collector.registry().counter("fuzzy.matrices_trained"), 1);
    }

    #[test]
    fn too_few_examples_is_an_error() {
        let ex = vec![(vec![0.0], 0.0); 10];
        let err = FuzzyController::train(&ex, &TrainingConfig::micro08(), 0).unwrap_err();
        assert!(matches!(err, TrainError::NotEnoughExamples { got: 10, need: 25 }));
    }

    #[test]
    fn inconsistent_dimensions_are_an_error() {
        let mut ex = vec![(vec![0.0, 0.0], 0.0); 30];
        ex[7] = (vec![0.0], 0.0);
        let err = FuzzyController::train(&ex, &TrainingConfig::micro08(), 0).unwrap_err();
        assert_eq!(err, TrainError::DimensionMismatch);
    }
}
