//! Smoke example for the tier-1 gate: exercises the full collect →
//! JSONL → summary path on a synthetic event stream and verifies the
//! determinism contract on the event lines.
//!
//! Run with `cargo run -p eval-trace --example summary`.

use eval_trace::{Collector, DecisionEvent, Event, RejectedCandidate, Tracer};

fn emit(tracer: Tracer<'_>) {
    let _campaign = tracer.span("campaign");
    tracer.event(|| Event::CampaignStart {
        chips: 2,
        workloads: 1,
        cells: 2,
    });
    for chip in 0..2u64 {
        let _chip = tracer.span("chip");
        tracer.event(|| Event::PhaseDetected {
            phase_id: chip as u32,
            recurring: chip == 1,
        });
        tracer.count(if chip == 1 { "cache.hit" } else { "cache.miss" });
        let _timer = tracer.timer("decision.latency_us");
        tracer.observe("decision.f_ghz", 4.0 + 0.25 * chip as f64);
        tracer.event(|| {
            Event::Decision(Box::new(DecisionEvent {
                scheme: "exhaustive",
                env: "TS+ASV",
                workload: "swim",
                phase: chip,
                f_ghz: 4.0 + 0.25 * chip as f64,
                settings: vec![(1.0, 0.0), (0.95, -0.1)],
                int_fu: "normal",
                fp_fu: "normal",
                int_queue: "full",
                fp_queue: "full",
                outcome: "NoChange",
                binding: "error-rate",
                retune_steps: 1,
                rejected: vec![RejectedCandidate {
                    f_ghz: 4.5,
                    violation: "Error",
                }],
                pe_per_instruction: 1e-5,
                power_w: 27.5,
                max_t_c: 80.0,
                perf_bips: 3.0,
                cpi_comp: 1.0,
                cpi_mem: 0.4,
                cpi_recovery: 0.01,
            }))
        });
    }
}

fn main() {
    // Two independent collectors fed the same synthetic stream must agree
    // byte-for-byte on the event lines (the golden contract).
    let a = Collector::new();
    let b = Collector::new();
    emit(Tracer::new(&a));
    emit(Tracer::new(&b));
    assert_eq!(a.event_lines(), b.event_lines(), "event lines must be deterministic");

    let jsonl = a.jsonl();
    assert!(jsonl.lines().count() >= 5, "expected a non-trivial stream");
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
    }

    println!("{}", a.summary());
    println!("eval-trace smoke: {} JSONL lines OK", jsonl.lines().count());
}
