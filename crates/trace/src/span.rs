//! Hierarchical spans with monotonic timing, for profiling campaign hot
//! paths (chip → workload → phase → optimizer).
//!
//! A span's *path* is the `/`-joined chain of active span names on the
//! current thread, so nesting needs no plumbing: `campaign` opened on the
//! main thread, `chip` opened inside it, and `decide` inside that report
//! as `campaign/chip/decide`. Worker threads start their own chains with
//! whatever root name the code opens there.
//!
//! Span durations come from [`std::time::Instant`] — deliberately
//! wall-clock, never part of the deterministic payload contract. When the
//! tracer is disabled, opening a span touches neither the clock nor the
//! thread-local stack.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::sink::{Record, TraceSink};

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one active span. Created by
/// [`crate::sink::Tracer::span`]; records its path and elapsed time on
/// drop.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

struct ActiveSpan<'a> {
    sink: &'a dyn TraceSink,
    path: String,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// A disabled guard (no clock, no stack, no record).
    pub(crate) fn noop() -> Self {
        Self { active: None }
    }

    pub(crate) fn enter(sink: &'a dyn TraceSink, name: &'static str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        Self {
            active: Some(ActiveSpan {
                sink,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// The full path of this span (`None` when disabled).
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.path.as_str())
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let nanos = active.start.elapsed().as_nanos();
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            active.sink.record(Record::Span {
                path: active.path,
                nanos,
            });
        }
    }
}

/// RAII guard that records its elapsed time (in microseconds) into a
/// latency histogram on drop. Created by [`crate::sink::Tracer::timer`].
#[must_use = "a timer measures the scope it is bound to; bind it to a variable"]
pub struct TimerGuard<'a> {
    active: Option<(&'a dyn TraceSink, &'static str, Instant)>,
}

impl<'a> TimerGuard<'a> {
    pub(crate) fn noop() -> Self {
        Self { active: None }
    }

    pub(crate) fn start(sink: &'a dyn TraceSink, name: &'static str) -> Self {
        Self {
            active: Some((sink, name, Instant::now())),
        }
    }
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, name, start)) = self.active.take() {
            let us = start.elapsed().as_secs_f64() * 1e6;
            sink.record(Record::Metric(crate::metrics::MetricUpdate::Observe(
                name.into(),
                us,
            )));
        }
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_ns: u128,
}

impl SpanStat {
    /// Merges one completed span.
    pub fn add(&mut self, nanos: u128) {
        self.count += 1;
        self.total_ns += nanos;
    }
}

/// The per-span self/total time report.
///
/// *Total* is the wall time spent inside spans at that path; *self* is
/// total minus the total of direct children. With parallel children
/// (chips fan out across worker threads) the children's sum can exceed
/// the parent's wall time, in which case self clamps to zero.
pub fn span_report(spans: &BTreeMap<String, SpanStat>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if spans.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>12} {:>12}",
        "span", "count", "total(ms)", "self(ms)"
    );
    for (path, stat) in spans {
        let children_ns: u128 = spans
            .iter()
            .filter(|(p, _)| is_direct_child(path, p))
            .map(|(_, s)| s.total_ns)
            .sum();
        let self_ns = stat.total_ns.saturating_sub(children_ns);
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>12.3} {:>12.3}",
            path,
            stat.count,
            stat.total_ns as f64 / 1e6,
            self_ns as f64 / 1e6,
        );
    }
    out
}

/// True when `candidate` is exactly one level below `path`.
fn is_direct_child(path: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(path)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|tail| !tail.is_empty() && !tail.contains('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_child_detection() {
        assert!(is_direct_child("a", "a/b"));
        assert!(!is_direct_child("a", "a/b/c"));
        assert!(!is_direct_child("a", "ab"));
        assert!(!is_direct_child("a", "a"));
    }

    #[test]
    fn report_computes_self_time_and_clamps_parallel_children() {
        let mut spans = BTreeMap::new();
        spans.insert(
            "campaign".to_string(),
            SpanStat {
                count: 1,
                total_ns: 10_000_000,
            },
        );
        spans.insert(
            "campaign/chip".to_string(),
            SpanStat {
                count: 4,
                total_ns: 8_000_000,
            },
        );
        spans.insert(
            "campaign/chip/decide".to_string(),
            SpanStat {
                count: 40,
                total_ns: 9_000_000, // parallel children exceed the parent
            },
        );
        let report = span_report(&spans);
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[0].contains("self(ms)"));
        // campaign: self = 10ms - 8ms = 2ms.
        assert!(lines[1].contains("2.000"), "{report}");
        // campaign/chip: children exceed total -> clamps to 0.
        assert!(lines[2].contains("0.000"), "{report}");
    }
}
