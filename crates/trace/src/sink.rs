//! Sinks and the zero-cost [`Tracer`] handle.
//!
//! Instrumented code holds a [`Tracer`], a `Copy` wrapper over
//! `Option<&dyn TraceSink>`. With the default [`Tracer::noop`], every
//! call site reduces to a branch on `None` — no event is constructed,
//! no clock is read, no lock is taken. Event payloads are built inside
//! closures so the disabled path never allocates.
//!
//! Two sinks ship with the crate:
//!
//! * [`Collector`] — the terminal sink: aggregates events, metrics, and
//!   span statistics, and renders JSONL plus the end-of-run summary.
//! * [`BufferSink`] — a per-worker buffer for parallel sections. Each
//!   worker records into its own buffer; after joining, the caller
//!   replays the buffers in a fixed order (chip index) into the main
//!   sink, making the merged stream independent of thread count and
//!   schedule.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use crate::artifact::write_atomic;
use crate::event::Event;
use crate::json::JsonObject;
use crate::metrics::{MetricUpdate, Registry};
use crate::names;
use crate::span::{span_report, SpanGuard, SpanStat, TimerGuard};

/// One trace record, as delivered to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A structured event — fully deterministic payload.
    Event(Event),
    /// A metric mutation.
    Metric(MetricUpdate),
    /// A completed span (wall-clock; excluded from the golden contract).
    Span {
        /// `/`-joined span path.
        path: String,
        /// Elapsed nanoseconds.
        nanos: u128,
    },
}

/// Receives trace records. Implementations must be `Sync`: the campaign
/// fans chips out across scoped threads and each worker holds the same
/// sink reference (or its own [`BufferSink`]).
pub trait TraceSink: Sync {
    /// Accepts one record.
    fn record(&self, rec: Record);

    /// Flushes buffered output to its backing store. In-memory sinks
    /// have nothing to do; streaming sinks push pending bytes to disk.
    /// Called at the end of every [`Tracer::replay`], i.e. once per
    /// committed chip, so a crash loses at most the chip in flight.
    fn flush(&self) {}
}

/// A cheap, copyable handle to an optional sink.
#[derive(Clone, Copy)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// The disabled tracer — every operation is a no-op.
    pub const NOOP: Tracer<'static> = Tracer { sink: None };

    /// The disabled tracer (const-free convenience for any lifetime).
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// A tracer forwarding to `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether records are being collected. Use to skip expensive
    /// evidence-gathering (e.g. retune probe lists) when disabled.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event; `build` runs only when enabled.
    pub fn event(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = self.sink {
            sink.record(Record::Event(build()));
        }
    }

    /// Increments a counter by 1.
    pub fn count(&self, name: &'static str) {
        self.count_n(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn count_n(&self, name: &'static str, n: u64) {
        if let Some(sink) = self.sink {
            sink.record(Record::Metric(MetricUpdate::CounterAdd(name.into(), n)));
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &'static str, v: f64) {
        if let Some(sink) = self.sink {
            sink.record(Record::Metric(MetricUpdate::GaugeSet(name.into(), v)));
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &'static str, v: f64) {
        if let Some(sink) = self.sink {
            sink.record(Record::Metric(MetricUpdate::Observe(name.into(), v)));
        }
    }

    /// Opens a hierarchical span; its wall time is recorded on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        match self.sink {
            Some(sink) => SpanGuard::enter(sink, name),
            None => SpanGuard::noop(),
        }
    }

    /// Starts a latency timer that observes its elapsed microseconds
    /// into the `name` histogram on drop. Name it `*_us` so it is
    /// excluded from the golden determinism contract.
    pub fn timer(&self, name: &'static str) -> TimerGuard<'a> {
        match self.sink {
            Some(sink) => TimerGuard::start(sink, name),
            None => TimerGuard::noop(),
        }
    }

    /// Forwards pre-recorded records (from a [`BufferSink`]) in order,
    /// then flushes the sink so a streaming sink persists the batch.
    pub fn replay(&self, records: Vec<Record>) {
        if let Some(sink) = self.sink {
            for rec in records {
                sink.record(rec);
            }
            sink.flush();
        }
    }
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[derive(Debug, Default)]
struct CollectorInner {
    events: Vec<Event>,
    registry: Registry,
    spans: BTreeMap<String, SpanStat>,
}

/// The terminal sink: aggregates everything in memory, then renders
/// JSONL and a human-readable summary.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<CollectorInner>,
}

/// Bucket boundaries for the chosen-frequency histogram: the f ladder
/// the retuning loop walks, in 250 MHz steps over the plausible range.
const F_GHZ_BOUNDS: [f64; 13] = [
    2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0,
];

/// Bucket boundaries for error rates at the chosen point (decades around
/// the PEMAX=1e-4 constraint).
const PE_BOUNDS: [f64; 8] = [1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// Bucket boundaries for the decision-latency timers, microseconds:
/// 1-2.5-5 steps over the observed 10 µs – 100 ms range, fine enough for
/// meaningful p50/p95/p99 interpolation in `eval-obs analyze`.
const LATENCY_US_BOUNDS: [f64; 13] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0,
    50_000.0, 100_000.0,
];

/// The decision-latency timer names: the aggregate plus one per scheme
/// (`*_us` suffix keeps them outside the golden determinism contract).
const LATENCY_METRICS: [&str; 5] = [
    names::DECISION_LATENCY_US,
    names::DECISION_LATENCY_STATIC_US,
    names::DECISION_LATENCY_FUZZY_US,
    names::DECISION_LATENCY_EXHAUSTIVE_US,
    names::DECISION_LATENCY_GLOBAL_DVFS_US,
];

/// The registry every terminal sink starts from: the EVAL-specific
/// histograms pre-registered with their fixed boundaries. Shared by
/// [`Collector`] and [`crate::stream::StreamingJsonl`] so both render
/// byte-identical metric snapshot lines (pre-registered-but-empty
/// histograms appear in the snapshot).
pub fn default_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register_histogram(names::DECISION_F_GHZ, &F_GHZ_BOUNDS);
    registry.register_histogram(names::DECISION_PE_PER_INSTRUCTION, &PE_BOUNDS);
    for name in LATENCY_METRICS {
        registry.register_histogram(name, &LATENCY_US_BOUNDS);
    }
    registry
}

/// Renders one `"kind":"event"` JSONL line (no trailing newline).
pub(crate) fn render_event_line(e: &Event) -> String {
    JsonObject::new()
        .str("kind", "event")
        .str("event", e.kind())
        .raw("payload", &e.payload_json())
        .finish()
}

/// Renders the non-event tail of the JSONL stream: metric snapshot lines
/// (sorted by name), then span lines (sorted by path). Shared by
/// [`Collector::jsonl`] and the streaming sink's `finish` so the two
/// outputs stay byte-identical.
pub(crate) fn render_tail_lines(
    registry: &Registry,
    spans: &BTreeMap<String, SpanStat>,
) -> Vec<String> {
    let mut lines = registry.jsonl_lines();
    for (path, stat) in spans {
        lines.push(
            JsonObject::new()
                .str("kind", "span")
                .str("path", path)
                .u64("count", stat.count)
                .u128("total_ns", stat.total_ns)
                .finish(),
        );
    }
    lines
}

impl Collector {
    /// A collector with the EVAL-specific histograms pre-registered.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(CollectorInner {
                events: Vec::new(),
                registry: default_registry(),
                spans: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorInner> {
        // A poisoned lock only means another thread panicked mid-record;
        // the aggregate state is still usable for reporting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A clone of the collected events, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }

    /// A snapshot of the metric registry.
    pub fn registry(&self) -> Registry {
        self.lock().registry.clone()
    }

    /// A snapshot of the per-path span statistics.
    pub fn spans(&self) -> BTreeMap<String, SpanStat> {
        self.lock().spans.clone()
    }

    /// The event lines of the JSONL stream — exactly the lines covered
    /// by the golden determinism contract (`"kind":"event"`).
    pub fn event_lines(&self) -> Vec<String> {
        let inner = self.lock();
        inner.events.iter().map(render_event_line).collect()
    }

    /// The full JSONL stream: event lines (deterministic, in emission
    /// order), then metric snapshot lines (sorted by name), then span
    /// lines (sorted by path; wall-clock, non-deterministic).
    pub fn jsonl(&self) -> String {
        let mut lines = self.event_lines();
        let inner = self.lock();
        lines.extend(render_tail_lines(&inner.registry, &inner.spans));
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL stream to `path` atomically (temp file + rename).
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.jsonl().as_bytes())
    }

    /// The end-of-run summary: event counts by kind, span self/total
    /// table, and the metric summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.lock();
        let mut out = String::new();
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &inner.events {
            *by_kind.entry(e.kind()).or_insert(0) += 1;
        }
        if !by_kind.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "event", "count");
            for (kind, n) in &by_kind {
                let _ = writeln!(out, "{kind:<44} {n:>12}");
            }
        }
        let spans = span_report(&inner.spans);
        if !spans.is_empty() {
            out.push('\n');
            out.push_str(&spans);
        }
        let metrics = inner.registry.summary();
        if !metrics.is_empty() {
            out.push('\n');
            out.push_str(&metrics);
        }
        out
    }
}

impl TraceSink for Collector {
    fn record(&self, rec: Record) {
        let mut inner = self.lock();
        match rec {
            Record::Event(e) => inner.events.push(e),
            Record::Metric(u) => inner.registry.apply(&u),
            Record::Span { path, nanos } => {
                inner.spans.entry(path).or_default().add(nanos);
            }
        }
    }
}

/// A buffering sink for one parallel worker. Records are kept verbatim;
/// the owner extracts them after `join` and replays them into the main
/// sink in a deterministic order.
#[derive(Debug, Default)]
pub struct BufferSink {
    records: Mutex<Vec<Record>>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the buffer, returning records in recording order.
    pub fn into_records(self) -> Vec<Record> {
        self.records
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Drains the buffer in place, returning records in recording order
    /// and leaving it empty. Lets the campaign commit a finished chip's
    /// records while the worker scope still borrows the sink.
    pub fn drain(&self) -> Vec<Record> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl TraceSink for BufferSink {
    fn record(&self, rec: Record) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_skips_payload_construction() {
        let t = Tracer::noop();
        assert!(!t.enabled());
        t.event(|| panic!("must not run")); // lint:allow panic-safety (asserting the disabled path)
        t.count("x");
        let _span = t.span("root");
        let _timer = t.timer("lat_us");
    }

    #[test]
    fn collector_aggregates_events_metrics_and_spans() {
        let c = Collector::new();
        let t = Tracer::new(&c);
        assert!(t.enabled());
        t.event(|| Event::PhaseDetected {
            phase_id: 1,
            recurring: false,
        });
        t.count("cache.miss");
        t.count("cache.miss");
        t.gauge("g", 2.5);
        t.observe("decision.f_ghz", 4.0);
        {
            let _outer = t.span("campaign");
            let _inner = t.span("chip");
        }
        assert_eq!(c.events().len(), 1);
        let reg = c.registry();
        assert_eq!(reg.counter("cache.miss"), 2);
        assert_eq!(reg.gauge("g"), Some(2.5));
        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.contains_key("campaign/chip"));
        let summary = c.summary();
        assert!(summary.contains("phase-detected"));
        assert!(summary.contains("campaign/chip"));
    }

    #[test]
    fn jsonl_orders_events_then_metrics_then_spans() {
        let c = Collector::new();
        let t = Tracer::new(&c);
        t.event(|| Event::CampaignStart {
            chips: 1,
            workloads: 1,
            cells: 1,
        });
        t.count("a");
        {
            let _s = t.span("root");
        }
        let jsonl = c.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"kind\":\"event\""), "{lines:?}");
        assert!(lines[1].contains("\"kind\":\"counter\""), "{lines:?}");
        assert!(lines.last().is_some_and(|l| l.contains("\"kind\":\"span\"")));
    }

    #[test]
    fn buffered_replay_preserves_record_order() {
        let collector = Collector::new();
        let main = Tracer::new(&collector);
        let buf = BufferSink::new();
        {
            let t = Tracer::new(&buf);
            t.event(|| Event::PhaseDetected {
                phase_id: 7,
                recurring: true,
            });
            t.count("cache.hit");
        }
        main.replay(buf.into_records());
        assert_eq!(collector.events().len(), 1);
        assert_eq!(collector.registry().counter("cache.hit"), 1);
    }

    #[test]
    fn timer_observes_into_histogram() {
        let c = Collector::new();
        let t = Tracer::new(&c);
        {
            let _timer = t.timer("decision.latency_us");
        }
        let reg = c.registry();
        let h = reg.histogram("decision.latency_us");
        assert!(h.is_some_and(|h| h.count() == 1));
    }
}
