//! Counters, gauges, and fixed-bucket histograms with a deterministic
//! in-memory registry.
//!
//! The registry is keyed by `BTreeMap`, so snapshot order is the sorted
//! metric name — never hasher state. Histograms use *fixed* bucket
//! boundaries supplied at registration: bucket membership of a value is a
//! pure function of the value, so two runs that observe the same values
//! produce the same counts (the latency histograms observe wall-clock
//! durations and are excluded from the golden contract by name, see
//! [`is_timing_metric`]).

use std::borrow::Cow;
use std::collections::BTreeMap;

use crate::json::{f64_array, u64_array, JsonObject};

/// A metric name: `&'static str` on the hot emit path (zero-cost), owned
/// when reconstructed from a persisted trace or checkpoint record.
pub type MetricName = Cow<'static, str>;

/// One metric mutation, as carried by [`crate::sink::Record::Metric`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricUpdate {
    /// Add `1`.. to a monotonic counter.
    CounterAdd(MetricName, u64),
    /// Set a gauge to the latest value.
    GaugeSet(MetricName, f64),
    /// Record one observation into a histogram.
    Observe(MetricName, f64),
}

impl MetricUpdate {
    /// The metric name this update targets.
    pub fn name(&self) -> &str {
        match self {
            MetricUpdate::CounterAdd(n, _)
            | MetricUpdate::GaugeSet(n, _)
            | MetricUpdate::Observe(n, _) => n,
        }
    }
}

/// Metrics whose values derive from the wall clock (and therefore vary
/// across runs): anything named `*_us`, `*_ns`, or `*_ms`. These are
/// excluded from the golden-stream determinism contract.
pub fn is_timing_metric(name: &str) -> bool {
    name.ends_with("_us") || name.ends_with("_ns") || name.ends_with("_ms")
}

/// A fixed-bucket histogram.
///
/// `bounds = [b0, b1, .., bk]` defines `k + 1` buckets: bucket `0` holds
/// `v < b0`, bucket `i` holds `b(i-1) <= v < b(i)`, and the final bucket
/// holds `v >= bk`. A value exactly on a boundary lands in the *higher*
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// The bucket index `v` falls into (see the type docs for the
    /// boundary convention).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b <= v)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// The boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, underflow first).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `[lo, hi)` value range of bucket `i`. The underflow bucket has
    /// no lower edge and the overflow bucket no upper edge; both collapse
    /// to their single known boundary, so quantiles that land there
    /// *saturate* to the first/last bound instead of extrapolating.
    fn bucket_edges(&self, i: usize) -> (f64, f64) {
        let k = self.bounds.len();
        if i == 0 {
            (self.bounds[0], self.bounds[0])
        } else if i >= k {
            (self.bounds[k - 1], self.bounds[k - 1])
        } else {
            (self.bounds[i - 1], self.bounds[i])
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated from the bucket counts by
    /// linear interpolation inside the containing bucket.
    ///
    /// Boundary convention: when the target rank `q·n` falls exactly on a
    /// cumulative bucket boundary, the *lower* bucket's upper edge is
    /// returned — which equals the upper bucket's lower edge, so the
    /// estimate is continuous in `q` and empty buckets cannot produce a
    /// jump. Ranks inside the underflow (overflow) bucket saturate to the
    /// first (last) boundary. Returns `None` for an empty histogram or a
    /// `q` outside `[0, 1]`.
    ///
    /// The estimate is monotone in `q` and stable under [`Histogram::merge`]
    /// (the digest is mergeable: merged counts give the same quantiles as
    /// observing the union of samples).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum: u64 = 0;
        let mut last_nonempty = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum as f64;
            cum += c;
            last_nonempty = i;
            if cum as f64 >= target {
                let (lo, hi) = self.bucket_edges(i);
                let frac = ((target - before) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
        }
        // Float round-off fallback: the whole mass is below `target`.
        Some(self.bucket_edges(last_nonempty).1)
    }

    /// Merges another digest recorded over the **same boundaries** into
    /// this one. Bucket counts, total count and sum add, so merging is
    /// associative and commutative on the counts, and quantiles of the
    /// merged digest equal quantiles of the union of observations.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramMismatch`] (leaving `self` untouched) when the
    /// boundary vectors differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), HistogramMismatch> {
        if self.bounds != other.bounds {
            return Err(HistogramMismatch);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }

    /// Reconstructs a digest from its serialized parts (the `bounds` /
    /// `counts` / `sum` fields of a `"kind":"histogram"` JSONL line).
    ///
    /// # Errors
    ///
    /// Returns [`HistogramMismatch`] when `bounds` is empty or not strictly
    /// increasing, or when `counts` is not exactly `bounds.len() + 1` long.
    pub fn from_parts(
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
    ) -> Result<Histogram, HistogramMismatch> {
        if bounds.is_empty()
            || !bounds.windows(2).all(|w| w[0] < w[1])
            || counts.len() != bounds.len() + 1
        {
            return Err(HistogramMismatch);
        }
        Ok(Histogram {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            count: counts.iter().sum(),
            sum,
        })
    }
}

/// Two histogram digests could not be combined (or reconstructed):
/// incompatible boundary vectors or malformed serialized parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramMismatch;

impl std::fmt::Display for HistogramMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("histogram digests have incompatible bucket boundaries")
    }
}

impl std::error::Error for HistogramMismatch {}

/// Default boundaries for histograms observed without prior registration:
/// decades from 1e-7 to 1e6.
const DEFAULT_BOUNDS: [f64; 14] = [
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
];

/// The deterministic metric registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-registers a histogram with explicit boundaries (otherwise the
    /// first observation creates it with decade [`DEFAULT_BOUNDS`]).
    pub fn register_histogram(&mut self, name: impl Into<MetricName>, bounds: &[f64]) {
        self.histograms.insert(name.into(), Histogram::new(bounds));
    }

    /// Applies one update. Cloning a `Cow::Borrowed` name is a pointer
    /// copy, so the static-name hot path stays allocation-free.
    pub fn apply(&mut self, update: &MetricUpdate) {
        match update {
            MetricUpdate::CounterAdd(name, n) => {
                *self.counters.entry(name.clone()).or_insert(0) += n;
            }
            MetricUpdate::GaugeSet(name, v) => {
                self.gauges.insert(name.clone(), *v);
            }
            MetricUpdate::Observe(name, v) => {
                self.histograms
                    .entry(name.clone())
                    .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
                    .observe(*v);
            }
        }
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if observed or registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// All gauges, in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// All histograms, in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (n.as_ref(), h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.values().all(|h| h.count() == 0)
    }

    /// JSONL lines for the snapshot, in sorted-name order: one line per
    /// counter, gauge, and histogram.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, value) in &self.counters {
            out.push(
                JsonObject::new()
                    .str("kind", "counter")
                    .str("name", name)
                    .u64("value", *value)
                    .finish(),
            );
        }
        for (name, value) in &self.gauges {
            out.push(
                JsonObject::new()
                    .str("kind", "gauge")
                    .str("name", name)
                    .f64("value", *value)
                    .finish(),
            );
        }
        for (name, h) in &self.histograms {
            out.push(
                JsonObject::new()
                    .str("kind", "histogram")
                    .str("name", name)
                    .bool("timing", is_timing_metric(name))
                    .raw("bounds", &f64_array(h.bounds()))
                    .raw("counts", &u64_array(h.counts()))
                    .u64("count", h.count())
                    .f64("sum", h.sum())
                    .finish(),
            );
        }
        out
    }

    /// A human-readable summary block (counters, gauges, histograms).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<44} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "gauge", "value");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {value:>12.4}");
            }
        }
        for (name, h) in &self.histograms {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "histogram {name}: n={} mean={:.4}",
                h.count(),
                h.mean()
            );
            let labels = bucket_labels(h.bounds());
            for (label, count) in labels.iter().zip(h.counts()) {
                if *count > 0 {
                    let _ = writeln!(out, "  {label:<42} {count:>12}");
                }
            }
        }
        out
    }
}

/// Human-readable bucket interval labels for a bound list.
fn bucket_labels(bounds: &[f64]) -> Vec<String> {
    let mut labels = Vec::with_capacity(bounds.len() + 1);
    labels.push(format!("< {}", bounds[0]));
    for w in bounds.windows(2) {
        labels.push(format!("[{}, {})", w[0], w[1]));
    }
    labels.push(format!(">= {}", bounds[bounds.len() - 1]));
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_lower_inclusive_upper_exclusive() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Below the first bound.
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(0.999_999), 0);
        // Exactly on a boundary lands in the higher bucket.
        assert_eq!(h.bucket_index(1.0), 1);
        assert_eq!(h.bucket_index(1.5), 1);
        assert_eq!(h.bucket_index(2.0), 2);
        assert_eq!(h.bucket_index(3.999), 2);
        // On and above the last bound: overflow bucket.
        assert_eq!(h.bucket_index(4.0), 3);
        assert_eq!(h.bucket_index(1e9), 3);
    }

    #[test]
    fn observe_updates_counts_sum_and_mean() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.0, 1.5, 2.5] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.5).abs() < 1e-12);
        assert!((h.mean() - 1.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_applies_updates_and_snapshots_in_name_order() {
        let mut r = Registry::new();
        r.register_histogram("z.hist", &[1.0]);
        r.apply(&MetricUpdate::CounterAdd("b.count".into(), 2));
        r.apply(&MetricUpdate::CounterAdd("a.count".into(), 1));
        r.apply(&MetricUpdate::CounterAdd("b.count".into(), 3));
        r.apply(&MetricUpdate::GaugeSet("g".into(), 0.5));
        r.apply(&MetricUpdate::Observe("z.hist".into(), 3.0));
        assert_eq!(r.counter("b.count"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(0.5));
        assert_eq!(r.histogram("z.hist").unwrap().counts(), &[0, 1]);
        let lines = r.jsonl_lines();
        // Counters sorted, then gauges, then histograms.
        assert!(lines[0].contains("a.count"), "{lines:?}");
        assert!(lines[1].contains("b.count"), "{lines:?}");
        assert!(lines[2].contains("\"gauge\""), "{lines:?}");
        assert!(lines[3].contains("z.hist"), "{lines:?}");
    }

    #[test]
    fn unregistered_observation_gets_default_decade_buckets() {
        let mut r = Registry::new();
        r.apply(&MetricUpdate::Observe("x".into(), 50.0));
        let h = r.histogram("x").unwrap();
        assert_eq!(h.bounds().len(), 14);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn timing_metrics_are_identified_by_suffix() {
        assert!(is_timing_metric("decision.latency_us"));
        assert!(is_timing_metric("span.total_ns"));
        assert!(!is_timing_metric("decision.f_ghz"));
        assert!(!is_timing_metric("cache.hit"));
    }

    #[test]
    fn summary_renders_nonempty_sections() {
        let mut r = Registry::new();
        r.apply(&MetricUpdate::CounterAdd("c".into(), 1));
        r.apply(&MetricUpdate::Observe("h".into(), 2.0));
        let s = r.summary();
        assert!(s.contains("counter"));
        assert!(s.contains("histogram h"));
    }

    #[test]
    fn quantile_interpolates_and_handles_bucket_boundaries() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 4 observations in [1,2), 4 in [2,4).
        for v in [1.0, 1.2, 1.5, 1.9, 2.0, 2.5, 3.0, 3.9] {
            h.observe(v);
        }
        // Exactly on the cumulative boundary between the two buckets
        // (rank 4 of 8): the lower bucket's upper edge == the upper
        // bucket's lower edge — no jump, no empty-bucket artifacts.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // Interior ranks interpolate linearly inside the bucket.
        assert_eq!(h.quantile(0.25), Some(1.5));
        assert_eq!(h.quantile(0.75), Some(3.0));
        // Extremes pin to the data's bucket edges.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        // Out-of-range q and empty digests yield None.
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn quantile_saturates_in_under_and_overflow_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.25); // underflow
        h.observe(10.0); // overflow
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn merge_requires_matching_bounds_and_adds_counts() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(3.0);
        a.merge(&b).expect("same bounds merge");
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 5.0).abs() < 1e-12);
        let other = Histogram::new(&[1.0, 3.0]);
        assert_eq!(a.merge(&other), Err(HistogramMismatch));
        // Failed merges leave the receiver untouched.
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_malformed_input() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 2.5, 8.0] {
            h.observe(v);
        }
        let r = Histogram::from_parts(h.bounds(), h.counts(), h.sum()).expect("round-trips");
        assert_eq!(r, h);
        assert!(Histogram::from_parts(&[], &[1], 0.0).is_err());
        assert!(Histogram::from_parts(&[2.0, 1.0], &[0, 0, 0], 0.0).is_err());
        assert!(Histogram::from_parts(&[1.0, 2.0], &[0, 0], 0.0).is_err());
    }

    #[test]
    fn registry_iterators_walk_sorted_snapshots() {
        let mut r = Registry::new();
        r.apply(&MetricUpdate::CounterAdd("b".into(), 2));
        r.apply(&MetricUpdate::CounterAdd("a".into(), 1));
        r.apply(&MetricUpdate::GaugeSet("g".into(), 0.5));
        r.apply(&MetricUpdate::Observe("h".into(), 1.0));
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(r.gauges().count(), 1);
        assert_eq!(r.histograms().count(), 1);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        const BOUNDS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

        fn digest(values: &[f64]) -> Histogram {
            let mut h = Histogram::new(&BOUNDS);
            for &v in values {
                h.observe(v);
            }
            h
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn merge_is_commutative(
                xs in proptest::collection::vec(0.0f64..20.0, 0..12),
                ys in proptest::collection::vec(0.0f64..20.0, 0..12),
            ) {
                let (a, b) = (digest(&xs), digest(&ys));
                let mut ab = a.clone();
                ab.merge(&b).expect("same bounds");
                let mut ba = b.clone();
                ba.merge(&a).expect("same bounds");
                // Float addition is commutative, so the whole digest
                // (counts AND sum) matches bitwise.
                prop_assert_eq!(ab, ba);
            }

            #[test]
            fn merge_is_associative(
                xs in proptest::collection::vec(0.0f64..20.0, 0..12),
                ys in proptest::collection::vec(0.0f64..20.0, 0..12),
                zs in proptest::collection::vec(0.0f64..20.0, 0..12),
            ) {
                let (a, b, c) = (digest(&xs), digest(&ys), digest(&zs));
                let mut left = a.clone();
                left.merge(&b).expect("same bounds");
                left.merge(&c).expect("same bounds");
                let mut bc = b.clone();
                bc.merge(&c).expect("same bounds");
                let mut right = a.clone();
                right.merge(&bc).expect("same bounds");
                // Counts are exactly associative; the sum is float and
                // only associative up to round-off.
                prop_assert_eq!(left.counts(), right.counts());
                prop_assert_eq!(left.count(), right.count());
                prop_assert!(
                    (left.sum() - right.sum()).abs()
                        <= 1e-9 * left.sum().abs().max(1.0),
                    "sums diverged: {} vs {}", left.sum(), right.sum()
                );
            }

            #[test]
            fn quantiles_are_monotone_in_q(
                xs in proptest::collection::vec(0.0f64..20.0, 1..24),
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                let h = digest(&xs);
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                let vlo = h.quantile(lo).expect("non-empty");
                let vhi = h.quantile(hi).expect("non-empty");
                prop_assert!(
                    vlo <= vhi,
                    "quantile({}) = {} > quantile({}) = {}", lo, vlo, hi, vhi
                );
            }

            #[test]
            fn merged_quantiles_match_union_observation(
                xs in proptest::collection::vec(0.0f64..20.0, 1..16),
                ys in proptest::collection::vec(0.0f64..20.0, 1..16),
                q in 0.0f64..1.0,
            ) {
                let mut merged = digest(&xs);
                merged.merge(&digest(&ys)).expect("same bounds");
                let mut union: Vec<f64> = xs.clone();
                union.extend_from_slice(&ys);
                let direct = digest(&union);
                prop_assert_eq!(merged.counts(), direct.counts());
                prop_assert_eq!(merged.quantile(q), direct.quantile(q));
            }
        }
    }
}
