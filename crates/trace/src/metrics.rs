//! Counters, gauges, and fixed-bucket histograms with a deterministic
//! in-memory registry.
//!
//! The registry is keyed by `BTreeMap`, so snapshot order is the sorted
//! metric name — never hasher state. Histograms use *fixed* bucket
//! boundaries supplied at registration: bucket membership of a value is a
//! pure function of the value, so two runs that observe the same values
//! produce the same counts (the latency histograms observe wall-clock
//! durations and are excluded from the golden contract by name, see
//! [`is_timing_metric`]).

use std::collections::BTreeMap;

use crate::json::{f64_array, u64_array, JsonObject};

/// One metric mutation, as carried by [`crate::sink::Record::Metric`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricUpdate {
    /// Add `1`.. to a monotonic counter.
    CounterAdd(&'static str, u64),
    /// Set a gauge to the latest value.
    GaugeSet(&'static str, f64),
    /// Record one observation into a histogram.
    Observe(&'static str, f64),
}

impl MetricUpdate {
    /// The metric name this update targets.
    pub fn name(&self) -> &'static str {
        match self {
            MetricUpdate::CounterAdd(n, _)
            | MetricUpdate::GaugeSet(n, _)
            | MetricUpdate::Observe(n, _) => n,
        }
    }
}

/// Metrics whose values derive from the wall clock (and therefore vary
/// across runs): anything named `*_us`, `*_ns`, or `*_ms`. These are
/// excluded from the golden-stream determinism contract.
pub fn is_timing_metric(name: &str) -> bool {
    name.ends_with("_us") || name.ends_with("_ns") || name.ends_with("_ms")
}

/// A fixed-bucket histogram.
///
/// `bounds = [b0, b1, .., bk]` defines `k + 1` buckets: bucket `0` holds
/// `v < b0`, bucket `i` holds `b(i-1) <= v < b(i)`, and the final bucket
/// holds `v >= bk`. A value exactly on a boundary lands in the *higher*
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// The bucket index `v` falls into (see the type docs for the
    /// boundary convention).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b <= v)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// The boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, underflow first).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Default boundaries for histograms observed without prior registration:
/// decades from 1e-7 to 1e6.
const DEFAULT_BOUNDS: [f64; 14] = [
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
];

/// The deterministic metric registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-registers a histogram with explicit boundaries (otherwise the
    /// first observation creates it with decade [`DEFAULT_BOUNDS`]).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.histograms.insert(name, Histogram::new(bounds));
    }

    /// Applies one update.
    pub fn apply(&mut self, update: &MetricUpdate) {
        match update {
            MetricUpdate::CounterAdd(name, n) => {
                *self.counters.entry(name).or_insert(0) += n;
            }
            MetricUpdate::GaugeSet(name, v) => {
                self.gauges.insert(name, *v);
            }
            MetricUpdate::Observe(name, v) => {
                self.histograms
                    .entry(name)
                    .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
                    .observe(*v);
            }
        }
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if observed or registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.values().all(|h| h.count() == 0)
    }

    /// JSONL lines for the snapshot, in sorted-name order: one line per
    /// counter, gauge, and histogram.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, value) in &self.counters {
            out.push(
                JsonObject::new()
                    .str("kind", "counter")
                    .str("name", name)
                    .u64("value", *value)
                    .finish(),
            );
        }
        for (name, value) in &self.gauges {
            out.push(
                JsonObject::new()
                    .str("kind", "gauge")
                    .str("name", name)
                    .f64("value", *value)
                    .finish(),
            );
        }
        for (name, h) in &self.histograms {
            out.push(
                JsonObject::new()
                    .str("kind", "histogram")
                    .str("name", name)
                    .bool("timing", is_timing_metric(name))
                    .raw("bounds", &f64_array(h.bounds()))
                    .raw("counts", &u64_array(h.counts()))
                    .u64("count", h.count())
                    .f64("sum", h.sum())
                    .finish(),
            );
        }
        out
    }

    /// A human-readable summary block (counters, gauges, histograms).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<44} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "gauge", "value");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {value:>12.4}");
            }
        }
        for (name, h) in &self.histograms {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "histogram {name}: n={} mean={:.4}",
                h.count(),
                h.mean()
            );
            let labels = bucket_labels(h.bounds());
            for (label, count) in labels.iter().zip(h.counts()) {
                if *count > 0 {
                    let _ = writeln!(out, "  {label:<42} {count:>12}");
                }
            }
        }
        out
    }
}

/// Human-readable bucket interval labels for a bound list.
fn bucket_labels(bounds: &[f64]) -> Vec<String> {
    let mut labels = Vec::with_capacity(bounds.len() + 1);
    labels.push(format!("< {}", bounds[0]));
    for w in bounds.windows(2) {
        labels.push(format!("[{}, {})", w[0], w[1]));
    }
    labels.push(format!(">= {}", bounds[bounds.len() - 1]));
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_lower_inclusive_upper_exclusive() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Below the first bound.
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(0.999_999), 0);
        // Exactly on a boundary lands in the higher bucket.
        assert_eq!(h.bucket_index(1.0), 1);
        assert_eq!(h.bucket_index(1.5), 1);
        assert_eq!(h.bucket_index(2.0), 2);
        assert_eq!(h.bucket_index(3.999), 2);
        // On and above the last bound: overflow bucket.
        assert_eq!(h.bucket_index(4.0), 3);
        assert_eq!(h.bucket_index(1e9), 3);
    }

    #[test]
    fn observe_updates_counts_sum_and_mean() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.0, 1.5, 2.5] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.5).abs() < 1e-12);
        assert!((h.mean() - 1.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_applies_updates_and_snapshots_in_name_order() {
        let mut r = Registry::new();
        r.register_histogram("z.hist", &[1.0]);
        r.apply(&MetricUpdate::CounterAdd("b.count", 2));
        r.apply(&MetricUpdate::CounterAdd("a.count", 1));
        r.apply(&MetricUpdate::CounterAdd("b.count", 3));
        r.apply(&MetricUpdate::GaugeSet("g", 0.5));
        r.apply(&MetricUpdate::Observe("z.hist", 3.0));
        assert_eq!(r.counter("b.count"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(0.5));
        assert_eq!(r.histogram("z.hist").unwrap().counts(), &[0, 1]);
        let lines = r.jsonl_lines();
        // Counters sorted, then gauges, then histograms.
        assert!(lines[0].contains("a.count"), "{lines:?}");
        assert!(lines[1].contains("b.count"), "{lines:?}");
        assert!(lines[2].contains("\"gauge\""), "{lines:?}");
        assert!(lines[3].contains("z.hist"), "{lines:?}");
    }

    #[test]
    fn unregistered_observation_gets_default_decade_buckets() {
        let mut r = Registry::new();
        r.apply(&MetricUpdate::Observe("x", 50.0));
        let h = r.histogram("x").unwrap();
        assert_eq!(h.bounds().len(), 14);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn timing_metrics_are_identified_by_suffix() {
        assert!(is_timing_metric("decision.latency_us"));
        assert!(is_timing_metric("span.total_ns"));
        assert!(!is_timing_metric("decision.f_ghz"));
        assert!(!is_timing_metric("cache.hit"));
    }

    #[test]
    fn summary_renders_nonempty_sections() {
        let mut r = Registry::new();
        r.apply(&MetricUpdate::CounterAdd("c", 1));
        r.apply(&MetricUpdate::Observe("h", 2.0));
        let s = r.summary();
        assert!(s.contains("counter"));
        assert!(s.contains("histogram h"));
    }
}
