//! # eval-trace — structured tracing, metrics, and profiling
//!
//! Observability layer for the EVAL reproduction: typed events for
//! controller decisions, retuning probes, phase detection, tester
//! measurements, and training; a deterministic metric registry
//! (counters, gauges, fixed-bucket histograms); and hierarchical
//! wall-clock spans for profiling the campaign hot path.
//!
//! ## Design
//!
//! Instrumented crates accept a [`Tracer`], a `Copy` handle over an
//! optional [`TraceSink`]. The default [`Tracer::noop`] makes every
//! instrumentation site a branch on `None` — callers that do not opt in
//! pay nothing, and existing APIs keep their signatures via `*_traced`
//! wrappers.
//!
//! ## Determinism contract
//!
//! Every `"kind":"event"` line in the JSONL stream is **bit-identical**
//! across runs and thread counts for the same seeds and configuration:
//! payloads carry only model-derived values, floats render via the
//! shortest-roundtrip formatter, objects preserve field order, and
//! parallel sections buffer per-worker records ([`BufferSink`]) and
//! replay them in a fixed order. Wall-clock data is confined to
//! `"kind":"span"` lines and metrics suffixed `_us`/`_ns`/`_ms`
//! ([`metrics::is_timing_metric`]), which are excluded from the
//! contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod event;
pub mod json;
pub mod metrics;
pub mod names;
pub mod provenance;
pub mod sink;
pub mod span;
pub mod stream;

pub use artifact::{ensure_parent_dir, write_atomic};
pub use provenance::Provenance;
pub use event::{DecisionEvent, Event, RejectedCandidate};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, HistogramMismatch, MetricName, MetricUpdate, Registry};
pub use sink::{default_registry, BufferSink, Collector, Record, TraceSink, Tracer};
pub use span::{span_report, SpanGuard, SpanStat, TimerGuard};
pub use stream::StreamingJsonl;
