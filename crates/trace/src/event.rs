//! Typed event records for the campaign harness and the runtime
//! adaptation loop.
//!
//! Every field of every event payload is **deterministic**: derived from
//! the models and the seeded RNG streams, never from the wall clock, the
//! thread schedule, or allocator state. Timing lives in span and
//! latency-histogram records (see [`crate::sink::Record`]), which are
//! explicitly excluded from the golden-stream determinism contract.

use crate::json::{self, JsonObject};

/// A frequency the retuning loop probed and rejected (with the violated
/// constraint), part of a [`DecisionEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedCandidate {
    /// The probed core frequency, GHz.
    pub f_ghz: f64,
    /// The constraint the probe violated (Figure 13 label).
    pub violation: &'static str,
}

/// One controller decision: the chosen per-phase operating point and the
/// evidence behind it (§4.2–4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Which scheme produced the decision (`static`, `fuzzy`, `exhaustive`,
    /// `global-dvfs`).
    pub scheme: &'static str,
    /// Environment label (Table 1), e.g. `TS+ASV`.
    pub env: &'static str,
    /// Workload name, or `runtime` for the deployed adaptation loop.
    pub workload: &'static str,
    /// Phase index within the workload (detector id at run time).
    pub phase: u64,
    /// Final core frequency after retuning, GHz.
    pub f_ghz: f64,
    /// Per-subsystem `(Vdd, Vbb)` in `SubsystemId::index` order.
    pub settings: Vec<(f64, f64)>,
    /// Integer-FU variant label (`normal` / `low-slope`).
    pub int_fu: &'static str,
    /// FP-FU variant label.
    pub fp_fu: &'static str,
    /// Integer issue-queue label (`full` / `small`).
    pub int_queue: &'static str,
    /// FP issue-queue label.
    pub fp_queue: &'static str,
    /// Retuning outcome (Figure 13 label).
    pub outcome: &'static str,
    /// Which constraint binds at the chosen point (`error-rate`,
    /// `temperature`, `power`, or `ladder-top`).
    pub binding: &'static str,
    /// Frequency steps moved while retuning.
    pub retune_steps: u32,
    /// Frequencies probed and rejected during retuning.
    pub rejected: Vec<RejectedCandidate>,
    /// Error rate at the chosen point, errors/instruction.
    pub pe_per_instruction: f64,
    /// Total power at the chosen point, W.
    pub power_w: f64,
    /// Hottest subsystem temperature, °C.
    pub max_t_c: f64,
    /// Equation-5 performance, BIPS.
    pub perf_bips: f64,
    /// CPI breakdown at the chosen point: computation component.
    pub cpi_comp: f64,
    /// CPI breakdown: memory (L2 miss) component.
    pub cpi_mem: f64,
    /// CPI breakdown: error-recovery component.
    pub cpi_recovery: f64,
}

/// A structured trace event. See each variant for the emitting site.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A campaign began (campaign harness).
    CampaignStart {
        /// Monte Carlo population size.
        chips: u64,
        /// Workloads in the suite.
        workloads: u64,
        /// (environment, scheme) cells requested.
        cells: u64,
    },
    /// One chip of the Monte Carlo population entered evaluation
    /// (campaign harness). Chips are traced into per-chip buffers and
    /// replayed in index order, so this marker deterministically scopes
    /// the decisions that follow it — trace analyzers key per-chip
    /// rollups off it.
    ChipStart {
        /// Zero-based chip index within the population.
        chip: u64,
    },
    /// The phase detector fired (runtime adaptation loop).
    PhaseDetected {
        /// Detector-assigned phase id.
        phase_id: u32,
        /// Whether a saved configuration existed (config-cache hit).
        recurring: bool,
    },
    /// A controller decision (campaign or runtime).
    Decision(Box<DecisionEvent>),
    /// One probe of the retuning cycles (§4.3.3).
    RetuneStep {
        /// `initial`, `down`, `up`.
        direction: &'static str,
        /// The probed frequency, GHz.
        f_ghz: f64,
        /// The violated constraint, if the probe was rejected.
        violation: Option<&'static str>,
    },
    /// A supposedly-safe fixed configuration diverged (campaign).
    Infeasible {
        /// Which fixed configuration was being evaluated.
        context: &'static str,
        /// The diverging subsystem.
        subsystem: String,
    },
    /// The manufacturer tester measured one subsystem's effective `Vt0`
    /// (§4.1).
    TesterMeasurement {
        /// Subsystem label, e.g. `core0/int-alu`.
        subsystem: String,
        /// Leakage-implied effective threshold, V.
        vt0_eff: f64,
        /// Arithmetic mean threshold over the footprint, V.
        vt0_mean: f64,
    },
    /// One fuzzy rule matrix finished gradient training (Appendix A).
    FuzzyTrained {
        /// Rule count.
        rules: u64,
        /// Training examples.
        examples: u64,
        /// Gradient passes.
        epochs: u64,
        /// RMS error on the (normalized) training set.
        rms: f64,
    },
    /// A per-(subsystem, variant) controller bank finished training
    /// (§4.3.1).
    ControllerTrained {
        /// Subsystem label.
        subsystem: String,
        /// `normal` or `alt` (low-slope FU / small queue).
        variant: &'static str,
        /// Training examples per controller.
        examples: u64,
        /// RMS error of the `Freq` controller on its normalized set.
        freq_rms: f64,
    },
}

impl Event {
    /// Short kind tag used in the JSONL stream.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CampaignStart { .. } => "campaign-start",
            Event::ChipStart { .. } => "chip-start",
            Event::PhaseDetected { .. } => "phase-detected",
            Event::Decision(_) => "decision",
            Event::RetuneStep { .. } => "retune-step",
            Event::Infeasible { .. } => "infeasible",
            Event::TesterMeasurement { .. } => "tester-measurement",
            Event::FuzzyTrained { .. } => "fuzzy-trained",
            Event::ControllerTrained { .. } => "controller-trained",
        }
    }

    /// The deterministic payload, rendered as a JSON object.
    pub fn payload_json(&self) -> String {
        match self {
            Event::CampaignStart {
                chips,
                workloads,
                cells,
            } => JsonObject::new()
                .u64("chips", *chips)
                .u64("workloads", *workloads)
                .u64("cells", *cells)
                .finish(),
            Event::ChipStart { chip } => JsonObject::new().u64("chip", *chip).finish(),
            Event::PhaseDetected {
                phase_id,
                recurring,
            } => JsonObject::new()
                .u64("phase_id", u64::from(*phase_id))
                .bool("recurring", *recurring)
                .finish(),
            Event::Decision(d) => {
                let settings = json::array(&d.settings, |(vdd, vbb)| {
                    JsonObject::new().f64("vdd", *vdd).f64("vbb", *vbb).finish()
                });
                let rejected = json::array(&d.rejected, |r| {
                    JsonObject::new()
                        .f64("f_ghz", r.f_ghz)
                        .str("violation", r.violation)
                        .finish()
                });
                JsonObject::new()
                    .str("scheme", d.scheme)
                    .str("env", d.env)
                    .str("workload", d.workload)
                    .u64("phase", d.phase)
                    .f64("f_ghz", d.f_ghz)
                    .raw("settings", &settings)
                    .str("int_fu", d.int_fu)
                    .str("fp_fu", d.fp_fu)
                    .str("int_queue", d.int_queue)
                    .str("fp_queue", d.fp_queue)
                    .str("outcome", d.outcome)
                    .str("binding", d.binding)
                    .u64("retune_steps", u64::from(d.retune_steps))
                    .raw("rejected", &rejected)
                    .f64("pe_per_instruction", d.pe_per_instruction)
                    .f64("power_w", d.power_w)
                    .f64("max_t_c", d.max_t_c)
                    .f64("perf_bips", d.perf_bips)
                    .f64("cpi_comp", d.cpi_comp)
                    .f64("cpi_mem", d.cpi_mem)
                    .f64("cpi_recovery", d.cpi_recovery)
                    .finish()
            }
            Event::RetuneStep {
                direction,
                f_ghz,
                violation,
            } => {
                let o = JsonObject::new().str("direction", direction).f64("f_ghz", *f_ghz);
                match violation {
                    Some(v) => o.str("violation", v),
                    None => o.raw("violation", "null"),
                }
                .finish()
            }
            Event::Infeasible { context, subsystem } => JsonObject::new()
                .str("context", context)
                .str("subsystem", subsystem)
                .finish(),
            Event::TesterMeasurement {
                subsystem,
                vt0_eff,
                vt0_mean,
            } => JsonObject::new()
                .str("subsystem", subsystem)
                .f64("vt0_eff", *vt0_eff)
                .f64("vt0_mean", *vt0_mean)
                .finish(),
            Event::FuzzyTrained {
                rules,
                examples,
                epochs,
                rms,
            } => JsonObject::new()
                .u64("rules", *rules)
                .u64("examples", *examples)
                .u64("epochs", *epochs)
                .f64("rms", *rms)
                .finish(),
            Event::ControllerTrained {
                subsystem,
                variant,
                examples,
                freq_rms,
            } => JsonObject::new()
                .str("subsystem", subsystem)
                .str("variant", variant)
                .u64("examples", *examples)
                .f64("freq_rms", *freq_rms)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_valid_single_line_json_objects() {
        let events = [
            Event::CampaignStart {
                chips: 2,
                workloads: 3,
                cells: 4,
            },
            Event::ChipStart { chip: 3 },
            Event::PhaseDetected {
                phase_id: 9,
                recurring: true,
            },
            Event::RetuneStep {
                direction: "down",
                f_ghz: 4.2,
                violation: Some("Error"),
            },
            Event::RetuneStep {
                direction: "up",
                f_ghz: 4.3,
                violation: None,
            },
            Event::Infeasible {
                context: "static",
                subsystem: "int-alu".into(),
            },
        ];
        for e in events {
            let p = e.payload_json();
            assert!(p.starts_with('{') && p.ends_with('}'), "{p}");
            assert!(!p.contains('\n'), "{p}");
            assert!(!e.kind().is_empty());
        }
    }

    #[test]
    fn decision_event_renders_every_field() {
        let d = DecisionEvent {
            scheme: "exhaustive",
            env: "TS+ASV",
            workload: "swim",
            phase: 1,
            f_ghz: 4.4,
            settings: vec![(1.0, 0.0), (0.95, -0.1)],
            int_fu: "normal",
            fp_fu: "low-slope",
            int_queue: "full",
            fp_queue: "small",
            outcome: "LowFreq",
            binding: "error-rate",
            retune_steps: 3,
            rejected: vec![RejectedCandidate {
                f_ghz: 4.5,
                violation: "Error",
            }],
            pe_per_instruction: 1e-5,
            power_w: 28.0,
            max_t_c: 81.5,
            perf_bips: 3.1,
            cpi_comp: 1.0,
            cpi_mem: 0.4,
            cpi_recovery: 0.01,
        };
        let p = Event::Decision(Box::new(d)).payload_json();
        for key in [
            "scheme", "env", "workload", "phase", "f_ghz", "settings", "outcome",
            "binding", "retune_steps", "rejected", "pe_per_instruction", "power_w",
            "max_t_c", "perf_bips", "cpi_comp", "cpi_mem", "cpi_recovery",
        ] {
            assert!(p.contains(&format!("\"{key}\"")), "missing {key}: {p}");
        }
        assert!(p.contains("\"vdd\":0.95"));
    }

    #[test]
    fn identical_events_render_identically() {
        let mk = || Event::TesterMeasurement {
            subsystem: "core0/dcache".into(),
            vt0_eff: 0.14159,
            vt0_mean: 0.15,
        };
        assert_eq!(mk().payload_json(), mk().payload_json());
    }
}
