//! Canonical metric and counter names.
//!
//! Every metric/counter name that crosses a crate boundary — emitted by
//! the campaign, runtime, solver, or trainer and consumed by `eval-obs`
//! rollups, the progress heartbeat, or the `bench-check` gate — is
//! declared here exactly once as a `&'static str` constant. Emitters and
//! consumers import the constant instead of repeating the string, so a
//! rename is a compile-visible change on both sides rather than a silent
//! schema drift.
//!
//! `eval-lint`'s `metric-schema` rule treats this module as the single
//! source of truth: raw metric-name string literals anywhere else in
//! non-test code are findings, a constant consumed without an emitter is
//! a finding, and the full name set is snapshotted into
//! `results/metric_schema.json` by `eval-lint --emit-schema` (diffed in
//! tier-1, so schema changes are always explicit).
//!
//! Constants whose identifier ends in `_PREFIX` name a metric *family*
//! matched by `starts_with` (e.g. the per-scheme decision-latency
//! timers) rather than one exact metric.

/// Chips in the campaign population (gauge; also announced on resume).
pub const CAMPAIGN_CHIPS_TOTAL: &str = "campaign.chips_total";
/// Chips fully merged into the campaign result so far (counter).
pub const CAMPAIGN_CHIPS_DONE: &str = "campaign.chips_done";
/// Chips restored from a checkpoint instead of re-run (counter).
pub const CAMPAIGN_CHIPS_RESUMED: &str = "campaign.chips_resumed";
/// Chips quarantined after a per-chip fault (counter).
pub const CAMPAIGN_CHIPS_FAILED: &str = "campaign.chips_failed";

/// Runtime phase detector reused a saved configuration (counter).
pub const CACHE_HIT: &str = "cache.hit";
/// Runtime phase detector ran the controller for a new phase (counter).
pub const CACHE_MISS: &str = "cache.miss";

/// Operating-point decisions taken, all schemes (counter).
pub const DECISION_COUNT: &str = "decision.count";
/// Decisions taken by the `static` scheme (counter).
pub const DECISION_COUNT_STATIC: &str = "decision.count.static";
/// Decisions taken by the `fuzzy` scheme (counter).
pub const DECISION_COUNT_FUZZY: &str = "decision.count.fuzzy";
/// Decisions taken by the `exhaustive` scheme (counter).
pub const DECISION_COUNT_EXHAUSTIVE: &str = "decision.count.exhaustive";
/// Decisions taken by the `global-dvfs` scheme (counter).
pub const DECISION_COUNT_GLOBAL_DVFS: &str = "decision.count.global-dvfs";
/// Decisions taken by any unrecognized scheme label (counter).
pub const DECISION_COUNT_OTHER: &str = "decision.count.other";

/// The decision-latency timer family, matched by prefix in `eval-obs
/// analyze` (all `_us`-suffixed, outside the determinism contract).
pub const DECISION_LATENCY_PREFIX: &str = "decision.latency";
/// Wall-clock decision latency, all schemes (timing histogram, µs).
pub const DECISION_LATENCY_US: &str = "decision.latency_us";
/// Wall-clock decision latency of the `static` scheme (µs).
pub const DECISION_LATENCY_STATIC_US: &str = "decision.latency.static_us";
/// Wall-clock decision latency of the `fuzzy` scheme (µs).
pub const DECISION_LATENCY_FUZZY_US: &str = "decision.latency.fuzzy_us";
/// Wall-clock decision latency of the `exhaustive` scheme (µs).
pub const DECISION_LATENCY_EXHAUSTIVE_US: &str = "decision.latency.exhaustive_us";
/// Wall-clock decision latency of the `global-dvfs` scheme (µs).
pub const DECISION_LATENCY_GLOBAL_DVFS_US: &str = "decision.latency.global-dvfs_us";
/// Wall-clock decision latency of any unrecognized scheme (µs).
pub const DECISION_LATENCY_OTHER_US: &str = "decision.latency.other_us";

/// Chosen core frequency per decision (histogram, GHz ladder buckets).
pub const DECISION_F_GHZ: &str = "decision.f_ghz";
/// Error rate at the chosen operating point (histogram, decade buckets).
pub const DECISION_PE_PER_INSTRUCTION: &str = "decision.pe_per_instruction";

/// Thermal-solve cache hits across the campaign (counter).
pub const SOLVER_CACHE_HITS: &str = "solver.cache.hits";
/// Thermal-solve cache misses across the campaign (counter).
pub const SOLVER_CACHE_MISSES: &str = "solver.cache.misses";
/// Fixed-point iterations spent in the thermal solver (counter).
pub const SOLVER_ITERATIONS: &str = "solver.iterations";
/// Solves that hit the slow-convergence fallback (counter).
pub const SOLVER_SLOW_CONVERGENCE: &str = "solver.slow_convergence";
/// Derived cache hit rate, written into bench JSON by the `hotpath`
/// bin and gated by `eval-obs bench-check`.
pub const SOLVER_CACHE_HIT_RATE: &str = "solver.cache.hit_rate";

/// Ladder probes evaluated by the retuning loop (counter).
pub const RETUNE_PROBES: &str = "retune.probes";

/// Fuzzy rule matrices trained (counter, one per `train` call).
pub const FUZZY_MATRICES_TRAINED: &str = "fuzzy.matrices_trained";
/// Complete fuzzy controllers trained (counter, one per variant slot).
pub const FUZZY_CONTROLLERS_TRAINED: &str = "fuzzy.controllers_trained";

/// Small-signal tester measurements taken during chip characterization
/// (counter).
pub const TESTER_MEASUREMENTS: &str = "tester.measurements";

/// Samples recorded per benchmark by `hotpath --samples N` (gauge,
/// written into the v2 bench JSON metrics map and read back by
/// `eval-obs bench-check` when selecting the quantile gate).
pub const BENCH_SAMPLES: &str = "bench.samples";

/// Artifacts stamped with a provenance record during this run
/// (counter, emitted by `TraceSession::finish`).
pub const PROVENANCE_ARTIFACTS: &str = "provenance.artifacts";

/// Every exact-name constant above, in declaration order. This is the
/// compiled-in registry hashed by
/// [`crate::provenance::metric_schema_hash`], so producer/consumer
/// schema drift is detectable from any stamped artifact alone.
pub const ALL_METRICS: &[&str] = &[
    CAMPAIGN_CHIPS_TOTAL,
    CAMPAIGN_CHIPS_DONE,
    CAMPAIGN_CHIPS_RESUMED,
    CAMPAIGN_CHIPS_FAILED,
    CACHE_HIT,
    CACHE_MISS,
    DECISION_COUNT,
    DECISION_COUNT_STATIC,
    DECISION_COUNT_FUZZY,
    DECISION_COUNT_EXHAUSTIVE,
    DECISION_COUNT_GLOBAL_DVFS,
    DECISION_COUNT_OTHER,
    DECISION_LATENCY_US,
    DECISION_LATENCY_STATIC_US,
    DECISION_LATENCY_FUZZY_US,
    DECISION_LATENCY_EXHAUSTIVE_US,
    DECISION_LATENCY_GLOBAL_DVFS_US,
    DECISION_LATENCY_OTHER_US,
    DECISION_F_GHZ,
    DECISION_PE_PER_INSTRUCTION,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_ITERATIONS,
    SOLVER_SLOW_CONVERGENCE,
    SOLVER_CACHE_HIT_RATE,
    RETUNE_PROBES,
    FUZZY_MATRICES_TRAINED,
    FUZZY_CONTROLLERS_TRAINED,
    TESTER_MEASUREMENTS,
    BENCH_SAMPLES,
    PROVENANCE_ARTIFACTS,
];

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in super::ALL_METRICS {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(
                name.contains('.') && !name.contains(' '),
                "malformed metric name {name}"
            );
        }
        assert!(super::DECISION_LATENCY_US.starts_with(super::DECISION_LATENCY_PREFIX));
    }
}
