//! Minimal deterministic JSON emission and parsing.
//!
//! The observability layer must produce *bit-identical* payloads across
//! runs and across thread counts, so nothing here consults locale, hash
//! order, or allocator state:
//!
//! * floats render through Rust's shortest-roundtrip `{:?}` formatter
//!   (stable for a given value on every platform we build on);
//! * non-finite floats render as `null` (JSON has no NaN/Inf);
//! * object fields appear exactly in the order the builder receives them.
//!
//! The reading counterpart, [`Json`], is a recursive-descent parser that
//! accepts exactly the JSON the workspace emits (plus ordinary
//! whitespace) and keeps object fields in document order. It lives here —
//! rather than in the consumer crate — so checkpoint sidecars can be read
//! back anywhere above `eval-trace` in the crate graph.

use std::fmt;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a float deterministically; non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// An order-preserving JSON object builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_literal(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_str_literal(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a u128 field (span timings).
    pub fn u128(mut self, k: &str, v: u128) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders an array of items via a per-item renderer.
pub fn array<T>(items: &[T], mut render: impl FnMut(&T) -> String) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render(item));
    }
    out.push(']');
    out
}

/// Renders a `f64` slice as a JSON array.
pub fn f64_array(items: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(&mut out, *v);
    }
    out.push(']');
    out
}

/// Renders a `u64` slice as a JSON array.
pub fn u64_array(items: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// A parsed JSON value. Objects preserve field order (they are small —
/// lookups are linear).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field by key (linear scan; `None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (numbers with no fraction).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_f64`].
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: `get(key)` then [`Json::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs do not occur in our emitters;
                            // map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_preserves_field_order_and_escapes() {
        let s = JsonObject::new()
            .str("a", "x\"y\n")
            .u64("b", 7)
            .f64("c", 0.25)
            .bool("d", true)
            .raw("e", "[1,2]")
            .finish();
        assert_eq!(s, "{\"a\":\"x\\\"y\\n\",\"b\":7,\"c\":0.25,\"d\":true,\"e\":[1,2]}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = JsonObject::new().f64("x", f64::NAN).f64("y", f64::INFINITY).finish();
        assert_eq!(s, "{\"x\":null,\"y\":null}");
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip() {
        let mut out = String::new();
        push_f64(&mut out, 4.0);
        assert_eq!(out, "4.0");
        let mut out = String::new();
        push_f64(&mut out, 1e-4);
        assert_eq!(out, "0.0001");
    }

    #[test]
    fn arrays_render() {
        assert_eq!(f64_array(&[1.0, 2.5]), "[1.0,2.5]");
        assert_eq!(u64_array(&[3, 4]), "[3,4]");
        assert_eq!(array(&[1u64, 2], |v| format!("{v}")), "[1,2]");
    }

    #[test]
    fn parses_the_emitters_output_shapes() {
        let line = r#"{"kind":"event","event":"decision","payload":{"f_ghz":4.25,"settings":[{"vdd":1.0,"vbb":-0.1}],"ok":true,"v":null}}"#;
        let v = Json::parse(line).expect("parses");
        assert_eq!(v.str_field("kind"), Some("event"));
        let payload = v.get("payload").expect("payload");
        assert_eq!(payload.f64_field("f_ghz"), Some(4.25));
        let settings = payload.get("settings").and_then(Json::as_arr).expect("arr");
        assert_eq!(settings[0].f64_field("vbb"), Some(-0.1));
        assert_eq!(payload.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(payload.get("v"), Some(&Json::Null));
    }

    #[test]
    fn numbers_cover_negatives_exponents_and_integers() {
        assert_eq!(Json::parse("-1.5e-3").unwrap().as_f64(), Some(-0.0015));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("4.5").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_unescape() {
        let v = Json::parse(r#""a\"b\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA"));
    }

    #[test]
    fn errors_carry_an_offset() {
        let e = Json::parse("{\"a\":").unwrap_err();
        assert!(e.offset >= 4, "{e}");
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} junk").is_err());
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("not an object: {other:?}"),
        }
    }
}
