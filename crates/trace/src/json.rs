//! Minimal deterministic JSON emission.
//!
//! The observability layer must produce *bit-identical* payloads across
//! runs and across thread counts, so nothing here consults locale, hash
//! order, or allocator state:
//!
//! * floats render through Rust's shortest-roundtrip `{:?}` formatter
//!   (stable for a given value on every platform we build on);
//! * non-finite floats render as `null` (JSON has no NaN/Inf);
//! * object fields appear exactly in the order the builder receives them.

use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a float deterministically; non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// An order-preserving JSON object builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_literal(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_str_literal(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a u128 field (span timings).
    pub fn u128(mut self, k: &str, v: u128) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders an array of items via a per-item renderer.
pub fn array<T>(items: &[T], mut render: impl FnMut(&T) -> String) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render(item));
    }
    out.push(']');
    out
}

/// Renders a `f64` slice as a JSON array.
pub fn f64_array(items: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(&mut out, *v);
    }
    out.push(']');
    out
}

/// Renders a `u64` slice as a JSON array.
pub fn u64_array(items: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_preserves_field_order_and_escapes() {
        let s = JsonObject::new()
            .str("a", "x\"y\n")
            .u64("b", 7)
            .f64("c", 0.25)
            .bool("d", true)
            .raw("e", "[1,2]")
            .finish();
        assert_eq!(s, "{\"a\":\"x\\\"y\\n\",\"b\":7,\"c\":0.25,\"d\":true,\"e\":[1,2]}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = JsonObject::new().f64("x", f64::NAN).f64("y", f64::INFINITY).finish();
        assert_eq!(s, "{\"x\":null,\"y\":null}");
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip() {
        let mut out = String::new();
        push_f64(&mut out, 4.0);
        assert_eq!(out, "4.0");
        let mut out = String::new();
        push_f64(&mut out, 1e-4);
        assert_eq!(out, "0.0001");
    }

    #[test]
    fn arrays_render() {
        assert_eq!(f64_array(&[1.0, 2.5]), "[1.0,2.5]");
        assert_eq!(u64_array(&[3, 4]), "[3,4]");
        assert_eq!(array(&[1u64, 2], |v| format!("{v}")), "[1,2]");
    }
}
