//! The crash-safe streaming JSONL sink.
//!
//! [`StreamingJsonl`] writes the trace file *incrementally*: event lines
//! accumulate in a pending buffer and are pushed to disk on every
//! [`TraceSink::flush`] — which [`crate::Tracer::replay`] calls once per
//! committed chip — so the on-disk file grows one complete chip segment
//! at a time. Metrics and spans aggregate in memory (their snapshot is a
//! *summary*, not a log) and are appended as the standard tail by
//! [`StreamingJsonl::finish`]. The finished file is byte-identical to
//! [`crate::Collector::jsonl`] over the same records: both render event
//! lines with the same helper, share the default registry, and emit the
//! same tail renderer.
//!
//! On resume, [`StreamingJsonl::resume`] reconciles an interrupted file
//! against the checkpoint's committed-chip frontier: complete event lines
//! belonging to committed chips are kept, anything beyond the frontier
//! (a chip segment past the last checkpoint record, a torn final line
//! from the crash, or a stale end-of-run tail) is truncated away, and
//! writing continues from there.

use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Mutex;

use crate::metrics::Registry;
use crate::sink::{default_registry, render_event_line, render_tail_lines, Record, TraceSink};
use crate::span::{span_report, SpanStat};

/// Every event line starts with this (field order is fixed by the
/// emitter), so anything else in the file is tail or corruption.
const EVENT_PREFIX: &str = "{\"kind\":\"event\"";

/// The exact prefix of a chip-start event line, up to the chip index.
const CHIP_START_PREFIX: &str =
    "{\"kind\":\"event\",\"event\":\"chip-start\",\"payload\":{\"chip\":";

#[derive(Debug)]
struct StreamInner {
    file: std::fs::File,
    /// Rendered event lines not yet written to the file.
    pending: String,
    registry: Registry,
    spans: std::collections::BTreeMap<String, SpanStat>,
    events_by_kind: std::collections::BTreeMap<&'static str, u64>,
    /// First I/O failure, held until [`StreamingJsonl::finish`] so the
    /// `TraceSink` record path stays infallible.
    io_error: Option<std::io::Error>,
}

/// An append-as-you-go JSONL trace sink (see the module docs).
#[derive(Debug)]
pub struct StreamingJsonl {
    inner: Mutex<StreamInner>,
}

impl StreamingJsonl {
    /// Opens `path` fresh (truncating any previous content) for a new
    /// streaming run.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::from_file(file))
    }

    /// Opens an interrupted trace at `path` for resumption, keeping the
    /// event lines of the first `committed_chips` chips and truncating
    /// everything past that frontier: chip segments with index `>=
    /// committed_chips`, a torn (newline-less) final line, or a stale
    /// non-event tail left by a previously *completed* run. The tail is
    /// re-rendered from the rebuilt registry at [`StreamingJsonl::finish`].
    ///
    /// # Errors
    ///
    /// Any I/O error reading, truncating, or reopening the file — or
    /// `InvalidData` when the trace holds *fewer* complete chip segments
    /// than the checkpoint committed. The sink flushes each chip before
    /// its checkpoint record is appended, so a trace behind its sidecar
    /// means external truncation or data loss; resuming would silently
    /// drop part of a committed chip.
    pub fn resume(path: &Path, committed_chips: usize) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut keep = 0usize;
        let mut pos = 0usize;
        let mut chips_kept = 0usize;
        while pos < text.len() {
            // A final line without a newline is torn mid-write: drop it.
            let Some(nl) = text[pos..].find('\n') else { break };
            let line = &text[pos..pos + nl];
            let line_end = pos + nl + 1;
            if !line.starts_with(EVENT_PREFIX) {
                // Metric/span tail from a completed run (or foreign
                // content): everything from here on is re-renderable.
                break;
            }
            if let Some(rest) = line.strip_prefix(CHIP_START_PREFIX) {
                let digits: &str =
                    &rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len())];
                let beyond = digits
                    .parse::<u64>()
                    .map(|chip| chip >= committed_chips as u64)
                    .unwrap_or(true);
                if beyond {
                    break;
                }
                chips_kept += 1;
            }
            keep = line_end;
            pos = line_end;
        }
        if chips_kept < committed_chips {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "cannot resume: trace {} holds {chips_kept} complete chip segments but \
                     the checkpoint committed {committed_chips}; delete the trace and its \
                     sidecar to restart",
                    path.display()
                ),
            ));
        }
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep as u64)?;
        file.seek(SeekFrom::Start(keep as u64))?;
        Ok(Self::from_file(file))
    }

    fn from_file(file: std::fs::File) -> Self {
        Self {
            inner: Mutex::new(StreamInner {
                file,
                pending: String::new(),
                registry: default_registry(),
                spans: std::collections::BTreeMap::new(),
                events_by_kind: std::collections::BTreeMap::new(),
                io_error: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the metric registry aggregated so far.
    pub fn registry(&self) -> Registry {
        self.lock().registry.clone()
    }

    /// The end-of-run summary: event counts by kind (events *streamed
    /// this process* — resumed chips live on disk only), span table, and
    /// the metric summary. Mirrors [`crate::Collector::summary`].
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.lock();
        let mut out = String::new();
        if !inner.events_by_kind.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "event", "count");
            for (kind, n) in &inner.events_by_kind {
                let _ = writeln!(out, "{kind:<44} {n:>12}");
            }
        }
        let spans = span_report(&inner.spans);
        if !spans.is_empty() {
            out.push('\n');
            out.push_str(&spans);
        }
        let metrics = inner.registry.summary();
        if !metrics.is_empty() {
            out.push('\n');
            out.push_str(&metrics);
        }
        out
    }

    /// Flushes remaining event lines, appends the metric/span tail, and
    /// syncs the file. Consumes the sink: the file is complete after
    /// this and matches `Collector::jsonl` byte-for-byte.
    ///
    /// # Errors
    ///
    /// The first I/O error from any earlier flush (held sticky), or from
    /// this final write/sync.
    pub fn finish(self) -> std::io::Result<()> {
        let mut inner = self.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(err) = inner.io_error.take() {
            return Err(err);
        }
        let mut tail = std::mem::take(&mut inner.pending);
        for line in render_tail_lines(&inner.registry, &inner.spans) {
            tail.push_str(&line);
            tail.push('\n');
        }
        inner.file.write_all(tail.as_bytes())?;
        inner.file.sync_all()
    }
}

impl TraceSink for StreamingJsonl {
    fn record(&self, rec: Record) {
        let mut inner = self.lock();
        match rec {
            Record::Event(e) => {
                *inner.events_by_kind.entry(e.kind()).or_insert(0) += 1;
                let line = render_event_line(&e);
                inner.pending.push_str(&line);
                inner.pending.push('\n');
            }
            Record::Metric(u) => inner.registry.apply(&u),
            Record::Span { path, nanos } => {
                inner.spans.entry(path).or_default().add(nanos);
            }
        }
    }

    fn flush(&self) {
        let mut inner = self.lock();
        if inner.io_error.is_some() || inner.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut inner.pending);
        let res = inner
            .file
            .write_all(pending.as_bytes())
            .and_then(|()| inner.file.flush());
        if let Err(err) = res {
            inner.io_error = Some(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::sink::{Collector, Tracer};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "eval-trace-stream-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn chip_records(chip: u64) -> Vec<Record> {
        vec![
            Record::Event(Event::ChipStart { chip }),
            Record::Event(Event::PhaseDetected {
                phase_id: chip as u32,
                recurring: false,
            }),
            Record::Metric(crate::MetricUpdate::CounterAdd("chips".into(), 1)),
        ]
    }

    #[test]
    fn finished_stream_matches_collector_byte_for_byte() {
        let path = temp_path("match");
        let stream = StreamingJsonl::create(&path).expect("creates");
        let collector = Collector::new();
        for chip in 0..3 {
            Tracer::new(&stream).replay(chip_records(chip));
            Tracer::new(&collector).replay(chip_records(chip));
        }
        stream.finish().expect("finishes");
        let streamed = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(streamed, collector.jsonl());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_grows_one_flushed_chip_at_a_time() {
        let path = temp_path("grow");
        let stream = StreamingJsonl::create(&path).expect("creates");
        Tracer::new(&stream).replay(chip_records(0));
        let after_one = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(after_one.lines().count(), 2, "{after_one}");
        assert!(after_one.ends_with('\n'), "complete lines only");
        Tracer::new(&stream).replay(chip_records(1));
        let after_two = std::fs::read_to_string(&path).expect("readable");
        assert!(after_two.starts_with(&after_one), "append-only");
        stream.finish().expect("finishes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_uncommitted_chips_torn_lines_and_stale_tails() {
        let path = temp_path("resume");
        // Full run: 3 chips + tail.
        let stream = StreamingJsonl::create(&path).expect("creates");
        let collector = Collector::new();
        for chip in 0..3 {
            Tracer::new(&stream).replay(chip_records(chip));
            Tracer::new(&collector).replay(chip_records(chip));
        }
        stream.finish().expect("finishes");
        let full = std::fs::read_to_string(&path).expect("readable");

        // Interrupted after chip 1 committed, mid-chip-2, torn line.
        let upto_chip2 = full.find("\"chip\":2").and_then(|p| full[..p].rfind('\n'));
        let cut = upto_chip2.expect("chip 2 segment exists") + 1;
        let torn = format!("{}{}", &full[..cut + 30], "{\"kind\":\"event\",\"ev");
        std::fs::write(&path, &torn).expect("writable");

        let resumed = StreamingJsonl::resume(&path, 2).expect("resumes");
        let kept = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(kept, full[..cut], "kept exactly the committed chips");
        // Replay chip 2 plus the metric state of chips 0-1 (as the
        // campaign resume path does), then finish: identical full file.
        let t = Tracer::new(&resumed);
        t.replay(vec![
            Record::Metric(crate::MetricUpdate::CounterAdd("chips".into(), 2)),
        ]);
        t.replay(chip_records(2));
        resumed.finish().expect("finishes");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), full);

        // Resuming a *completed* run keeps events, drops the tail.
        std::fs::write(&path, &full).expect("writable");
        let reopened = StreamingJsonl::resume(&path, 3).expect("resumes");
        let kept = std::fs::read_to_string(&path).expect("readable");
        assert!(kept.lines().all(|l| l.starts_with(EVENT_PREFIX)), "{kept}");
        assert_eq!(kept.lines().count(), 6);
        drop(reopened);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_a_trace_behind_its_checkpoint() {
        let path = temp_path("behind");
        let stream = StreamingJsonl::create(&path).expect("creates");
        Tracer::new(&stream).replay(chip_records(0));
        drop(stream);
        // The sidecar claims 2 committed chips, but only chip 0 made it
        // to disk: the trace lost data and resuming must not paper over
        // the missing segment.
        let err = StreamingJsonl::resume(&path, 2).expect_err("refuses");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("1 complete chip segments"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
