//! Content-addressed artifact provenance.
//!
//! Every final artifact the workspace writes — bench JSON, trace JSONL,
//! Prometheus metric snapshots, checkpoint sidecars — can be stamped
//! with a [`Provenance`] record answering "which bytes, produced by
//! which code, under which configuration?":
//!
//! * **content address** — FNV-1a 64 over the artifact payload bytes
//!   (for artifacts that embed their own stamp, the payload is the
//!   rendering *without* the provenance field, so two bit-identical
//!   payloads share an address even when stamped by different
//!   revisions);
//! * **git revision** — read from `.git/HEAD` (no subprocess), so the
//!   stamp works in offline builds; `EVAL_GIT_REVISION` overrides;
//! * **host fingerprint** — FNV-1a 64 over hostname + OS/arch + CPU
//!   model. `bench-check` v2 pools history samples only across matching
//!   hosts, so a laptop's timing distribution never gates a CI box;
//! * **config fingerprint** — the campaign checkpoint fingerprint
//!   (shared [`fnv1a64`] machinery), when the artifact came from a
//!   configured campaign;
//! * **metric-schema hash** — FNV-1a 64 over the compiled-in
//!   [`crate::names`] registry, so consumers can detect schema drift
//!   between producer and reader.
//!
//! Writers additionally append one line per stamped artifact to a *run
//! journal* (`$EVAL_RUNS_JOURNAL`, JSONL, append-only) which
//! `eval-obs runs list|show|diff` reads to compare any two runs by
//! provenance. The journal is opt-in via the environment variable so
//! unit tests and ad-hoc runs stay side-effect free.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::{Json, JsonObject};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit over `bytes` — the workspace's canonical content hash,
/// shared with the campaign checkpoint fingerprint.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical 16-digit lowercase hex rendering of a 64-bit hash.
pub fn hex64(hash: u64) -> String {
    format!("{hash:016x}")
}

/// The git revision producing this build's artifacts: the
/// `EVAL_GIT_REVISION` override when set, else the commit `.git/HEAD`
/// resolves to (searching upward from the working directory, following
/// one level of `ref:` indirection through loose and packed refs), else
/// `"unknown"`. No subprocess is spawned, so this works offline.
pub fn git_revision() -> String {
    if let Ok(rev) = std::env::var("EVAL_GIT_REVISION") {
        if !rev.is_empty() {
            return rev;
        }
    }
    resolve_git_head().unwrap_or_else(|| "unknown".to_string())
}

fn resolve_git_head() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the file holds the commit hash directly.
        return Some(head.to_string()).filter(|s| !s.is_empty());
    };
    let refname = refname.trim();
    if let Ok(loose) = std::fs::read_to_string(git.join(refname)) {
        let loose = loose.trim();
        if !loose.is_empty() {
            return Some(loose.to_string());
        }
    }
    // Packed refs: lines of `<hash> <refname>` (comments start with #).
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == refname {
                return Some(hash.trim().to_string());
            }
        }
    }
    None
}

/// A 16-hex fingerprint of the machine producing an artifact: FNV-1a
/// over `EVAL_HOST_ID` when set, else over hostname + `std::env::consts`
/// OS/arch + the first CPU model line of `/proc/cpuinfo` (absent files
/// contribute nothing). Timing distributions are only comparable within
/// one host fingerprint.
pub fn host_fingerprint() -> String {
    if let Ok(id) = std::env::var("EVAL_HOST_ID") {
        if !id.is_empty() {
            return hex64(fnv1a64(id.as_bytes()));
        }
    }
    let mut canon = String::new();
    if let Ok(hostname) = std::fs::read_to_string("/etc/hostname") {
        canon.push_str(hostname.trim());
    }
    canon.push(';');
    canon.push_str(std::env::consts::OS);
    canon.push(';');
    canon.push_str(std::env::consts::ARCH);
    canon.push(';');
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        if let Some(model) = cpuinfo.lines().find(|l| l.starts_with("model name")) {
            canon.push_str(model.trim());
        }
    }
    hex64(fnv1a64(canon.as_bytes()))
}

/// A 16-hex hash of the compiled-in metric-name registry
/// ([`crate::names::ALL_METRICS`]), stamped into every provenance record
/// so a reader can detect producer/consumer schema drift without
/// touching `results/metric_schema.json` on disk.
pub fn metric_schema_hash() -> String {
    let mut hash = FNV_OFFSET;
    for name in crate::names::ALL_METRICS {
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hex64(hash)
}

/// One artifact's provenance stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Artifact kind label (`bench-json`, `trace-jsonl`, `metrics-prom`,
    /// `campaign-ckpt`).
    pub artifact: String,
    /// 16-hex FNV-1a of the payload bytes; `None` for append-only logs
    /// whose content is still growing when the stamp is written.
    pub content_address: Option<String>,
    /// Git commit of the producing tree (or `"unknown"`).
    pub git_revision: String,
    /// 16-hex host fingerprint (see [`host_fingerprint`]).
    pub host: String,
    /// 16-hex campaign config fingerprint, when the artifact came from
    /// a configured campaign.
    pub config_fingerprint: Option<String>,
    /// 16-hex compiled-in metric-schema hash.
    pub schema_hash: String,
}

impl Provenance {
    /// Captures the environment half of a stamp (revision, host, schema
    /// hash) for an artifact of the given kind; content address and
    /// config fingerprint start empty.
    pub fn capture(artifact: &str) -> Provenance {
        Provenance {
            artifact: artifact.to_string(),
            content_address: None,
            git_revision: git_revision(),
            host: host_fingerprint(),
            config_fingerprint: None,
            schema_hash: metric_schema_hash(),
        }
    }

    /// Sets the content address to the FNV-1a of `payload`.
    #[must_use]
    pub fn with_content_address(mut self, payload: &[u8]) -> Provenance {
        self.content_address = Some(hex64(fnv1a64(payload)));
        self
    }

    /// Sets the campaign config fingerprint.
    #[must_use]
    pub fn with_config_fingerprint(mut self, fingerprint: u64) -> Provenance {
        self.config_fingerprint = Some(hex64(fingerprint));
        self
    }

    /// The stamp as a bare JSON object (embedded under a `"provenance"`
    /// key in JSON artifacts and checkpoint headers).
    pub fn to_json(&self) -> String {
        self.render(JsonObject::new())
    }

    /// The stamp as a standalone JSONL record (`"kind":"provenance"`) —
    /// the trace footer line.
    pub fn to_record_line(&self) -> String {
        self.render(JsonObject::new().str("kind", "provenance"))
    }

    fn render(&self, o: JsonObject) -> String {
        let mut o = o.str("artifact", &self.artifact);
        o = match &self.content_address {
            Some(addr) => o.str("content_address", addr),
            None => o.raw("content_address", "null"),
        };
        o = o
            .str("git_revision", &self.git_revision)
            .str("host", &self.host);
        o = match &self.config_fingerprint {
            Some(fp) => o.str("config_fingerprint", fp),
            None => o.raw("config_fingerprint", "null"),
        };
        o.str("schema_hash", &self.schema_hash).finish()
    }

    /// Parses a stamp from a JSON value — either the bare object or a
    /// `"kind":"provenance"` record line. `None` when the `artifact`
    /// field is missing.
    pub fn from_json(v: &Json) -> Option<Provenance> {
        Some(Provenance {
            artifact: v.str_field("artifact")?.to_string(),
            content_address: v.str_field("content_address").map(str::to_string),
            git_revision: v.str_field("git_revision").unwrap_or("unknown").to_string(),
            host: v.str_field("host").unwrap_or("").to_string(),
            config_fingerprint: v.str_field("config_fingerprint").map(str::to_string),
            schema_hash: v.str_field("schema_hash").unwrap_or("").to_string(),
        })
    }

    /// Field-by-field comparison: `(field, self value, other value)` for
    /// every differing field, in a fixed order. Empty when the stamps
    /// are identical.
    pub fn diff(&self, other: &Provenance) -> Vec<(&'static str, String, String)> {
        fn opt(v: &Option<String>) -> String {
            v.clone().unwrap_or_else(|| "-".to_string())
        }
        let mut out = Vec::new();
        let fields = [
            ("artifact", self.artifact.clone(), other.artifact.clone()),
            (
                "content_address",
                opt(&self.content_address),
                opt(&other.content_address),
            ),
            (
                "git_revision",
                self.git_revision.clone(),
                other.git_revision.clone(),
            ),
            ("host", self.host.clone(), other.host.clone()),
            (
                "config_fingerprint",
                opt(&self.config_fingerprint),
                opt(&other.config_fingerprint),
            ),
            (
                "schema_hash",
                self.schema_hash.clone(),
                other.schema_hash.clone(),
            ),
        ];
        for (name, a, b) in fields {
            if a != b {
                out.push((name, a, b));
            }
        }
        out
    }
}

/// The run journal path, when journaling is enabled
/// (`EVAL_RUNS_JOURNAL` non-empty).
pub fn journal_path() -> Option<PathBuf> {
    std::env::var_os("EVAL_RUNS_JOURNAL")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// One rendered journal line for a stamped artifact.
pub fn journal_line(artifact_path: &Path, prov: &Provenance, unix_secs: u64) -> String {
    JsonObject::new()
        .str("kind", "run")
        .u64("unix_secs", unix_secs)
        .str("path", &artifact_path.display().to_string())
        .raw("provenance", &prov.to_json())
        .finish()
}

/// Appends one journal line for `artifact_path` to the journal at
/// `journal` (created, with parents, when missing).
///
/// # Errors
///
/// Any I/O error creating or appending to the journal.
pub fn append_journal_to(
    journal: &Path,
    artifact_path: &Path,
    prov: &Provenance,
    unix_secs: u64,
) -> std::io::Result<()> {
    crate::artifact::ensure_parent_dir(journal)?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(journal)?;
    writeln!(file, "{}", journal_line(artifact_path, prov, unix_secs))
}

/// Appends a journal line for `artifact_path` to the `EVAL_RUNS_JOURNAL`
/// journal; a no-op when the variable is unset (journaling is opt-in).
///
/// # Errors
///
/// Any I/O error on the journal file.
pub fn append_journal(artifact_path: &Path, prov: &Provenance) -> std::io::Result<()> {
    let Some(journal) = journal_path() else {
        return Ok(());
    };
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    append_journal_to(&journal, artifact_path, prov, unix_secs)
}

/// Stamps a finished trace file: computes the content address over the
/// bytes already on disk, appends one `"kind":"provenance"` footer line
/// (an append, preserving the crash-consistency of the stream), and
/// journals the artifact. Returns the stamp.
///
/// # Errors
///
/// Any I/O error reading or appending to the trace, or writing the
/// journal.
pub fn stamp_trace(path: &Path) -> std::io::Result<Provenance> {
    let payload = std::fs::read(path)?;
    let prov = Provenance::capture("trace-jsonl").with_content_address(&payload);
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    writeln!(file, "{}", prov.to_record_line())?;
    file.sync_all()?;
    append_journal(path, &prov)?;
    Ok(prov)
}

/// Writes `bytes` to `path` via [`crate::write_atomic`], stamps a
/// provenance record (content address over exactly the written bytes),
/// and journals it. For artifacts that do not embed their own stamp
/// (Prometheus snapshots, reports).
///
/// # Errors
///
/// Any I/O error from the write or the journal append.
pub fn write_atomic_stamped(
    path: &Path,
    bytes: &[u8],
    artifact: &str,
) -> std::io::Result<Provenance> {
    crate::artifact::write_atomic(path, bytes)?;
    let prov = Provenance::capture(artifact).with_content_address(bytes);
    append_journal(path, &prov)?;
    Ok(prov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_the_reference_vectors() {
        // Offset basis for the empty input, and the classic "a" vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hex64(fnv1a64(b"a")), "af63dc4c8601ec8c");
    }

    #[test]
    fn stamp_round_trips_through_json_and_record_line() {
        let prov = Provenance {
            artifact: "bench-json".to_string(),
            content_address: Some(hex64(fnv1a64(b"payload"))),
            git_revision: "abc123".to_string(),
            host: hex64(1),
            config_fingerprint: Some(hex64(2)),
            schema_hash: metric_schema_hash(),
        };
        let bare = Json::parse(&prov.to_json()).expect("valid JSON");
        assert_eq!(Provenance::from_json(&bare), Some(prov.clone()));
        let line = prov.to_record_line();
        let rec = Json::parse(&line).expect("valid JSON");
        assert_eq!(rec.str_field("kind"), Some("provenance"));
        assert_eq!(Provenance::from_json(&rec), Some(prov));
    }

    #[test]
    fn content_address_is_a_pure_function_of_the_payload() {
        let a = Provenance::capture("trace-jsonl").with_content_address(b"same bytes");
        let b = Provenance::capture("trace-jsonl").with_content_address(b"same bytes");
        let c = Provenance::capture("trace-jsonl").with_content_address(b"other bytes");
        assert_eq!(a.content_address, b.content_address);
        assert_ne!(a.content_address, c.content_address);
        assert!(a.diff(&b).is_empty());
        let d = a.diff(&c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, "content_address");
    }

    #[test]
    fn diff_pinpoints_every_differing_field() {
        let a = Provenance {
            artifact: "bench-json".to_string(),
            content_address: Some(hex64(1)),
            git_revision: "r1".to_string(),
            host: hex64(7),
            config_fingerprint: None,
            schema_hash: hex64(9),
        };
        let mut b = a.clone();
        b.git_revision = "r2".to_string();
        b.config_fingerprint = Some(hex64(3));
        let d = a.diff(&b);
        let fields: Vec<&str> = d.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(fields, ["git_revision", "config_fingerprint"]);
        assert_eq!(d[1].1, "-");
    }

    #[test]
    fn schema_hash_is_stable_and_reflects_the_registry() {
        assert_eq!(metric_schema_hash(), metric_schema_hash());
        assert_eq!(metric_schema_hash().len(), 16);
        // Hand-rolled over the same list: must agree with the loop above.
        let joined: String = crate::names::ALL_METRICS
            .iter()
            .map(|n| format!("{n}\n"))
            .collect();
        assert_eq!(metric_schema_hash(), hex64(fnv1a64(joined.as_bytes())));
    }

    #[test]
    fn journal_lines_parse_back_with_path_and_stamp() {
        let prov = Provenance::capture("metrics-prom").with_content_address(b"x");
        let line = journal_line(Path::new("target/metrics.prom"), &prov, 1_700_000_000);
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.str_field("kind"), Some("run"));
        assert_eq!(v.u64_field("unix_secs"), Some(1_700_000_000));
        assert_eq!(v.str_field("path"), Some("target/metrics.prom"));
        let nested = v.get("provenance").expect("provenance object");
        assert_eq!(
            Provenance::from_json(nested).expect("parses").content_address,
            prov.content_address
        );
    }

    #[test]
    fn append_journal_to_creates_parents_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "eval-trace-journal-{}",
            std::process::id()
        ));
        let journal = dir.join("runs").join("journal.jsonl");
        let prov = Provenance::capture("bench-json").with_content_address(b"one");
        append_journal_to(&journal, Path::new("a.json"), &prov, 1).expect("appends");
        append_journal_to(&journal, Path::new("b.json"), &prov, 2).expect("appends");
        let text = std::fs::read_to_string(&journal).expect("readable");
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| Json::parse(l).is_ok()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stamp_trace_appends_one_footer_line_over_the_original_bytes() {
        let dir = std::env::temp_dir().join(format!(
            "eval-trace-stamp-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let body = "{\"kind\":\"counter\",\"name\":\"cache.hit\",\"value\":1}\n";
        std::fs::write(&path, body).expect("writable");
        let prov = stamp_trace(&path).expect("stamps");
        assert_eq!(
            prov.content_address,
            Some(hex64(fnv1a64(body.as_bytes())))
        );
        let text = std::fs::read_to_string(&path).expect("readable");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(body.trim_end()));
        let footer = Json::parse(lines.next().expect("footer")).expect("valid JSON");
        assert_eq!(footer.str_field("kind"), Some("provenance"));
        assert_eq!(lines.next(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
