//! Atomic final-artifact writes.
//!
//! A scraper (or a crash mid-write) must never observe a torn trace,
//! metrics, or benchmark file: every *final* artifact in the workspace is
//! written to a temporary file in the target directory, synced, and then
//! renamed into place. Rename within one directory is atomic on every
//! platform we build on, so readers see either the old complete file or
//! the new complete file — never a prefix.
//!
//! The `atomic-artifacts` lint rule (eval-lint) flags direct
//! `std::fs::write` / `File::create` calls on artifacts outside this
//! helper.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The temporary sibling `path` is staged at: `<file-name>.tmp` in the
/// same directory (same filesystem, so the rename cannot cross devices).
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: stage to `<path>.tmp` in the same
/// directory, sync, then rename over `path`.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the staging
/// file. On error the final `path` is untouched (a stale `.tmp` may
/// remain; the next successful write replaces it).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = staging_path(path);
    // lint:allow(atomic-artifacts): this is the staging write the helper exists for
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

/// Creates the parent directory of an output `path` (recursively) so
/// output-path problems surface when flags are parsed, not after hours of
/// chip work. A bare file name (no parent component) is fine as-is.
///
/// # Errors
///
/// Any I/O error from `create_dir_all`.
pub fn ensure_parent_dir(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eval-trace-artifact-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn write_atomic_replaces_the_target_and_removes_the_staging_file() {
        let dir = temp_dir("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").expect("writes");
        assert_eq!(std::fs::read(&path).expect("readable"), b"first");
        write_atomic(&path, b"second, longer payload").expect("overwrites");
        assert_eq!(
            std::fs::read(&path).expect("readable"),
            b"second, longer payload"
        );
        assert!(!staging_path(&path).exists(), "staging file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_fails_cleanly_on_a_missing_directory() {
        let dir = temp_dir("missing");
        let path = dir.join("no_such_subdir").join("out.json");
        assert!(write_atomic(&path, b"x").is_err());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_parent_dir_creates_missing_directories() {
        let dir = temp_dir("parents");
        let path = dir.join("a").join("b").join("out.jsonl");
        ensure_parent_dir(&path).expect("creates");
        assert!(path.parent().expect("has parent").is_dir());
        // Bare file names and existing parents are no-ops.
        ensure_parent_dir(Path::new("bare.json")).expect("no-op");
        ensure_parent_dir(&path).expect("idempotent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
