//! Golden-file test: `eval-obs analyze` over the committed example trace
//! must reproduce the committed report byte-for-byte.
//!
//! The trace (`results/trace_fig10_small.jsonl`) was generated with
//!
//! ```text
//! EVAL_CHIPS=2 EVAL_WORKLOADS=swim,crafty \
//!   cargo run --release -p eval-bench --bin fig10 -- \
//!   --trace results/trace_fig10_small.jsonl
//! ```
//!
//! and the report is `eval-obs analyze` over it. If an intentional change
//! to the analyzer or the trace schema alters the report, regenerate both
//! files with the commands above and commit them together.

use std::io::BufReader;
use std::path::PathBuf;

fn workspace_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn committed_trace() -> std::fs::File {
    std::fs::File::open(workspace_file("results/trace_fig10_small.jsonl"))
        .expect("committed trace exists")
}

#[test]
fn analyze_reproduces_the_golden_report() {
    let analysis =
        eval_obs::analyze_reader(BufReader::new(committed_trace())).expect("trace parses");
    let golden = std::fs::read_to_string(workspace_file("results/trace_fig10_small.report.txt"))
        .expect("golden report exists");
    let fresh = analysis.report_text();
    assert_eq!(
        fresh, golden,
        "analyze output drifted from the golden report; regenerate \
         results/trace_fig10_small.report.txt if the change is intentional"
    );
}

#[test]
fn analyze_is_deterministic_across_runs() {
    let a = eval_obs::analyze_reader(BufReader::new(committed_trace())).expect("trace parses");
    let b = eval_obs::analyze_reader(BufReader::new(committed_trace())).expect("trace parses");
    assert_eq!(a.report_text(), b.report_text());
    assert_eq!(a.report_json(), b.report_json());
}

#[test]
fn golden_report_covers_the_acceptance_surface() {
    // The acceptance criterion: per-scheme latency quantiles, cache hit
    // rate, and binding-constraint counts all appear in the report.
    let analysis =
        eval_obs::analyze_reader(BufReader::new(committed_trace())).expect("trace parses");
    let text = analysis.report_text();
    for needle in [
        "decision latency (us, wall-clock digests)",
        "decision.latency.fuzzy_us",
        "decision.latency.exhaustive_us",
        "decision.latency.static_us",
        "solver cache: hits=",
        "binding constraints",
        "fuzzy vs exhaustive frequency",
        "p50",
        "p95",
        "p99",
    ] {
        assert!(text.contains(needle), "report lacks {needle:?}:\n{text}");
    }
    assert!(analysis.cache_hit_rate().is_some());
    assert_eq!(analysis.schemes.len(), 3);
}
