//! Acceptance tests for the distribution-aware bench gate and the
//! provenance run journal (ISSUE acceptance criteria):
//!
//! * the quantile gate detects a pure 10% shift AND a P90-only tail
//!   regression that the legacy 0.35 ratio gate waves through;
//! * zero false positives across 100 resampled identical-distribution
//!   trials (plus a property test over means and spreads);
//! * `--legacy-tolerance` forces the ratio gate even on v2 files;
//! * `runs diff` reports bit-identical payloads by matching content
//!   address and pinpoints differing provenance fields otherwise.

use std::path::Path;

use eval_obs::bench_check::{self, BenchFile, GateMode, GateOptions};
use eval_obs::runs;
use eval_rng::ChaCha12Rng;
use eval_trace::provenance::Provenance;
use proptest::prelude::*;

/// One Box–Muller draw from N(mean, sigma).
fn normal(rng: &mut ChaCha12Rng, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    mean + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn normal_samples(rng: &mut ChaCha12Rng, mean: f64, sigma: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| normal(rng, mean, sigma)).collect()
}

/// A v2-shaped in-memory bench file: one benchmark whose `fast_ns` is
/// the sample median, exactly as `hotpath --samples` records it.
fn v2_file(name: &str, samples: Vec<f64>) -> BenchFile {
    let median = eval_obs::stats::median(&samples).expect("non-empty samples");
    let mut file = BenchFile {
        format: 2,
        ..BenchFile::default()
    };
    file.benches.insert(name.to_string(), median);
    file.samples.insert(name.to_string(), samples);
    file
}

fn legacy_035() -> GateOptions {
    let mut opts = GateOptions::new();
    opts.force_legacy = true;
    opts.tolerances.default = 0.35;
    opts
}

#[test]
fn pure_ten_percent_shift_is_caught_where_the_ratio_gate_sleeps() {
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let baseline = v2_file("solve_thermal", normal_samples(&mut rng, 1000.0, 20.0, 30));
    let fresh = v2_file("solve_thermal", normal_samples(&mut rng, 1100.0, 20.0, 30));

    let legacy = bench_check::check_distribution(&baseline, &fresh, &[], &legacy_035());
    assert!(legacy.pass(), "a 10% shift is inside the 0.35 ratio gate");

    let report = bench_check::check_distribution(&baseline, &fresh, &[], &GateOptions::new());
    assert!(!report.pass(), "the quantile gate must flag a 10% shift");
    let row = &report.rows[0];
    assert_eq!(row.mode, GateMode::QuantileBaseline);
    let shift = row.shift_ns.expect("quantile rows carry the shift");
    assert!((60.0..160.0).contains(&shift), "shift {shift} ≈ 100 ns");
}

#[test]
fn tail_only_regression_is_caught_where_the_ratio_gate_sleeps() {
    let mut rng = ChaCha12Rng::seed_from_u64(12);
    let base_samples = normal_samples(&mut rng, 1000.0, 20.0, 40);
    // Fresh run: the fast half of the distribution is untouched, but
    // every above-median draw is stretched 5× away from the median — a
    // contention-shaped pathology where only the slow tail regresses.
    // The median barely moves, so `fast_ns` (the median) looks healthy.
    let fresh_samples: Vec<f64> = normal_samples(&mut rng, 1000.0, 20.0, 40)
        .into_iter()
        .map(|v| if v > 1000.0 { 1000.0 + (v - 1000.0) * 5.0 } else { v })
        .collect();
    let baseline = v2_file("pe_access_bounded", base_samples);
    let fresh = v2_file("pe_access_bounded", fresh_samples);

    let legacy = bench_check::check_distribution(&baseline, &fresh, &[], &legacy_035());
    assert!(legacy.pass(), "the median moved too little for the ratio gate");

    let report = bench_check::check_distribution(&baseline, &fresh, &[], &GateOptions::new());
    assert!(!report.pass(), "the quantile gate must flag the slow tail");
    let row = &report.rows[0];
    assert_eq!(row.mode, GateMode::QuantileBaseline);
    assert!(row.shift_ns.expect("shift") > 60.0, "P90 regressed by ~100 ns");
}

#[test]
fn zero_false_positives_across_100_identical_distribution_trials() {
    let mut fired = 0u32;
    for trial in 0..100 {
        let mut rng = ChaCha12Rng::seed_from_u64(0x5eed_0000 + trial);
        let baseline = v2_file("freq_max_warm_reuse", normal_samples(&mut rng, 46_000.0, 900.0, 30));
        let fresh = v2_file("freq_max_warm_reuse", normal_samples(&mut rng, 46_000.0, 900.0, 30));
        let report = bench_check::check_distribution(&baseline, &fresh, &[], &GateOptions::new());
        assert_eq!(report.rows[0].mode, GateMode::QuantileBaseline);
        if !report.pass() {
            fired += 1;
        }
    }
    assert_eq!(fired, 0, "identical distributions must never gate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Resampling one distribution twice never fires the gate, across
    /// a wide range of scales and (modest) relative noise levels.
    #[test]
    fn gate_never_fires_on_resampled_identical_distributions(
        mean in 100.0f64..1.0e7,
        sigma_frac in 0.001f64..0.02,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let sigma = mean * sigma_frac;
        let baseline = v2_file("campaign_exhdyn_2chips", normal_samples(&mut rng, mean, sigma, 30));
        let fresh = v2_file("campaign_exhdyn_2chips", normal_samples(&mut rng, mean, sigma, 30));
        let report = bench_check::check_distribution(&baseline, &fresh, &[], &GateOptions::new());
        prop_assert!(report.pass(), "false positive at mean={mean} sigma={sigma}");
    }
}

#[test]
fn legacy_tolerance_flag_forces_the_ratio_gate_on_v2_files() {
    let mut rng = ChaCha12Rng::seed_from_u64(13);
    let baseline = v2_file("freq_max_ladder_sweep", normal_samples(&mut rng, 49_000.0, 400.0, 30));
    let fresh = v2_file("freq_max_ladder_sweep", normal_samples(&mut rng, 53_900.0, 400.0, 30));

    // The distribution gate sees the 10% shift...
    let quantile = bench_check::check_distribution(&baseline, &fresh, &[], &GateOptions::new());
    assert!(!quantile.pass());

    // ...but `--legacy-tolerance 0.35` pins every row to the old gate.
    let report = bench_check::check_distribution(&baseline, &fresh, &[], &legacy_035());
    assert!(report.rows.iter().all(|r| r.mode == GateMode::Legacy));
    assert!(report.pass());
    // And the legacy gate still has teeth where it always did.
    let mut tight = legacy_035();
    tight.tolerances.default = 0.05;
    assert!(!bench_check::check_distribution(&baseline, &fresh, &[], &tight).pass());
}

#[test]
fn runs_diff_matches_identical_payloads_and_pinpoints_the_rest() {
    // Two runs produce bit-identical bench JSON; a third differs.
    let payload_a = b"{\"format\": 2, \"benchmarks\": []}\n";
    let payload_b = b"{\"format\": 2, \"benchmarks\": [1]}\n";
    let mut journal = String::new();
    let stamp = |path: &str, payload: &[u8], secs: u64| {
        let prov = Provenance::capture("bench-json").with_content_address(payload);
        eval_trace::provenance::journal_line(Path::new(path), &prov, secs)
    };
    journal.push_str(&stamp("target/run1/BENCH.json", payload_a, 100));
    journal.push('\n');
    journal.push_str(&stamp("target/run2/BENCH.json", payload_a, 200));
    journal.push('\n');
    journal.push_str(&stamp("target/run3/BENCH.json", payload_b, 300));
    journal.push('\n');

    let entries = runs::parse_journal(&journal);
    assert_eq!(entries.len(), 3);

    // Bit-identical artifacts share a content address.
    let same = runs::render_diff(&entries[0], &entries[1]);
    assert!(same.contains("bit-identical"), "{same}");
    let addr = entries[0]
        .provenance
        .content_address
        .as_deref()
        .expect("stamped");
    assert!(same.contains(addr));

    // A differing artifact is pinpointed down to the provenance field.
    let differ = runs::render_diff(
        runs::find(&entries, "run2/BENCH.json").expect("path suffix resolves"),
        runs::find(&entries, "run3/BENCH.json").expect("path suffix resolves"),
    );
    assert!(differ.contains("payloads differ"), "{differ}");
    assert!(differ.contains("content_address"), "{differ}");
    // Same builder, same repo state: only the payload differs.
    assert!(!differ.contains("git_revision"), "{differ}");
}
