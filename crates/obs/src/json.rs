//! Re-export shim: the JSON parser moved into `eval_trace::json` so the
//! checkpoint layer in `eval-adapt` (which depends only on `eval-trace`)
//! can read sidecar records with the same reader. Existing
//! `eval_obs::json::*` paths keep working through this module.

pub use eval_trace::json::{Json, JsonError};
