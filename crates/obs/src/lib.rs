//! # eval-obs — telemetry consumers for the EVAL reproduction
//!
//! `eval-trace` is the *emit* side of observability: campaign and
//! runtime code produce deterministic JSONL traces, metrics, and spans.
//! This crate is the *consume* side:
//!
//! * [`analyze`] — streaming trace analysis: folds a JSONL trace into
//!   per-scheme / per-chip / per-phase rollups with digest quantiles,
//!   fuzzy-vs-exhaustive frequency deltas, binding-constraint
//!   breakdowns, and `SolveCache` hit rates (`eval-obs analyze`);
//! * [`progress`] — [`progress::ProgressSink`], a `TraceSink` decorator
//!   that heartbeats live campaign progress to stderr while forwarding
//!   every record verbatim (the `--progress` flag);
//! * [`expose`] — Prometheus-text exposition of a metric registry
//!   snapshot, written at end-of-run (`--metrics-out`) and optionally
//!   served over `std::net` (`eval-obs serve`);
//! * [`bench_check`] — the bench regression gate comparing a fresh
//!   `BENCH_hotpath.json` against the committed baseline and the pooled
//!   `BENCH_history.jsonl` distribution (`eval-obs bench-check`, wired
//!   onto tier-1);
//! * [`stats`] — the decile / effect-size / permutation-test machinery
//!   behind the quantile gate;
//! * [`runs`] — the provenance run journal: list, show, and diff any
//!   two stamped artifacts (`eval-obs runs`).
//!
//! Everything is std-only: the consume side honors the same
//! offline-build constraint as the emit side, including the local JSON
//! parser in [`json`] (the `eval-rng` dependency behind the permutation
//! test is workspace-local).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bench_check;
pub mod expose;
pub mod json;
pub mod progress;
pub mod runs;
pub mod stats;

pub use analyze::{analyze_reader, Analysis, Analyzer, AnalyzeError};
pub use bench_check::{
    append_history, check, check_distribution, load_history, parse_history, BenchFile,
    CheckReport, GateMode, GateOptions, HistoryRecord, Tolerances,
};
pub use expose::{prometheus, write_prometheus, MetricsServer};
pub use json::{Json, JsonError};
pub use progress::ProgressSink;
pub use runs::{find, load_journal, parse_journal, RunEntry};
pub use stats::{deciles, effect_size, quantile_gate, EffectSize, GateConfig, GateVerdict};
