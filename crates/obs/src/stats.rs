//! Decile and effect-size statistics for the bench regression gate.
//!
//! The legacy gate compared one median against one median with a fixed
//! ratio tolerance — blind to tail-only regressions and flaky on noisy
//! machines. This module implements the distribution-aware replacement
//! (after the timing-oracle approach referenced in ROADMAP's
//! "statistical rigor" item):
//!
//! 1. summarize baseline and fresh sample vectors by their **nine
//!    deciles** (P10..P90, linear interpolation);
//! 2. report an **effect size** — the worst decile shift in
//!    nanoseconds, and as a fraction of the baseline spread (P90−P10) —
//!    instead of a bare ratio;
//! 3. gate with a **permutation test**: the observed worst-decile shift
//!    is significant only if it exceeds the `(1−α)` quantile of the
//!    same statistic under random relabelings of the pooled samples,
//!    which bounds the false-positive rate at α by construction;
//! 4. require the shift to also be **material** (a configurable
//!    fraction of the baseline median), so statistically-real but
//!    irrelevant nanosecond drifts never fail a build.
//!
//! Everything is deterministic: the permutation RNG is a seeded
//! [`ChaCha12Rng`], so the same inputs always produce the same verdict.

use eval_rng::ChaCha12Rng;

/// Minimum sample count per side for a decile comparison to mean
/// anything. Below this the caller should fall back to the legacy
/// ratio gate.
pub const MIN_SAMPLES: usize = 5;

/// The nine deciles (P10, P20, .. P90) of a sample vector, by linear
/// interpolation on the sorted samples. `None` for fewer than two
/// samples (a single point has no distribution).
pub fn deciles(samples: &[f64]) -> Option<[f64; 9]> {
    if samples.len() < 2 {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut out = [0.0; 9];
    for (i, slot) in out.iter_mut().enumerate() {
        let q = (i + 1) as f64 / 10.0;
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        *slot = sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    }
    Some(out)
}

/// The median (P50) of a sample vector, or `None` when empty.
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    Some(if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    })
}

/// How far a fresh distribution sits from its baseline, summarized over
/// the nine deciles. Positive shifts mean "fresh is slower".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectSize {
    /// Shift of the median decile (P50), in nanoseconds.
    pub median_shift_ns: f64,
    /// The largest decile shift, in nanoseconds (signed; the worst
    /// *slowdown* when positive).
    pub max_shift_ns: f64,
    /// Which decile shifted the most (1..=9, i.e. P10..P90).
    pub worst_decile: usize,
    /// Baseline spread: P90 − P10, in nanoseconds (floored, see
    /// [`spread_floor`]).
    pub spread_ns: f64,
    /// `max_shift_ns / spread_ns` — the effect in units of baseline
    /// noise; the scale-free number to read first.
    pub shift_frac_of_spread: f64,
}

/// The spread floor: a degenerate baseline (all samples equal) must not
/// turn a division into infinity, so the spread is floored at one
/// part-per-million of the median's magnitude (or an absolute epsilon
/// for all-zero samples).
fn spread_floor(p10: f64, p90: f64, median: f64) -> f64 {
    (p90 - p10).max(median.abs() * 1e-6).max(1e-12)
}

/// The effect size of `fresh` relative to `baseline`, or `None` when
/// either side has fewer than two samples.
pub fn effect_size(baseline: &[f64], fresh: &[f64]) -> Option<EffectSize> {
    let base = deciles(baseline)?;
    let new = deciles(fresh)?;
    Some(effect_from_deciles(&base, &new))
}

fn effect_from_deciles(base: &[f64; 9], fresh: &[f64; 9]) -> EffectSize {
    let spread = spread_floor(base[0], base[8], base[4]);
    let mut max_shift = f64::NEG_INFINITY;
    let mut worst = 1;
    for i in 0..9 {
        let shift = fresh[i] - base[i];
        if shift > max_shift {
            max_shift = shift;
            worst = i + 1;
        }
    }
    EffectSize {
        median_shift_ns: fresh[4] - base[4],
        max_shift_ns: max_shift,
        worst_decile: worst,
        spread_ns: spread,
        shift_frac_of_spread: max_shift / spread,
    }
}

/// Tuning for [`quantile_gate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Permutation-test false-positive bound (per benchmark).
    pub alpha: f64,
    /// Permutation relabelings used to estimate the null distribution.
    pub trials: usize,
    /// A shift must also be at least this fraction of the baseline
    /// median to count as a regression (materiality floor).
    pub min_effect_frac: f64,
    /// Seed of the permutation RNG — fixed so verdicts are
    /// reproducible.
    pub seed: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            alpha: 0.01,
            trials: 500,
            min_effect_frac: 0.05,
            seed: 0x4556_414c,
        }
    }
}

/// One benchmark's quantile-gate verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateVerdict {
    /// The observed effect size.
    pub effect: EffectSize,
    /// Observed statistic: worst decile shift in units of baseline
    /// spread (same value as `effect.shift_frac_of_spread`).
    pub statistic: f64,
    /// `(1−α)` quantile of the statistic under permutation — the bar
    /// the observation must clear to be significant.
    pub threshold: f64,
    /// `statistic > threshold`.
    pub significant: bool,
    /// `effect.max_shift_ns ≥ min_effect_frac × baseline median`.
    pub material: bool,
    /// The gate fires only when the shift is significant *and*
    /// material.
    pub regression: bool,
    /// Baseline samples used.
    pub baseline_n: usize,
    /// Fresh samples used.
    pub fresh_n: usize,
}

/// Statistic for one labeled split of samples: worst decile shift of
/// `fresh` over `baseline`, in units of baseline spread.
fn split_statistic(baseline: &[f64], fresh: &[f64]) -> Option<f64> {
    Some(effect_size(baseline, fresh)?.shift_frac_of_spread)
}

/// The distribution-aware regression gate.
///
/// `None` when either side has fewer than [`MIN_SAMPLES`] samples —
/// callers fall back to the legacy ratio gate. Otherwise runs the
/// permutation test described in the module docs and returns the full
/// verdict (never panics; fully deterministic for fixed inputs and
/// config).
pub fn quantile_gate(baseline: &[f64], fresh: &[f64], cfg: &GateConfig) -> Option<GateVerdict> {
    if baseline.len() < MIN_SAMPLES || fresh.len() < MIN_SAMPLES {
        return None;
    }
    let effect = effect_size(baseline, fresh)?;
    let statistic = effect.shift_frac_of_spread;

    // Null distribution: the same statistic under random relabelings of
    // the pooled samples. Under "no change" the labels are arbitrary,
    // so observed >> null happens with probability ≤ α.
    let mut pool: Vec<f64> = Vec::with_capacity(baseline.len() + fresh.len());
    pool.extend_from_slice(baseline);
    pool.extend_from_slice(fresh);
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
    let trials = cfg.trials.max(1);
    let mut null_stats: Vec<f64> = Vec::with_capacity(trials);
    for _ in 0..trials {
        // Fisher–Yates over the pool, then split at the fresh count.
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        let (pseudo_fresh, pseudo_base) = pool.split_at(fresh.len());
        if let Some(stat) = split_statistic(pseudo_base, pseudo_fresh) {
            null_stats.push(stat);
        }
    }
    null_stats.sort_by(|a, b| a.total_cmp(b));
    let idx = ((null_stats.len() as f64) * (1.0 - cfg.alpha)).ceil() as usize;
    let threshold = null_stats[idx.min(null_stats.len() - 1)];

    let baseline_median = median(baseline).unwrap_or(0.0);
    let significant = statistic > threshold;
    let material = effect.max_shift_ns >= cfg.min_effect_frac * baseline_median.abs();
    Some(GateVerdict {
        effect,
        statistic,
        threshold,
        significant,
        material,
        regression: significant && material,
        baseline_n: baseline.len(),
        fresh_n: fresh.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deciles_interpolate_linearly() {
        // 0..=10 inclusive: P10 = 1.0, P50 = 5.0, P90 = 9.0 exactly.
        let samples: Vec<f64> = (0..=10).map(f64::from).collect();
        let d = deciles(&samples).expect("enough samples");
        assert_eq!(d[0], 1.0);
        assert_eq!(d[4], 5.0);
        assert_eq!(d[8], 9.0);
        // Two samples: pure interpolation between them.
        let d2 = deciles(&[0.0, 10.0]).expect("two samples");
        assert!((d2[0] - 1.0).abs() < 1e-12);
        assert!((d2[8] - 9.0).abs() < 1e-12);
        assert_eq!(deciles(&[1.0]), None);
    }

    #[test]
    fn median_handles_even_and_odd_counts() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn effect_size_of_a_pure_shift_is_the_shift() {
        let base: Vec<f64> = (0..20).map(|i| 1000.0 + f64::from(i)).collect();
        let fresh: Vec<f64> = base.iter().map(|v| v + 50.0).collect();
        let e = effect_size(&base, &fresh).expect("enough samples");
        assert!((e.median_shift_ns - 50.0).abs() < 1e-9);
        assert!((e.max_shift_ns - 50.0).abs() < 1e-9);
        assert!((e.spread_ns - 15.2).abs() < 1e-9); // P90−P10 of 0..19 offsets
        assert!(e.shift_frac_of_spread > 3.0);
    }

    #[test]
    fn effect_size_localizes_a_tail_only_regression() {
        let base: Vec<f64> = (0..50).map(|i| 1000.0 + f64::from(i % 10)).collect();
        // Slow down only the top ~20% of fresh samples.
        let fresh: Vec<f64> = (0..50)
            .map(|i| {
                let v = 1000.0 + f64::from(i % 10);
                if i >= 40 {
                    v + 100.0
                } else {
                    v
                }
            })
            .collect();
        let e = effect_size(&base, &fresh).expect("enough samples");
        assert!(e.median_shift_ns.abs() < 5.0, "median barely moves");
        assert!(e.max_shift_ns > 50.0, "tail shift is visible");
        assert_eq!(e.worst_decile, 9, "and it is localized at P90");
    }

    #[test]
    fn degenerate_baseline_spread_is_floored() {
        let base = vec![1000.0; 10];
        let fresh = vec![1100.0; 10];
        let e = effect_size(&base, &fresh).expect("enough samples");
        assert!(e.spread_ns > 0.0);
        assert!(e.shift_frac_of_spread.is_finite());
    }

    #[test]
    fn gate_needs_min_samples_per_side() {
        let cfg = GateConfig::default();
        let short = vec![1.0; MIN_SAMPLES - 1];
        let long = vec![1.0; MIN_SAMPLES];
        assert!(quantile_gate(&short, &long, &cfg).is_none());
        assert!(quantile_gate(&long, &short, &cfg).is_none());
        assert!(quantile_gate(&long, &long, &cfg).is_some());
    }

    #[test]
    fn gate_fires_on_a_large_shift_and_not_on_identical_samples() {
        let cfg = GateConfig::default();
        let base: Vec<f64> = (0..30).map(|i| 1000.0 + f64::from(i % 7)).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v * 1.10).collect();
        let v = quantile_gate(&base, &shifted, &cfg).expect("enough samples");
        assert!(v.significant && v.material && v.regression);
        let same = quantile_gate(&base, &base.clone(), &cfg).expect("enough samples");
        assert!(!same.regression, "identical distributions must pass");
    }

    #[test]
    fn significant_but_immaterial_shift_does_not_fire() {
        // A perfectly clean 0.1% shift: statistically unambiguous,
        // but far below the 5% materiality floor.
        let base: Vec<f64> = (0..40).map(|i| 1000.0 + f64::from(i % 5) * 0.01).collect();
        let fresh: Vec<f64> = base.iter().map(|v| v + 1.0).collect();
        let cfg = GateConfig::default();
        let v = quantile_gate(&base, &fresh, &cfg).expect("enough samples");
        assert!(v.significant, "the shift is way outside noise");
        assert!(!v.material, "but 1 ns on a 1000 ns median is immaterial");
        assert!(!v.regression);
    }

    #[test]
    fn verdict_is_deterministic_for_fixed_seed() {
        let base: Vec<f64> = (0..25).map(|i| 500.0 + f64::from(i * 3 % 11)).collect();
        let fresh: Vec<f64> = (0..25).map(|i| 502.0 + f64::from(i * 5 % 13)).collect();
        let cfg = GateConfig::default();
        let a = quantile_gate(&base, &fresh, &cfg).expect("enough samples");
        let b = quantile_gate(&base, &fresh, &cfg).expect("enough samples");
        assert_eq!(a, b);
    }
}
