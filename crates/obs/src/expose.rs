//! Prometheus-style metrics exposition.
//!
//! [`prometheus`] renders a [`Registry`] snapshot in the Prometheus
//! text exposition format (version 0.0.4): counters and gauges as
//! single samples, histograms as cumulative `_bucket{le="..."}` series
//! plus `_sum`/`_count`. Metric names are sanitized to the Prometheus
//! charset and prefixed `eval_`. The registry iterates in sorted name
//! order, so the rendering is deterministic.
//!
//! [`MetricsServer`] serves a snapshot **file** over plain
//! `std::net::TcpListener` — no HTTP library, by the offline-build
//! constraint. Campaign binaries write the snapshot at end-of-run
//! (`--metrics-out <path>`); `eval-obs serve` re-reads the file on
//! every scrape, so a long campaign can be watched by pointing the
//! server at the path the next run will overwrite.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::Path;

use eval_trace::Registry;

/// Sanitizes a metric name to the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and prefixes `eval_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("eval_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("NaN");
    }
}

/// Renders the registry in the Prometheus text exposition format.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in registry.gauges() {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        out.push_str(&n);
        out.push(' ');
        push_num(&mut out, value);
        out.push('\n');
    }
    for (name, h) in registry.histograms() {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        // Prometheus buckets are cumulative and `le` is inclusive; our
        // digest is lower-inclusive, so a value exactly on a boundary
        // sits one bucket higher than `le` would place it. The
        // boundaries are reported verbatim — the off-by-one-observation
        // skew only affects values exactly on a bound.
        let mut cumulative: u64 = 0;
        for (bound, count) in h.bounds().iter().zip(h.counts()) {
            cumulative += count;
            out.push_str(&n);
            out.push_str("_bucket{le=\"");
            push_num(&mut out, *bound);
            let _ = writeln!(out, "\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        out.push_str(&n);
        out.push_str("_sum ");
        push_num(&mut out, h.sum());
        out.push('\n');
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

/// Writes the snapshot to `path` (the `--metrics-out` target),
/// atomically: a scraper (or `eval-obs serve`) re-reading the file mid
/// write sees the old complete snapshot, never a torn one.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_prometheus(registry: &Registry, path: &Path) -> std::io::Result<()> {
    eval_trace::write_atomic(path, prometheus(registry).as_bytes())
}

/// A minimal scrape endpoint over `std::net` (no HTTP dependency).
#[derive(Debug)]
pub struct MetricsServer {
    listener: TcpListener,
}

impl MetricsServer {
    /// Binds the listener (`127.0.0.1:0` picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections and answers every request with the current
    /// contents of `path` (re-read per scrape). Serves forever when
    /// `max_requests` is `None`, else returns after that many
    /// responses — `Some(1)` is the `--once` testing mode.
    ///
    /// # Errors
    ///
    /// Propagates accept failures; per-connection I/O errors are
    /// ignored (the scraper retries).
    pub fn serve_path(&self, path: &Path, max_requests: Option<u64>) -> std::io::Result<u64> {
        let mut served = 0u64;
        for conn in self.listener.incoming() {
            let mut stream = conn?;
            // Drain the request line + headers (best effort; we answer
            // every request the same way).
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let response = match std::fs::read_to_string(path) {
                Ok(body) => format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                ),
                Err(e) => {
                    let body = format!("metrics file {}: {e}\n", path.display());
                    format!(
                        "HTTP/1.0 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    )
                }
            };
            let _ = stream.write_all(response.as_bytes());
            let _ = stream.flush();
            served += 1;
            if max_requests.is_some_and(|max| served >= max) {
                break;
            }
        }
        Ok(served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_trace::{names, MetricUpdate};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.register_histogram(names::DECISION_LATENCY_US, &[10.0, 100.0]);
        r.apply(&MetricUpdate::CounterAdd(names::SOLVER_CACHE_HITS.into(), 9));
        r.apply(&MetricUpdate::GaugeSet("campaign.phase".into(), 2.0));
        r.apply(&MetricUpdate::Observe(names::DECISION_LATENCY_US.into(), 50.0));
        r.apply(&MetricUpdate::Observe(names::DECISION_LATENCY_US.into(), 500.0));
        r
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_buckets() {
        let text = prometheus(&sample_registry());
        assert!(text.contains("# TYPE eval_solver_cache_hits counter"), "{text}");
        assert!(text.contains("eval_solver_cache_hits 9"), "{text}");
        assert!(text.contains("eval_campaign_phase 2.0"), "{text}");
        assert!(text.contains("eval_decision_latency_us_bucket{le=\"10.0\"} 0"), "{text}");
        assert!(text.contains("eval_decision_latency_us_bucket{le=\"100.0\"} 1"), "{text}");
        assert!(text.contains("eval_decision_latency_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("eval_decision_latency_us_sum 550.0"), "{text}");
        assert!(text.contains("eval_decision_latency_us_count 2"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(prometheus(&sample_registry()), prometheus(&sample_registry()));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("decision.latency.global-dvfs_us"), "eval_decision_latency_global_dvfs_us");
    }

    #[test]
    fn server_answers_a_scrape_with_the_file_contents() {
        let dir = std::env::temp_dir().join(format!("eval-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        std::fs::write(&path, "eval_x 1\n").unwrap();

        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.serve_path(&path, Some(1)));

        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.ends_with("eval_x 1\n"), "{response}");
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn server_reports_a_missing_file_as_503() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let missing = std::path::PathBuf::from("/nonexistent/eval-obs/metrics.prom");
        let handle = std::thread::spawn(move || server.serve_path(&missing, Some(1)));
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 503"), "{response}");
        handle.join().unwrap().unwrap();
    }
}
