//! The run journal: listing, inspecting, and diffing artifact
//! provenance.
//!
//! Writers stamp every final artifact with a [`Provenance`] record and,
//! when `EVAL_RUNS_JOURNAL` is set, append one `"kind":"run"` line per
//! artifact to a shared JSONL journal (see `eval_trace::provenance`).
//! This module is the read side behind `eval-obs runs`:
//!
//! * `list` — every journaled artifact, newest last;
//! * `show <sel>` — one entry in full;
//! * `diff <a> <b>` — compare two entries by provenance: bit-identical
//!   payloads share a content address, anything else is pinpointed
//!   field by field.
//!
//! Selectors are resolved in order: journal index (as printed by
//! `list`), content-address prefix, then path suffix (latest match
//! wins, so `diff BENCH_a.json BENCH_b.json` does what it reads as).

use std::path::Path;

use eval_trace::provenance::Provenance;

use crate::json::Json;

/// One journaled artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEntry {
    /// Position in the journal (0-based, as printed by `list`).
    pub index: usize,
    /// Unix timestamp of the journal append.
    pub unix_secs: u64,
    /// Artifact path as recorded by the writer.
    pub path: String,
    /// The artifact's provenance stamp.
    pub provenance: Provenance,
}

/// Parses journal text into entries. Tolerant by design: non-JSON
/// lines, wrong-kind records, and entries without a parsable provenance
/// object are skipped (a journal shared by many writers should never
/// make `runs list` unusable).
pub fn parse_journal(text: &str) -> Vec<RunEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Ok(v) = Json::parse(line) else { continue };
        if v.str_field("kind") != Some("run") {
            continue;
        }
        let Some(path) = v.str_field("path") else {
            continue;
        };
        let Some(prov) = v.get("provenance").and_then(Provenance::from_json) else {
            continue;
        };
        out.push(RunEntry {
            index: out.len(),
            unix_secs: v.u64_field("unix_secs").unwrap_or(0),
            path: path.to_string(),
            provenance: prov,
        });
    }
    out
}

/// Loads and parses the journal at `path`.
///
/// # Errors
///
/// Any I/O error reading the file.
pub fn load_journal(path: &Path) -> std::io::Result<Vec<RunEntry>> {
    Ok(parse_journal(&std::fs::read_to_string(path)?))
}

/// Resolves a selector against the journal: numeric index first, then
/// content-address prefix, then path suffix. Later entries win ties so
/// a bare filename picks the most recent run of that artifact.
pub fn find<'a>(entries: &'a [RunEntry], selector: &str) -> Option<&'a RunEntry> {
    if let Ok(idx) = selector.parse::<usize>() {
        return entries.get(idx);
    }
    let by_addr = entries.iter().rev().find(|e| {
        e.provenance
            .content_address
            .as_deref()
            .is_some_and(|a| a.starts_with(selector))
    });
    if by_addr.is_some() {
        return by_addr;
    }
    entries.iter().rev().find(|e| e.path.ends_with(selector))
}

fn short(hash: Option<&str>) -> String {
    match hash {
        Some(h) => h.chars().take(12).collect(),
        None => "-".to_string(),
    }
}

/// The `runs list` table (deterministic; journal order).
pub fn render_list(entries: &[RunEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:<14} {:<13} {:<13} {:>11}  {}\n",
        "idx", "artifact", "address", "revision", "unix_secs", "path"
    ));
    for e in entries {
        out.push_str(&format!(
            "{:>4}  {:<14} {:<13} {:<13} {:>11}  {}\n",
            e.index,
            e.provenance.artifact,
            short(e.provenance.content_address.as_deref()),
            short(Some(&e.provenance.git_revision)),
            e.unix_secs,
            e.path,
        ));
    }
    out.push_str(&format!("{} run(s)\n", entries.len()));
    out
}

/// The `runs show` detail view for one entry.
pub fn render_show(entry: &RunEntry) -> String {
    let p = &entry.provenance;
    let mut out = String::new();
    out.push_str(&format!("run #{} — {}\n", entry.index, entry.path));
    out.push_str(&format!("  artifact:           {}\n", p.artifact));
    out.push_str(&format!(
        "  content_address:    {}\n",
        p.content_address.as_deref().unwrap_or("-")
    ));
    out.push_str(&format!("  git_revision:       {}\n", p.git_revision));
    out.push_str(&format!("  host:               {}\n", p.host));
    out.push_str(&format!(
        "  config_fingerprint: {}\n",
        p.config_fingerprint.as_deref().unwrap_or("-")
    ));
    out.push_str(&format!("  schema_hash:        {}\n", p.schema_hash));
    out.push_str(&format!("  unix_secs:          {}\n", entry.unix_secs));
    out
}

/// The `runs diff` report between two entries. Matching content
/// addresses mean bit-identical payloads (remaining provenance
/// differences are context, reported as such); otherwise every
/// differing provenance field is pinpointed.
pub fn render_diff(a: &RunEntry, b: &RunEntry) -> String {
    let mut out = String::new();
    out.push_str(&format!("a: run #{} — {}\n", a.index, a.path));
    out.push_str(&format!("b: run #{} — {}\n", b.index, b.path));
    let same_payload = matches!(
        (&a.provenance.content_address, &b.provenance.content_address),
        (Some(x), Some(y)) if x == y
    );
    let diffs = a.provenance.diff(&b.provenance);
    if same_payload {
        out.push_str(&format!(
            "payload: bit-identical (content address {})\n",
            a.provenance.content_address.as_deref().unwrap_or("-"),
        ));
        if diffs.is_empty() {
            out.push_str("provenance: identical\n");
        } else {
            out.push_str("provenance context differs:\n");
        }
    } else if diffs.is_empty() {
        out.push_str("provenance: identical\n");
    } else {
        out.push_str("payloads differ:\n");
    }
    for (field, va, vb) in &diffs {
        out.push_str(&format!("  {field:<18} a={va}  b={vb}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_trace::provenance::{hex64, journal_line};

    fn prov(artifact: &str, addr: Option<u64>, rev: &str, cfg: Option<u64>) -> Provenance {
        Provenance {
            artifact: artifact.to_string(),
            content_address: addr.map(hex64),
            git_revision: rev.to_string(),
            host: hex64(0xbeef),
            config_fingerprint: cfg.map(hex64),
            schema_hash: hex64(0xfeed),
        }
    }

    fn journal() -> String {
        let mut text = String::from("# comment line\nnot json\n");
        for (i, (path, p)) in [
            (
                "target/BENCH_a.json",
                prov("bench-json", Some(0xa111_0000_0000_1111), "rev1", None),
            ),
            (
                "target/BENCH_b.json",
                prov("bench-json", Some(0xa111_0000_0000_1111), "rev2", None),
            ),
            (
                "target/trace.jsonl",
                prov("trace-jsonl", Some(0xb222_0000_0000_2222), "rev2", Some(7)),
            ),
        ]
        .iter()
        .enumerate()
        {
            text.push_str(&journal_line(Path::new(path), p, 100 + i as u64));
            text.push('\n');
        }
        text
    }

    #[test]
    fn parse_journal_skips_junk_and_indexes_entries() {
        let entries = parse_journal(&journal());
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].index, 0);
        assert_eq!(entries[2].path, "target/trace.jsonl");
        assert_eq!(entries[2].unix_secs, 102);
        assert_eq!(entries[2].provenance.config_fingerprint, Some(hex64(7)));
    }

    #[test]
    fn find_resolves_index_address_prefix_and_path_suffix() {
        let entries = parse_journal(&journal());
        assert_eq!(find(&entries, "1").map(|e| e.index), Some(1));
        let addr_prefix = &hex64(0xb222_0000_0000_2222)[..6];
        assert_eq!(find(&entries, addr_prefix).map(|e| e.index), Some(2));
        assert_eq!(find(&entries, "BENCH_a.json").map(|e| e.index), Some(0));
        // Shared-address selector resolves to the latest entry.
        assert_eq!(
            find(&entries, &hex64(0xa111_0000_0000_1111)).map(|e| e.index),
            Some(1)
        );
        assert_eq!(find(&entries, "no-such-thing"), None);
    }

    #[test]
    fn diff_reports_bit_identical_payloads_with_context() {
        let entries = parse_journal(&journal());
        let report = render_diff(&entries[0], &entries[1]);
        assert!(report.contains("bit-identical"));
        assert!(report.contains(&hex64(0xa111_0000_0000_1111)));
        assert!(report.contains("git_revision"));
        assert!(report.contains("a=rev1"));
    }

    #[test]
    fn diff_pinpoints_differing_fields() {
        let entries = parse_journal(&journal());
        let report = render_diff(&entries[1], &entries[2]);
        assert!(report.contains("payloads differ"));
        assert!(report.contains("content_address"));
        assert!(report.contains("artifact"));
        assert!(report.contains("config_fingerprint"));
    }

    #[test]
    fn list_renders_every_entry() {
        let entries = parse_journal(&journal());
        let listing = render_list(&entries);
        assert!(listing.contains("3 run(s)"));
        assert!(listing.contains("target/BENCH_b.json"));
        assert!(listing.contains("bench-json"));
        let shown = render_show(&entries[2]);
        assert!(shown.contains("trace-jsonl"));
        assert!(shown.contains(&hex64(7)));
    }
}
