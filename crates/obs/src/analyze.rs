//! Streaming analysis of a campaign trace (`*.jsonl`).
//!
//! [`Analyzer`] folds a JSONL trace line-by-line — it never holds the
//! whole file — into per-scheme, per-chip, and per-phase rollups:
//!
//! * decision counts, chosen-frequency statistics, and error-rate digest
//!   quantiles per scheme (rebuilt from the deterministic decision
//!   events with the same fixed bucket boundaries the collector uses);
//! * decision-latency p50/p95/p99 per scheme, reconstructed from the
//!   trace's own histogram snapshot lines via
//!   [`Histogram::from_parts`] (wall-clock data: deterministic given
//!   the file, not across re-runs of the producer);
//! * fuzzy-vs-exhaustive frequency deltas, joined on
//!   `(chip, env, workload, phase)`;
//! * binding-constraint and retune-outcome breakdowns;
//! * `SolveCache` hit rates and the full counter/gauge snapshot.
//!
//! Every container is a `BTreeMap`, so the rendered report is a pure
//! function of the input bytes — the golden test relies on this.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

use eval_trace::json::JsonObject;
use eval_trace::provenance::Provenance;
use eval_trace::{names, Histogram};

use crate::json::Json;

/// Chosen-frequency digest boundaries — the retuning ladder in 250 MHz
/// steps, mirroring the collector's `decision.f_ghz` histogram.
const F_GHZ_BOUNDS: [f64; 13] = [
    2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0,
];

/// Error-rate digest boundaries — decades around the `PEMAX = 1e-4`
/// constraint, mirroring the collector's `decision.pe_per_instruction`.
const PE_BOUNDS: [f64; 8] = [1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// A malformed trace line (bad JSON or a record missing required fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    /// 1-based line number in the input stream.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AnalyzeError {}

/// Rollup for one decision scheme (`static`, `fuzzy`, `exhaustive`, ...).
#[derive(Debug, Clone)]
pub struct SchemeRollup {
    /// Decisions observed.
    pub decisions: u64,
    /// Sum of chosen frequencies (for the mean).
    pub f_sum: f64,
    /// Minimum chosen frequency.
    pub f_min: f64,
    /// Maximum chosen frequency.
    pub f_max: f64,
    /// Chosen-frequency digest over the retuning ladder.
    pub f_digest: Histogram,
    /// Error-rate digest (decades around `PEMAX`).
    pub pe_digest: Histogram,
    /// Decisions by binding constraint at the chosen point.
    pub bindings: BTreeMap<String, u64>,
    /// Decisions by retune outcome (Figure 13 label).
    pub outcomes: BTreeMap<String, u64>,
    /// Total retune steps across decisions.
    pub retune_steps: u64,
    /// Total rejected retune probes across decisions.
    pub rejected: u64,
}

impl Default for SchemeRollup {
    fn default() -> Self {
        Self {
            decisions: 0,
            f_sum: 0.0,
            f_min: f64::INFINITY,
            f_max: f64::NEG_INFINITY,
            f_digest: Histogram::new(&F_GHZ_BOUNDS),
            pe_digest: Histogram::new(&PE_BOUNDS),
            bindings: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            retune_steps: 0,
            rejected: 0,
        }
    }
}

impl SchemeRollup {
    /// Mean chosen frequency (0 when no decisions).
    pub fn f_mean(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.f_sum / self.decisions as f64
        }
    }
}

/// Rollup keyed by chip index or phase index: decision count and mean
/// chosen frequency.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupRollup {
    /// Decisions in the group.
    pub decisions: u64,
    /// Sum of chosen frequencies.
    pub f_sum: f64,
}

impl GroupRollup {
    /// Mean chosen frequency (0 when no decisions).
    pub fn f_mean(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.f_sum / self.decisions as f64
        }
    }
}

/// Fuzzy-vs-exhaustive chosen-frequency comparison, joined on
/// `(chip, env, workload, phase)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreqDelta {
    /// Decision pairs present under both schemes.
    pub pairs: u64,
    /// Sum of `f_fuzzy - f_exhaustive` (signed).
    pub delta_sum: f64,
    /// Sum of `|f_fuzzy - f_exhaustive|`.
    pub abs_sum: f64,
    /// Largest `|f_fuzzy - f_exhaustive|`.
    pub abs_max: f64,
}

impl FreqDelta {
    /// Mean signed delta, GHz.
    pub fn mean(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.delta_sum / self.pairs as f64
        }
    }

    /// Mean absolute delta, GHz.
    pub fn mean_abs(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.abs_sum / self.pairs as f64
        }
    }
}

/// The folded trace: everything the report renders.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// `campaign-start` payload, when present: (chips, workloads, cells).
    pub campaign: Option<(u64, u64, u64)>,
    /// `chip-start` markers observed.
    pub chips_seen: u64,
    /// Total event lines.
    pub events: u64,
    /// Event counts by kind tag.
    pub events_by_kind: BTreeMap<String, u64>,
    /// Per-scheme rollups.
    pub schemes: BTreeMap<String, SchemeRollup>,
    /// Per-chip rollups (keyed by chip index).
    pub chips: BTreeMap<u64, GroupRollup>,
    /// Per-phase rollups (keyed by phase index).
    pub phases: BTreeMap<u64, GroupRollup>,
    /// Fuzzy-vs-exhaustive comparison.
    pub freq_delta: FreqDelta,
    /// Counter snapshot lines.
    pub counters: BTreeMap<String, u64>,
    /// Gauge snapshot lines.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshot lines, reconstructed as digests.
    pub digests: BTreeMap<String, Histogram>,
    /// Span lines: path -> (count, total nanoseconds).
    pub spans: BTreeMap<String, (u64, u128)>,
    /// The file ended in one unparseable final line — the signature of a
    /// write torn by a crash. The rest of the analysis is still valid.
    pub truncated_tail: bool,
    /// The trace's provenance footer, when the producer stamped one
    /// (`"kind":"provenance"`; last stamp wins).
    pub provenance: Option<Provenance>,
}

impl Analysis {
    /// `SolveCache` hit rate from the `solver.cache.*` counters, if the
    /// trace recorded any cache traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = *self.counters.get(names::SOLVER_CACHE_HITS)?;
        let misses = self.counters.get(names::SOLVER_CACHE_MISSES).copied().unwrap_or(0);
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Decision-latency digests (`decision.latency*_us`) with data, in
    /// name order.
    pub fn latency_digests(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.digests
            .iter()
            .filter(|(name, h)| name.starts_with(names::DECISION_LATENCY_PREFIX) && h.count() > 0)
            .map(|(name, h)| (name.as_str(), h))
    }

    /// Renders the human-readable report (deterministic for a given
    /// trace file — the golden test pins it).
    pub fn report_text(&self) -> String {
        let mut out = String::new();
        let w = &mut out;

        let _ = writeln!(w, "EVAL trace analysis");
        let _ = writeln!(w, "===================");
        match self.campaign {
            Some((chips, workloads, cells)) => {
                let _ = writeln!(
                    w,
                    "campaign: chips={chips} workloads={workloads} cells={cells} (chip markers: {})",
                    self.chips_seen
                );
            }
            None => {
                let _ = writeln!(w, "campaign: no campaign-start event (chip markers: {})", self.chips_seen);
            }
        }
        if let Some(resumed) = self.counters.get(names::CAMPAIGN_CHIPS_RESUMED) {
            let _ = writeln!(w, "resumed: {resumed} chips restored from a checkpoint sidecar");
        }
        if let Some(failed) = self.counters.get(names::CAMPAIGN_CHIPS_FAILED) {
            let _ = writeln!(w, "quarantined: {failed} chips failed and were excluded from averages");
        }
        if self.truncated_tail {
            let _ = writeln!(w, "WARNING: trace ends in a torn final line (crashed mid-write); tail dropped");
        }
        // Provenance lines render only for stamped traces, so reports
        // over pre-stamp golden traces are byte-identical.
        if let Some(p) = &self.provenance {
            let _ = writeln!(
                w,
                "provenance: {} addr={} rev={} host={}",
                p.artifact,
                p.content_address.as_deref().unwrap_or("-"),
                p.git_revision,
                p.host
            );
        }
        if let Some(stamped) = self.counters.get(names::PROVENANCE_ARTIFACTS) {
            let _ = writeln!(w, "provenance-stamped artifacts: {stamped}");
        }
        let _ = writeln!(w, "events: {}", self.events);
        for (kind, n) in &self.events_by_kind {
            let _ = writeln!(w, "  {kind:<28} {n:>10}");
        }

        if !self.schemes.is_empty() {
            let _ = writeln!(w, "\nscheme rollups");
            let _ = writeln!(w, "--------------");
            let _ = writeln!(
                w,
                "{:<12} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
                "scheme", "decisions", "f_mean", "f_min", "f_max", "f_p50", "retune", "rejected"
            );
            for (scheme, r) in &self.schemes {
                let p50 = r.f_digest.quantile(0.5).unwrap_or(0.0);
                let _ = writeln!(
                    w,
                    "{scheme:<12} {:>9} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8} {:>9}",
                    r.decisions, r.f_mean(), r.f_min, r.f_max, p50, r.retune_steps, r.rejected
                );
            }

            let _ = writeln!(w, "\nerror-rate digest (errors/instruction)");
            let _ = writeln!(
                w,
                "{:<12} {:>12} {:>12} {:>12}",
                "scheme", "pe_p50", "pe_p95", "pe_p99"
            );
            for (scheme, r) in &self.schemes {
                let q = |q: f64| r.pe_digest.quantile(q).unwrap_or(0.0);
                let _ = writeln!(
                    w,
                    "{scheme:<12} {:>12.3e} {:>12.3e} {:>12.3e}",
                    q(0.5),
                    q(0.95),
                    q(0.99)
                );
            }

            let _ = writeln!(w, "\nbinding constraints");
            for (scheme, r) in &self.schemes {
                for (binding, n) in &r.bindings {
                    let _ = writeln!(w, "  {:<28} {n:>10}", format!("{scheme}/{binding}"));
                }
            }

            let _ = writeln!(w, "\nretune outcomes");
            for (scheme, r) in &self.schemes {
                for (outcome, n) in &r.outcomes {
                    let _ = writeln!(w, "  {:<28} {n:>10}", format!("{scheme}/{outcome}"));
                }
            }
        }

        let latencies: Vec<_> = self.latency_digests().collect();
        if !latencies.is_empty() {
            let _ = writeln!(w, "\ndecision latency (us, wall-clock digests)");
            let _ = writeln!(
                w,
                "{:<32} {:>7} {:>9} {:>9} {:>9}",
                "digest", "n", "p50", "p95", "p99"
            );
            for (name, h) in latencies {
                let q = |q: f64| h.quantile(q).unwrap_or(0.0);
                let _ = writeln!(
                    w,
                    "{name:<32} {:>7} {:>9.1} {:>9.1} {:>9.1}",
                    h.count(),
                    q(0.5),
                    q(0.95),
                    q(0.99)
                );
            }
        }

        if self.freq_delta.pairs > 0 {
            let d = &self.freq_delta;
            let _ = writeln!(w, "\nfuzzy vs exhaustive frequency");
            let _ = writeln!(w, "  matched decisions: {}", d.pairs);
            let _ = writeln!(w, "  mean delta (fuzzy - exhaustive): {:+.4} GHz", d.mean());
            let _ = writeln!(
                w,
                "  mean |delta|: {:.4} GHz   max |delta|: {:.4} GHz",
                d.mean_abs(),
                d.abs_max
            );
        }

        match self.cache_hit_rate() {
            Some(rate) => {
                let hits = self.counters.get(names::SOLVER_CACHE_HITS).copied().unwrap_or(0);
                let misses = self.counters.get(names::SOLVER_CACHE_MISSES).copied().unwrap_or(0);
                let _ = writeln!(
                    w,
                    "\nsolver cache: hits={hits} misses={misses} hit_rate={:.1}%",
                    rate * 100.0
                );
                if let Some(iters) = self.counters.get(names::SOLVER_ITERATIONS) {
                    let _ = writeln!(w, "solver iterations: {iters}");
                }
            }
            None => {
                let _ = writeln!(w, "\nsolver cache: no data");
            }
        }

        if !self.chips.is_empty() {
            let _ = writeln!(w, "\nper-chip");
            let _ = writeln!(w, "{:<8} {:>9} {:>8}", "chip", "decisions", "f_mean");
            for (chip, r) in &self.chips {
                let _ = writeln!(w, "{chip:<8} {:>9} {:>8.3}", r.decisions, r.f_mean());
            }
        }

        if !self.phases.is_empty() {
            let _ = writeln!(w, "\nper-phase");
            let _ = writeln!(w, "{:<8} {:>9} {:>8}", "phase", "decisions", "f_mean");
            for (phase, r) in &self.phases {
                // u64::MAX is the "no phase" sentinel (whole-workload
                // decisions from the static scheme).
                let label = if *phase == u64::MAX {
                    "-".to_string()
                } else {
                    phase.to_string()
                };
                let _ = writeln!(w, "{label:<8} {:>9} {:>8.3}", r.decisions, r.f_mean());
            }
        }

        if !self.counters.is_empty() {
            let _ = writeln!(w, "\ncounters");
            for (name, v) in &self.counters {
                let _ = writeln!(w, "  {name:<40} {v:>12}");
            }
        }

        out
    }

    /// Renders the report as a single JSON object (one line, stable
    /// field order).
    pub fn report_json(&self) -> String {
        let schemes = {
            let mut o = JsonObject::new();
            for (scheme, r) in &self.schemes {
                let bindings = map_u64_json(&r.bindings);
                let outcomes = map_u64_json(&r.outcomes);
                let cell = JsonObject::new()
                    .u64("decisions", r.decisions)
                    .f64("f_mean", r.f_mean())
                    .f64("f_min", if r.decisions == 0 { 0.0 } else { r.f_min })
                    .f64("f_max", if r.decisions == 0 { 0.0 } else { r.f_max })
                    .f64("f_p50", r.f_digest.quantile(0.5).unwrap_or(0.0))
                    .f64("pe_p50", r.pe_digest.quantile(0.5).unwrap_or(0.0))
                    .f64("pe_p95", r.pe_digest.quantile(0.95).unwrap_or(0.0))
                    .f64("pe_p99", r.pe_digest.quantile(0.99).unwrap_or(0.0))
                    .u64("retune_steps", r.retune_steps)
                    .u64("rejected", r.rejected)
                    .raw("bindings", &bindings)
                    .raw("outcomes", &outcomes)
                    .finish();
                o = o.raw(scheme, &cell);
            }
            o.finish()
        };

        let latency = {
            let mut o = JsonObject::new();
            for (name, h) in self.latency_digests() {
                let cell = JsonObject::new()
                    .u64("count", h.count())
                    .f64("p50", h.quantile(0.5).unwrap_or(0.0))
                    .f64("p95", h.quantile(0.95).unwrap_or(0.0))
                    .f64("p99", h.quantile(0.99).unwrap_or(0.0))
                    .finish();
                o = o.raw(name, &cell);
            }
            o.finish()
        };

        let chips = {
            let mut o = JsonObject::new();
            for (chip, r) in &self.chips {
                let cell = JsonObject::new()
                    .u64("decisions", r.decisions)
                    .f64("f_mean", r.f_mean())
                    .finish();
                o = o.raw(&chip.to_string(), &cell);
            }
            o.finish()
        };

        let delta = JsonObject::new()
            .u64("pairs", self.freq_delta.pairs)
            .f64("mean", self.freq_delta.mean())
            .f64("mean_abs", self.freq_delta.mean_abs())
            .f64("max_abs", self.freq_delta.abs_max)
            .finish();

        let cache = match self.cache_hit_rate() {
            Some(rate) => JsonObject::new()
                .u64("hits", self.counters.get(names::SOLVER_CACHE_HITS).copied().unwrap_or(0))
                .u64("misses", self.counters.get(names::SOLVER_CACHE_MISSES).copied().unwrap_or(0))
                .f64("hit_rate", rate)
                .finish(),
            None => "null".to_string(),
        };

        let campaign = match self.campaign {
            Some((chips, workloads, cells)) => JsonObject::new()
                .u64("chips", chips)
                .u64("workloads", workloads)
                .u64("cells", cells)
                .finish(),
            None => "null".to_string(),
        };

        let provenance = match &self.provenance {
            Some(p) => p.to_json(),
            None => "null".to_string(),
        };

        JsonObject::new()
            .raw("campaign", &campaign)
            .u64("chips_seen", self.chips_seen)
            .u64("events", self.events)
            .raw("events_by_kind", &map_u64_json(&self.events_by_kind))
            .raw("schemes", &schemes)
            .raw("decision_latency", &latency)
            .raw("freq_delta", &delta)
            .raw("solver_cache", &cache)
            .raw("chips", &chips)
            .raw("counters", &map_u64_json(&self.counters))
            // Resume/quarantine accounting and the torn-tail flag are
            // always present in JSON (unlike the text report, which
            // keeps them conditional) so downstream consumers never
            // need existence checks.
            .u64(
                "chips_resumed",
                self.counters.get(names::CAMPAIGN_CHIPS_RESUMED).copied().unwrap_or(0),
            )
            .u64(
                "chips_failed",
                self.counters.get(names::CAMPAIGN_CHIPS_FAILED).copied().unwrap_or(0),
            )
            .raw("provenance", &provenance)
            .bool("truncated_tail", self.truncated_tail)
            .finish()
    }
}

fn map_u64_json(map: &BTreeMap<String, u64>) -> String {
    let mut o = JsonObject::new();
    for (k, v) in map {
        o = o.u64(k, *v);
    }
    o.finish()
}

/// Join key for the fuzzy-vs-exhaustive comparison.
type DecisionKey = (Option<u64>, String, String, u64);

/// The streaming folder. Feed lines, then [`Analyzer::finish`].
#[derive(Debug, Default)]
pub struct Analyzer {
    analysis: Analysis,
    line: usize,
    current_chip: Option<u64>,
    fuzzy_f: BTreeMap<DecisionKey, f64>,
    exhaustive_f: BTreeMap<DecisionKey, f64>,
}

impl Analyzer {
    /// An empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    fn err(&self, message: impl Into<String>) -> AnalyzeError {
        AnalyzeError {
            line: self.line,
            message: message.into(),
        }
    }

    /// Folds one JSONL line (blank lines are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] on malformed JSON or a record missing
    /// required fields.
    pub fn feed_line(&mut self, line: &str) -> Result<(), AnalyzeError> {
        self.line += 1;
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let v = Json::parse(line).map_err(|e| self.err(e.to_string()))?;
        match v.str_field("kind") {
            Some("event") => self.fold_event(&v),
            Some("counter") => {
                let name = v.str_field("name").ok_or_else(|| self.err("counter without name"))?;
                let value = v.u64_field("value").ok_or_else(|| self.err("counter without value"))?;
                *self.analysis.counters.entry(name.to_string()).or_insert(0) += value;
                Ok(())
            }
            Some("gauge") => {
                let name = v.str_field("name").ok_or_else(|| self.err("gauge without name"))?;
                let value = v.f64_field("value").ok_or_else(|| self.err("gauge without value"))?;
                self.analysis.gauges.insert(name.to_string(), value);
                Ok(())
            }
            Some("histogram") => self.fold_histogram(&v),
            Some("span") => {
                let path = v.str_field("path").ok_or_else(|| self.err("span without path"))?;
                let count = v.u64_field("count").unwrap_or(0);
                let total = v.u64_field("total_ns").unwrap_or(0) as u128;
                let entry = self.analysis.spans.entry(path.to_string()).or_insert((0, 0));
                entry.0 += count;
                entry.1 += total;
                Ok(())
            }
            Some("provenance") => {
                let prov = Provenance::from_json(&v)
                    .ok_or_else(|| self.err("provenance record without artifact"))?;
                self.analysis.provenance = Some(prov);
                Ok(())
            }
            Some(other) => Err(self.err(format!("unknown record kind `{other}`"))),
            None => Err(self.err("record without `kind`")),
        }
    }

    fn fold_histogram(&mut self, v: &Json) -> Result<(), AnalyzeError> {
        let name = v.str_field("name").ok_or_else(|| self.err("histogram without name"))?;
        let bounds: Vec<f64> = v
            .get("bounds")
            .and_then(Json::as_arr)
            .ok_or_else(|| self.err("histogram without bounds"))?
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        let counts: Vec<u64> = v
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or_else(|| self.err("histogram without counts"))?
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        let sum = v.f64_field("sum").unwrap_or(0.0);
        let digest = Histogram::from_parts(&bounds, &counts, sum)
            .map_err(|e| self.err(format!("histogram `{name}`: {e}")))?;
        match self.analysis.digests.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(digest);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                // Same metric from a second snapshot (concatenated
                // traces): digests merge.
                e.get_mut()
                    .merge(&digest)
                    .map_err(|e| self.err(format!("histogram `{name}`: {e}")))?;
            }
        }
        Ok(())
    }

    fn fold_event(&mut self, v: &Json) -> Result<(), AnalyzeError> {
        let kind = v.str_field("event").ok_or_else(|| self.err("event without `event` tag"))?;
        self.analysis.events += 1;
        *self
            .analysis
            .events_by_kind
            .entry(kind.to_string())
            .or_insert(0) += 1;
        let payload = v.get("payload").ok_or_else(|| self.err("event without payload"))?;
        match kind {
            "campaign-start" => {
                self.analysis.campaign = Some((
                    payload.u64_field("chips").unwrap_or(0),
                    payload.u64_field("workloads").unwrap_or(0),
                    payload.u64_field("cells").unwrap_or(0),
                ));
            }
            "chip-start" => {
                let chip = payload.u64_field("chip").ok_or_else(|| self.err("chip-start without chip"))?;
                self.analysis.chips_seen += 1;
                self.current_chip = Some(chip);
                self.analysis.chips.entry(chip).or_default();
            }
            "decision" => self.fold_decision(payload)?,
            _ => {}
        }
        Ok(())
    }

    fn fold_decision(&mut self, payload: &Json) -> Result<(), AnalyzeError> {
        let scheme = payload
            .str_field("scheme")
            .ok_or_else(|| self.err("decision without scheme"))?
            .to_string();
        let f_ghz = payload
            .f64_field("f_ghz")
            .ok_or_else(|| self.err("decision without f_ghz"))?;
        let pe = payload.f64_field("pe_per_instruction").unwrap_or(0.0);
        let phase = payload.u64_field("phase").unwrap_or(0);
        let binding = payload.str_field("binding").unwrap_or("unknown").to_string();
        let outcome = payload.str_field("outcome").unwrap_or("unknown").to_string();
        let retune_steps = payload.u64_field("retune_steps").unwrap_or(0);
        let rejected = payload
            .get("rejected")
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len() as u64);

        let r = self.analysis.schemes.entry(scheme.clone()).or_default();
        r.decisions += 1;
        r.f_sum += f_ghz;
        r.f_min = r.f_min.min(f_ghz);
        r.f_max = r.f_max.max(f_ghz);
        r.f_digest.observe(f_ghz);
        r.pe_digest.observe(pe);
        *r.bindings.entry(binding).or_insert(0) += 1;
        *r.outcomes.entry(outcome).or_insert(0) += 1;
        r.retune_steps += retune_steps;
        r.rejected += rejected;

        if let Some(chip) = self.current_chip {
            let c = self.analysis.chips.entry(chip).or_default();
            c.decisions += 1;
            c.f_sum += f_ghz;
        }
        let p = self.analysis.phases.entry(phase).or_default();
        p.decisions += 1;
        p.f_sum += f_ghz;

        if scheme == "fuzzy" || scheme == "exhaustive" {
            let key: DecisionKey = (
                self.current_chip,
                payload.str_field("env").unwrap_or("").to_string(),
                payload.str_field("workload").unwrap_or("").to_string(),
                phase,
            );
            let side = if scheme == "fuzzy" {
                &mut self.fuzzy_f
            } else {
                &mut self.exhaustive_f
            };
            side.insert(key, f_ghz);
        }
        Ok(())
    }

    /// Completes the fold (joins the fuzzy-vs-exhaustive sides) and
    /// returns the analysis.
    pub fn finish(mut self) -> Analysis {
        for (key, fuzzy) in &self.fuzzy_f {
            if let Some(exhaustive) = self.exhaustive_f.get(key) {
                let d = fuzzy - exhaustive;
                self.analysis.freq_delta.pairs += 1;
                self.analysis.freq_delta.delta_sum += d;
                self.analysis.freq_delta.abs_sum += d.abs();
                self.analysis.freq_delta.abs_max = self.analysis.freq_delta.abs_max.max(d.abs());
            }
        }
        self.analysis
    }
}

/// Folds a whole JSONL stream from a reader.
///
/// A single malformed **final** line is tolerated: that is the signature
/// of a write torn by a crash, so the line is dropped and the analysis
/// is returned with [`Analysis::truncated_tail`] set. A malformed line
/// *followed by more content* is mid-file corruption and stays an error.
///
/// # Errors
///
/// Returns [`AnalyzeError`] on I/O failure or mid-file corruption.
pub fn analyze_reader(reader: impl BufRead) -> Result<Analysis, AnalyzeError> {
    let mut analyzer = Analyzer::new();
    let mut pending: Option<AnalyzeError> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| AnalyzeError {
            line: i + 1,
            message: format!("read failed: {e}"),
        })?;
        if let Some(err) = pending.take() {
            if line.trim().is_empty() {
                // Trailing blanks don't prove the bad line was mid-file.
                pending = Some(err);
                continue;
            }
            return Err(err);
        }
        if let Err(err) = analyzer.feed_line(&line) {
            pending = Some(err);
        }
    }
    let mut analysis = analyzer.finish();
    analysis.truncated_tail = pending.is_some();
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_trace() -> String {
        let decision = |scheme: &str, chipless: bool, f: f64, binding: &str| {
            format!(
                concat!(
                    r#"{{"kind":"event","event":"decision","payload":{{"scheme":"{}","env":"TS+ASV","#,
                    r#""workload":"swim","phase":{},"f_ghz":{:?},"settings":[],"int_fu":"normal","#,
                    r#""fp_fu":"normal","int_queue":"full","fp_queue":"full","outcome":"NoChange","#,
                    r#""binding":"{}","retune_steps":2,"rejected":[{{"f_ghz":4.5,"violation":"Error"}}],"#,
                    r#""pe_per_instruction":2e-05,"power_w":30.0,"max_t_c":80.0,"perf_bips":3.0,"#,
                    r#""cpi_comp":1.0,"cpi_mem":0.2,"cpi_recovery":0.01}}}}"#
                ),
                scheme,
                if chipless { 9 } else { 1 },
                f,
                binding
            )
        };
        let mut lines = vec![
            r#"{"kind":"event","event":"campaign-start","payload":{"chips":2,"workloads":1,"cells":3}}"#.to_string(),
            r#"{"kind":"event","event":"chip-start","payload":{"chip":0}}"#.to_string(),
            decision("fuzzy", false, 4.0, "error-rate"),
            decision("exhaustive", false, 4.25, "temperature"),
            r#"{"kind":"event","event":"chip-start","payload":{"chip":1}}"#.to_string(),
            decision("fuzzy", false, 4.5, "error-rate"),
            decision("exhaustive", false, 4.5, "error-rate"),
            decision("static", false, 3.75, "ladder-top"),
            r#"{"kind":"counter","name":"solver.cache.hits","value":90}"#.to_string(),
            r#"{"kind":"counter","name":"solver.cache.misses","value":10}"#.to_string(),
            r#"{"kind":"histogram","name":"decision.latency.fuzzy_us","timing":true,"bounds":[10.0,100.0,1000.0],"counts":[0,3,1,0],"count":4,"sum":500.0}"#.to_string(),
            r#"{"kind":"span","path":"campaign","count":1,"total_ns":12345}"#.to_string(),
        ];
        lines.push(String::new()); // blank lines are tolerated
        lines.join("\n")
    }

    #[test]
    fn folds_schemes_chips_cache_and_deltas() {
        let a = analyze_reader(mini_trace().as_bytes()).expect("parses");
        assert_eq!(a.campaign, Some((2, 1, 3)));
        assert_eq!(a.chips_seen, 2);
        assert_eq!(a.schemes.len(), 3);
        let fuzzy = &a.schemes["fuzzy"];
        assert_eq!(fuzzy.decisions, 2);
        assert!((fuzzy.f_mean() - 4.25).abs() < 1e-12);
        assert_eq!(fuzzy.bindings["error-rate"], 2);
        assert_eq!(fuzzy.rejected, 2);
        assert_eq!(a.chips[&0].decisions, 2);
        assert_eq!(a.chips[&1].decisions, 3);
        // chip 0: fuzzy 4.0 vs exhaustive 4.25; chip 1: 4.5 vs 4.5.
        assert_eq!(a.freq_delta.pairs, 2);
        assert!((a.freq_delta.mean() - (-0.125)).abs() < 1e-12);
        assert!((a.freq_delta.abs_max - 0.25).abs() < 1e-12);
        assert_eq!(a.cache_hit_rate(), Some(0.9));
        assert_eq!(a.spans["campaign"], (1, 12345));
        let (name, h) = a.latency_digests().next().expect("latency digest");
        assert_eq!(name, "decision.latency.fuzzy_us");
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn report_text_is_deterministic_and_mentions_the_acceptance_fields() {
        let a = analyze_reader(mini_trace().as_bytes()).expect("parses");
        let t1 = a.report_text();
        let t2 = analyze_reader(mini_trace().as_bytes()).unwrap().report_text();
        assert_eq!(t1, t2);
        for needle in [
            "scheme rollups",
            "decision latency",
            "p99",
            "exhaustive/temperature",
            "solver cache: hits=90 misses=10 hit_rate=90.0%",
            "fuzzy vs exhaustive frequency",
        ] {
            assert!(t1.contains(needle), "missing {needle:?} in:\n{t1}");
        }
    }

    #[test]
    fn report_json_parses_back_and_carries_the_rollups() {
        let a = analyze_reader(mini_trace().as_bytes()).expect("parses");
        let json = a.report_json();
        let v = Json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("schemes").and_then(|s| s.get("fuzzy")).and_then(|f| f.u64_field("decisions")), Some(2));
        assert_eq!(v.get("solver_cache").and_then(|c| c.f64_field("hit_rate")), Some(0.9));
        assert_eq!(v.u64_field("chips_seen"), Some(2));
        assert!(v.get("decision_latency").and_then(|l| l.get("decision.latency.fuzzy_us")).is_some());
    }

    #[test]
    fn mid_file_corruption_stays_an_error_with_its_line_number() {
        let counter = r#"{"kind":"counter","name":"a","value":1}"#;
        // The bad line is followed by more content: corruption, not a
        // torn tail.
        let bad = format!("{{\"kind\":\"event\"}}\n{counter}\n");
        let e = analyze_reader(bad.as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        let bad2 = format!("{counter}\nnot json\n{counter}\n");
        let e2 = analyze_reader(bad2.as_bytes()).unwrap_err();
        assert_eq!(e2.line, 2);
    }

    #[test]
    fn a_single_torn_final_line_is_tolerated_and_flagged() {
        let counter = r#"{"kind":"counter","name":"a","value":1}"#;
        // A crash mid-write leaves one incomplete final line.
        let torn = format!("{counter}\n{{\"kind\":\"coun");
        let a = analyze_reader(torn.as_bytes()).expect("tolerated");
        assert!(a.truncated_tail);
        assert_eq!(a.counters["a"], 1);
        assert!(a.report_text().contains("torn final line"), "{}", a.report_text());
        let v = Json::parse(&a.report_json()).expect("valid JSON");
        assert_eq!(v.get("truncated_tail").and_then(Json::as_bool), Some(true));

        // An intact trace reports the field as false.
        let a = analyze_reader(mini_trace().as_bytes()).expect("parses");
        assert!(!a.truncated_tail);
        let v = Json::parse(&a.report_json()).expect("valid JSON");
        assert_eq!(v.get("truncated_tail").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn resumed_and_quarantined_counters_surface_in_the_report() {
        let trace = concat!(
            r#"{"kind":"counter","name":"campaign.chips_resumed","value":3}"#,
            "\n",
            r#"{"kind":"counter","name":"campaign.chips_failed","value":1}"#,
            "\n",
        );
        let report = analyze_reader(trace.as_bytes()).expect("parses").report_text();
        assert!(report.contains("resumed: 3 chips"), "{report}");
        assert!(report.contains("quarantined: 1 chips"), "{report}");
        // Traces without those counters keep the old report shape.
        let report = analyze_reader(mini_trace().as_bytes()).unwrap().report_text();
        assert!(!report.contains("resumed:"), "{report}");
        assert!(!report.contains("quarantined:"), "{report}");
    }

    #[test]
    fn repeated_histogram_snapshots_merge() {
        let line = r#"{"kind":"histogram","name":"decision.latency_us","timing":true,"bounds":[10.0,100.0],"counts":[0,2,0],"count":2,"sum":60.0}"#;
        let two = format!("{line}\n{line}\n");
        let a = analyze_reader(two.as_bytes()).expect("parses");
        assert_eq!(a.digests["decision.latency_us"].count(), 4);
    }

    #[test]
    fn provenance_footer_surfaces_in_both_reports() {
        let footer = concat!(
            r#"{"kind":"provenance","artifact":"trace-jsonl","#,
            r#""content_address":"00aa11bb22cc33dd","git_revision":"deadbeef","#,
            r#""host":"aabbccdd00112233","config_fingerprint":null,"#,
            r#""schema_hash":"1234567812345678"}"#,
        );
        let stamped = concat!(
            r#"{"kind":"counter","name":"provenance.artifacts","value":2}"#,
            "\n",
        );
        let trace = format!("{}{stamped}{footer}\n", mini_trace());
        let a = analyze_reader(trace.as_bytes()).expect("parses");
        let p = a.provenance.as_ref().expect("footer folded");
        assert_eq!(p.artifact, "trace-jsonl");
        let text = a.report_text();
        assert!(text.contains("provenance: trace-jsonl addr=00aa11bb22cc33dd"), "{text}");
        assert!(text.contains("provenance-stamped artifacts: 2"), "{text}");
        let v = Json::parse(&a.report_json()).expect("valid JSON");
        assert_eq!(
            v.get("provenance").and_then(|p| p.str_field("git_revision")),
            Some("deadbeef")
        );
    }

    #[test]
    fn json_report_always_carries_resume_accounting_and_provenance() {
        // Unstamped, un-resumed trace: fields still present with
        // explicit zero/null values.
        let a = analyze_reader(mini_trace().as_bytes()).expect("parses");
        let text = a.report_text();
        assert!(!text.contains("provenance"), "{text}");
        let v = Json::parse(&a.report_json()).expect("valid JSON");
        assert_eq!(v.u64_field("chips_resumed"), Some(0));
        assert_eq!(v.u64_field("chips_failed"), Some(0));
        assert!(matches!(v.get("provenance"), Some(Json::Null)));

        let trace = format!(
            "{}\n{}\n",
            r#"{"kind":"counter","name":"campaign.chips_resumed","value":3}"#,
            r#"{"kind":"counter","name":"campaign.chips_failed","value":1}"#,
        );
        let v = Json::parse(&analyze_reader(trace.as_bytes()).unwrap().report_json())
            .expect("valid JSON");
        assert_eq!(v.u64_field("chips_resumed"), Some(3));
        assert_eq!(v.u64_field("chips_failed"), Some(1));
    }

    #[test]
    fn malformed_provenance_record_is_an_error() {
        // Followed by more content so it can't be excused as a torn tail.
        let bad = concat!(
            "{\"kind\":\"provenance\",\"host\":\"x\"}\n",
            "{\"kind\":\"counter\",\"name\":\"solver.cache.hits\",\"value\":1}\n",
        );
        let e = analyze_reader(bad.as_bytes()).unwrap_err();
        assert!(e.message.contains("provenance"), "{}", e.message);
        assert_eq!(e.line, 1);
    }
}
