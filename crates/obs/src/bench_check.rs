//! The bench regression gate (`eval-obs bench-check`).
//!
//! Compares a freshly generated `BENCH_hotpath.json` against the
//! committed baseline:
//!
//! * every baseline benchmark must still exist, and its fresh `fast_ns`
//!   must not exceed `baseline * (1 + tolerance)` — 15% by default,
//!   with a wider per-benchmark override for the noisy end-to-end
//!   campaign row;
//! * the end-of-run `solver.cache.hit_rate` metric (flushed into the
//!   JSON by the `hotpath` binary) must not drop more than two points
//!   below the baseline — a perf win that silently loses the cache is
//!   still a regression;
//! * every run appends one JSONL line to `BENCH_history.jsonl`, so the
//!   trend survives the baseline being re-committed.
//!
//! Wired onto tier-1 (see `ROADMAP.md`): the gate exits nonzero on any
//! regression.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use eval_trace::json::JsonObject;
use eval_trace::names;

use crate::json::Json;

/// Allowed `solver.cache.hit_rate` drop before the gate fails.
pub const HIT_RATE_SLACK: f64 = 0.02;

/// Per-benchmark slowdown tolerances (fractions: `0.15` allows +15%).
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Applied when no per-benchmark override matches.
    pub default: f64,
    /// Overrides by benchmark name.
    pub per_bench: BTreeMap<String, f64>,
}

impl Default for Tolerances {
    fn default() -> Self {
        let mut per_bench = BTreeMap::new();
        // The end-to-end campaign row is dominated by scheduling noise
        // at 2 chips; gate it loosely (it exists to catch order-of-
        // magnitude cliffs, not percent drift).
        per_bench.insert("campaign_exhdyn_2chips".to_string(), 0.5);
        Self {
            default: 0.15,
            per_bench,
        }
    }
}

impl Tolerances {
    /// The tolerance applied to `name`.
    pub fn for_bench(&self, name: &str) -> f64 {
        self.per_bench.get(name).copied().unwrap_or(self.default)
    }
}

/// One parsed `BENCH_*.json` file.
#[derive(Debug, Clone, Default)]
pub struct BenchFile {
    /// `fast_ns` by benchmark name.
    pub benches: BTreeMap<String, f64>,
    /// End-of-run metrics (`solver.cache.hit_rate`, ...), when present.
    pub metrics: BTreeMap<String, f64>,
}

/// A bench file could not be read or parsed.
#[derive(Debug)]
pub struct BenchFileError {
    /// The offending path.
    pub path: std::path::PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BenchFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for BenchFileError {}

impl BenchFile {
    /// Parses the JSON text of a bench file.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not the expected shape.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let mut out = BenchFile::default();
        let rows = v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("missing `benchmarks` array")?;
        for row in rows {
            let name = row.str_field("name").ok_or("benchmark without name")?;
            let fast = row.f64_field("fast_ns").ok_or("benchmark without fast_ns")?;
            out.benches.insert(name.to_string(), fast);
        }
        if let Some(Json::Obj(fields)) = v.get("metrics") {
            for (k, m) in fields {
                if let Some(x) = m.as_f64() {
                    out.metrics.insert(k.clone(), x);
                }
            }
        }
        Ok(out)
    }

    /// Loads and parses a bench file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`BenchFileError`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<BenchFile, BenchFileError> {
        let text = std::fs::read_to_string(path).map_err(|e| BenchFileError {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        BenchFile::parse(&text).map_err(|message| BenchFileError {
            path: path.to_path_buf(),
            message,
        })
    }
}

/// One benchmark's verdict.
#[derive(Debug, Clone)]
pub struct BenchVerdict {
    /// Benchmark name.
    pub name: String,
    /// Baseline `fast_ns`.
    pub baseline_ns: f64,
    /// Fresh `fast_ns` (`None`: the benchmark disappeared).
    pub fresh_ns: Option<f64>,
    /// `fresh / baseline` when both exist.
    pub ratio: Option<f64>,
    /// The tolerance applied.
    pub tolerance: f64,
    /// Within tolerance?
    pub ok: bool,
}

/// The whole gate's verdict.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Per-benchmark rows, baseline order.
    pub rows: Vec<BenchVerdict>,
    /// `(baseline, fresh, ok)` for `solver.cache.hit_rate`, when both
    /// files carry it.
    pub hit_rate: Option<(f64, f64, bool)>,
    /// Benchmarks present only in the fresh file (informational).
    pub new_benches: Vec<String>,
}

impl CheckReport {
    /// Whether the gate passes.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.ok) && self.hit_rate.is_none_or(|(_, _, ok)| ok)
    }

    /// Human-readable verdict table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>8} {:>7} {:>6}",
            "benchmark", "baseline_ns", "fresh_ns", "ratio", "tol", "ok"
        );
        for r in &self.rows {
            let fresh = r
                .fresh_ns
                .map_or_else(|| "missing".to_string(), |v| format!("{v:.1}"));
            let ratio = r
                .ratio
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
            let _ = writeln!(
                out,
                "{:<28} {:>14.1} {:>14} {:>8} {:>6.0}% {:>6}",
                r.name,
                r.baseline_ns,
                fresh,
                ratio,
                r.tolerance * 100.0,
                if r.ok { "ok" } else { "FAIL" }
            );
        }
        if let Some((base, fresh, ok)) = self.hit_rate {
            let _ = writeln!(
                out,
                "{:<28} {:>14.4} {:>14.4} {:>8} {:>7} {:>6}",
                names::SOLVER_CACHE_HIT_RATE,
                base,
                fresh,
                "-",
                "-",
                if ok { "ok" } else { "FAIL" }
            );
        }
        for name in &self.new_benches {
            let _ = writeln!(out, "note: new benchmark `{name}` (not gated)");
        }
        let _ = writeln!(out, "verdict: {}", if self.pass() { "PASS" } else { "FAIL" });
        out
    }

    /// One JSONL history line for this comparison.
    pub fn history_line(&self, unix_secs: u64) -> String {
        let rows = {
            let mut o = JsonObject::new();
            for r in &self.rows {
                let mut cell = JsonObject::new().f64("baseline_ns", r.baseline_ns);
                cell = match r.fresh_ns {
                    Some(v) => cell.f64("fresh_ns", v),
                    None => cell.raw("fresh_ns", "null"),
                };
                cell = match r.ratio {
                    Some(v) => cell.f64("ratio", v),
                    None => cell.raw("ratio", "null"),
                };
                o = o.raw(&r.name, &cell.bool("ok", r.ok).finish());
            }
            o.finish()
        };
        let hit = match self.hit_rate {
            Some((base, fresh, ok)) => JsonObject::new()
                .f64("baseline", base)
                .f64("fresh", fresh)
                .bool("ok", ok)
                .finish(),
            None => "null".to_string(),
        };
        JsonObject::new()
            .u64("unix_secs", unix_secs)
            .bool("pass", self.pass())
            .raw("benchmarks", &rows)
            .raw("hit_rate", &hit)
            .finish()
    }
}

/// Compares `fresh` against `baseline` under `tol`.
pub fn check(baseline: &BenchFile, fresh: &BenchFile, tol: &Tolerances) -> CheckReport {
    let mut report = CheckReport::default();
    for (name, &baseline_ns) in &baseline.benches {
        let tolerance = tol.for_bench(name);
        let fresh_ns = fresh.benches.get(name).copied();
        let ratio = fresh_ns.map(|f| f / baseline_ns);
        // A missing benchmark is a coverage regression, not a pass.
        let ok = ratio.is_some_and(|r| r <= 1.0 + tolerance);
        report.rows.push(BenchVerdict {
            name: name.clone(),
            baseline_ns,
            fresh_ns,
            ratio,
            tolerance,
            ok,
        });
    }
    for name in fresh.benches.keys() {
        if !baseline.benches.contains_key(name) {
            report.new_benches.push(name.clone());
        }
    }
    if let (Some(&base), Some(&new)) = (
        baseline.metrics.get(names::SOLVER_CACHE_HIT_RATE),
        fresh.metrics.get(names::SOLVER_CACHE_HIT_RATE),
    ) {
        report.hit_rate = Some((base, new, new >= base - HIT_RATE_SLACK));
    }
    report
}

/// Appends the comparison's history line to `path` (created when
/// missing).
///
/// # Errors
///
/// Propagates the I/O error.
pub fn append_history(path: &Path, report: &CheckReport) -> std::io::Result<()> {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", report.history_line(unix_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(campaign_ns: f64, hit_rate: f64) -> String {
        format!(
            concat!(
                "{{\n  \"benchmarks\": [\n",
                "    {{\"name\": \"solve_thermal\", \"fast_ns\": 250.0, \"reference_ns\": 2000.0, \"speedup\": 8.00}},\n",
                "    {{\"name\": \"campaign_exhdyn_2chips\", \"fast_ns\": {:.1}, \"reference_ns\": null, \"speedup\": null}}\n",
                "  ],\n",
                "  \"metrics\": {{\"solver.cache.hits\": 90.0, \"solver.cache.hit_rate\": {:.4}}}\n}}\n"
            ),
            campaign_ns, hit_rate
        )
    }

    #[test]
    fn parses_benchmarks_and_metrics() {
        let f = BenchFile::parse(&bench_json(1e9, 0.91)).expect("parses");
        assert_eq!(f.benches["solve_thermal"], 250.0);
        assert_eq!(f.metrics["solver.cache.hit_rate"], 0.91);
    }

    #[test]
    fn within_tolerance_passes_and_over_fails() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let tol = Tolerances::default();

        // +10% on a 15%-gated row: pass.
        let mut fresh = baseline.clone();
        fresh.benches.insert("solve_thermal".into(), 275.0);
        assert!(check(&baseline, &fresh, &tol).pass());

        // +20%: fail, and the verdict names the row.
        fresh.benches.insert("solve_thermal".into(), 300.0);
        let report = check(&baseline, &fresh, &tol);
        assert!(!report.pass());
        let row = report.rows.iter().find(|r| r.name == "solve_thermal").unwrap();
        assert!(!row.ok);
        assert!(report.render_text().contains("FAIL"));
    }

    #[test]
    fn noisy_campaign_row_gets_its_wider_tolerance() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let tol = Tolerances::default();
        // +40% on the end-to-end row is inside its 50% override.
        let mut fresh = baseline.clone();
        fresh.benches.insert("campaign_exhdyn_2chips".into(), 1.4e9);
        assert!(check(&baseline, &fresh, &tol).pass());
        // +60% is not.
        fresh.benches.insert("campaign_exhdyn_2chips".into(), 1.6e9);
        assert!(!check(&baseline, &fresh, &tol).pass());
    }

    #[test]
    fn missing_benchmark_is_a_regression() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let mut fresh = baseline.clone();
        fresh.benches.remove("solve_thermal");
        let report = check(&baseline, &fresh, &Tolerances::default());
        assert!(!report.pass());
        assert!(report.render_text().contains("missing"));
    }

    #[test]
    fn hit_rate_gate_allows_slack_but_not_a_real_drop() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let fresh_ok = BenchFile::parse(&bench_json(1e9, 0.90)).unwrap();
        assert!(check(&baseline, &fresh_ok, &Tolerances::default()).pass());
        let fresh_bad = BenchFile::parse(&bench_json(1e9, 0.80)).unwrap();
        let report = check(&baseline, &fresh_bad, &Tolerances::default());
        assert!(!report.pass());
        assert_eq!(report.hit_rate, Some((0.91, 0.80, false)));
    }

    #[test]
    fn history_line_is_one_valid_json_object() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let report = check(&baseline, &baseline, &Tolerances::default());
        let line = report.history_line(1_700_000_000);
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("pass").and_then(Json::as_bool), Some(true));
        assert_eq!(v.u64_field("unix_secs"), Some(1_700_000_000));
        assert!(v.get("benchmarks").and_then(|b| b.get("solve_thermal")).is_some());
    }

    #[test]
    fn legacy_files_without_metrics_skip_the_hit_rate_gate() {
        let legacy = r#"{"benchmarks": [{"name": "solve_thermal", "fast_ns": 250.0, "reference_ns": null, "speedup": null}]}"#;
        let f = BenchFile::parse(legacy).expect("parses");
        assert!(f.metrics.is_empty());
        let report = check(&f, &f, &Tolerances::default());
        assert!(report.pass());
        assert!(report.hit_rate.is_none());
    }
}
