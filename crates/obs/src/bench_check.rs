//! The bench regression gate (`eval-obs bench-check`).
//!
//! Compares a freshly generated `BENCH_hotpath.json` against the
//! committed baseline and the pooled `BENCH_history.jsonl` distribution.
//! Two gates exist:
//!
//! * **quantile gate (v2, default)** — when the fresh file carries
//!   per-benchmark sample vectors (`hotpath --samples N`), each
//!   benchmark's nine deciles are compared against the pooled history
//!   samples from the *same host* (falling back to the baseline file's
//!   own samples when history is thin). The verdict reports effect
//!   sizes — the worst decile shift in ns and as a fraction of baseline
//!   spread — and fires only when the shift is both statistically
//!   significant (permutation test, bounded false-positive rate α) and
//!   material (≥ a configurable fraction of the baseline median). See
//!   [`crate::stats`].
//! * **legacy ratio gate (v1)** — `fresh_ns ≤ baseline_ns × (1 + tol)`,
//!   used for v1 records without samples, for hosts with no history,
//!   and always under `--legacy-tolerance`.
//!
//! Either way:
//!
//! * every baseline benchmark must still exist (a missing benchmark is
//!   a coverage regression);
//! * the end-of-run `solver.cache.hit_rate` metric must not drop more
//!   than two points below the baseline — a perf win that silently
//!   loses the cache is still a regression;
//! * every run appends one JSONL line to `BENCH_history.jsonl` (v2
//!   lines carry the full sample vectors and a provenance stamp), so
//!   the distribution the next run gates against keeps growing.
//!
//! Wired onto tier-1 (see `ROADMAP.md`): the gate exits nonzero on any
//! regression.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use eval_trace::json::{f64_array, JsonObject};
use eval_trace::names;
use eval_trace::provenance::Provenance;

use crate::json::Json;
use crate::stats::{effect_size, quantile_gate, GateConfig, MIN_SAMPLES};

/// Allowed `solver.cache.hit_rate` drop before the gate fails.
pub const HIT_RATE_SLACK: f64 = 0.02;

/// Minimum pooled same-host history samples per benchmark before the
/// history distribution (rather than the baseline file's samples) is
/// the comparison population.
pub const MIN_HISTORY_SAMPLES: usize = 12;

/// Per-benchmark slowdown tolerances. For the legacy gate these are
/// ratio tolerances (`0.15` allows +15%); for the quantile gate the
/// same per-benchmark overrides act as materiality floors (a benchmark
/// noisy enough to need a 50% ratio tolerance also needs a 50% shift
/// before a statistically-significant result matters).
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Applied when no per-benchmark override matches.
    pub default: f64,
    /// Overrides by benchmark name.
    pub per_bench: BTreeMap<String, f64>,
}

impl Default for Tolerances {
    fn default() -> Self {
        let mut per_bench = BTreeMap::new();
        // The end-to-end campaign row is dominated by scheduling noise
        // at 2 chips; gate it loosely (it exists to catch order-of-
        // magnitude cliffs, not percent drift).
        per_bench.insert("campaign_exhdyn_2chips".to_string(), 0.5);
        Self {
            default: 0.15,
            per_bench,
        }
    }
}

impl Tolerances {
    /// The legacy ratio tolerance applied to `name`.
    pub fn for_bench(&self, name: &str) -> f64 {
        self.per_bench.get(name).copied().unwrap_or(self.default)
    }
}

/// One parsed `BENCH_*.json` file.
#[derive(Debug, Clone, Default)]
pub struct BenchFile {
    /// `fast_ns` by benchmark name.
    pub benches: BTreeMap<String, f64>,
    /// Full sample vectors by benchmark name (v2 files written with
    /// `hotpath --samples`), collection order.
    pub samples: BTreeMap<String, Vec<f64>>,
    /// End-of-run metrics (`solver.cache.hit_rate`, ...), when present.
    pub metrics: BTreeMap<String, f64>,
    /// The provenance stamp (v2 files).
    pub provenance: Option<Provenance>,
    /// Declared format version (1 when the file predates the field).
    pub format: u64,
}

/// A bench file could not be read or parsed.
#[derive(Debug)]
pub struct BenchFileError {
    /// The offending path.
    pub path: std::path::PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BenchFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for BenchFileError {}

impl BenchFile {
    /// Parses the JSON text of a bench file (v1 or v2).
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not the expected shape.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let mut out = BenchFile {
            format: v.u64_field("format").unwrap_or(1),
            ..BenchFile::default()
        };
        let rows = v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("missing `benchmarks` array")?;
        for row in rows {
            let name = row.str_field("name").ok_or("benchmark without name")?;
            let fast = row.f64_field("fast_ns").ok_or("benchmark without fast_ns")?;
            out.benches.insert(name.to_string(), fast);
            if let Some(arr) = row.get("samples_ns").and_then(Json::as_arr) {
                let samples: Vec<f64> = arr.iter().filter_map(Json::as_f64).collect();
                if !samples.is_empty() {
                    out.samples.insert(name.to_string(), samples);
                }
            }
        }
        if let Some(Json::Obj(fields)) = v.get("metrics") {
            for (k, m) in fields {
                if let Some(x) = m.as_f64() {
                    out.metrics.insert(k.clone(), x);
                }
            }
        }
        out.provenance = v.get("provenance").and_then(Provenance::from_json);
        Ok(out)
    }

    /// Loads and parses a bench file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`BenchFileError`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<BenchFile, BenchFileError> {
        let text = std::fs::read_to_string(path).map_err(|e| BenchFileError {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        BenchFile::parse(&text).map_err(|message| BenchFileError {
            path: path.to_path_buf(),
            message,
        })
    }
}

/// One parsed `BENCH_history.jsonl` record, as much of it as the gate
/// needs: v1 lines contribute nothing to the pooled distribution but
/// still parse (`samples` empty).
#[derive(Debug, Clone, Default)]
pub struct HistoryRecord {
    /// Declared line format (1 when absent).
    pub format: u64,
    /// Host fingerprint of the recording run, when stamped.
    pub host: Option<String>,
    /// Sample vectors by benchmark name (v2 lines only).
    pub samples: BTreeMap<String, Vec<f64>>,
}

/// Parses history text: one JSON record per line, `#` comment lines and
/// blanks skipped, unparsable lines dropped (history is append-only
/// telemetry, not a load-bearing input — a corrupt line must not brick
/// the gate).
pub fn parse_history(text: &str) -> Vec<HistoryRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Ok(v) = Json::parse(line) else { continue };
        let mut rec = HistoryRecord {
            format: v.u64_field("format").unwrap_or(1),
            host: v.str_field("host").map(str::to_string),
            ..HistoryRecord::default()
        };
        if rec.host.is_none() {
            rec.host = v
                .get("provenance")
                .and_then(|p| p.str_field("host"))
                .map(str::to_string);
        }
        if let Some(Json::Obj(rows)) = v.get("benchmarks") {
            for (name, row) in rows {
                if let Some(arr) = row.get("samples_ns").and_then(Json::as_arr) {
                    let samples: Vec<f64> = arr.iter().filter_map(Json::as_f64).collect();
                    if !samples.is_empty() {
                        rec.samples.insert(name.clone(), samples);
                    }
                }
            }
        }
        out.push(rec);
    }
    out
}

/// Loads and parses a history file; a missing file is an empty history.
///
/// # Errors
///
/// Any I/O error other than the file not existing.
pub fn load_history(path: &Path) -> std::io::Result<Vec<HistoryRecord>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(parse_history(&text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Which gate judged a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Fixed-ratio gate (v1 records, thin data, or `--legacy-tolerance`).
    Legacy,
    /// Quantile gate against pooled same-host history samples.
    QuantileHistory,
    /// Quantile gate against the baseline file's own samples.
    QuantileBaseline,
}

impl GateMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            GateMode::Legacy => "legacy",
            GateMode::QuantileHistory => "quantile:history",
            GateMode::QuantileBaseline => "quantile:baseline",
        }
    }
}

/// Everything `check_distribution` needs beyond the two bench files.
#[derive(Debug, Clone, Default)]
pub struct GateOptions {
    /// Ratio tolerances (legacy) / materiality floors (quantile).
    pub tolerances: Tolerances,
    /// Quantile-gate tuning (α, trials, default materiality, seed).
    pub gate: GateConfig,
    /// Force the legacy ratio gate everywhere (`--legacy-tolerance`).
    pub force_legacy: bool,
    /// How many most-recent matching-host history records pool into the
    /// comparison distribution.
    pub history_window: usize,
}

impl GateOptions {
    /// Defaults: quantile gating with an 8-record history window.
    pub fn new() -> GateOptions {
        GateOptions {
            tolerances: Tolerances::default(),
            gate: GateConfig::default(),
            force_legacy: false,
            history_window: 8,
        }
    }

    /// The quantile materiality floor for `name`: the per-benchmark
    /// tolerance override when present, the gate default otherwise.
    fn min_effect_for(&self, name: &str) -> f64 {
        self.tolerances
            .per_bench
            .get(name)
            .copied()
            .unwrap_or(self.gate.min_effect_frac)
    }
}

/// One benchmark's verdict.
#[derive(Debug, Clone)]
pub struct BenchVerdict {
    /// Benchmark name.
    pub name: String,
    /// Baseline `fast_ns`.
    pub baseline_ns: f64,
    /// Fresh `fast_ns` (`None`: the benchmark disappeared).
    pub fresh_ns: Option<f64>,
    /// `fresh / baseline` when both exist.
    pub ratio: Option<f64>,
    /// The tolerance applied (ratio tolerance for legacy rows, the
    /// materiality floor for quantile rows).
    pub tolerance: f64,
    /// Which gate judged this row.
    pub mode: GateMode,
    /// Worst decile shift in ns (quantile rows).
    pub shift_ns: Option<f64>,
    /// Worst decile shift in units of baseline spread (quantile rows).
    pub shift_frac_of_spread: Option<f64>,
    /// Permutation-test significance bar the statistic had to clear
    /// (quantile rows).
    pub threshold: Option<f64>,
    /// Within tolerance?
    pub ok: bool,
}

impl BenchVerdict {
    fn legacy(name: &str, baseline_ns: f64, fresh_ns: Option<f64>, tolerance: f64) -> Self {
        let ratio = fresh_ns.map(|f| f / baseline_ns);
        // A missing benchmark is a coverage regression, not a pass.
        let ok = ratio.is_some_and(|r| r <= 1.0 + tolerance);
        BenchVerdict {
            name: name.to_string(),
            baseline_ns,
            fresh_ns,
            ratio,
            tolerance,
            mode: GateMode::Legacy,
            shift_ns: None,
            shift_frac_of_spread: None,
            threshold: None,
            ok,
        }
    }
}

/// The whole gate's verdict.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Per-benchmark rows, baseline order.
    pub rows: Vec<BenchVerdict>,
    /// `(baseline, fresh, ok)` for `solver.cache.hit_rate`, when both
    /// files carry it.
    pub hit_rate: Option<(f64, f64, bool)>,
    /// Benchmarks present only in the fresh file (informational).
    pub new_benches: Vec<String>,
    /// The fresh file's sample vectors, carried for the history line.
    pub fresh_samples: BTreeMap<String, Vec<f64>>,
    /// The fresh file's provenance stamp, carried for the history line.
    pub fresh_provenance: Option<Provenance>,
}

impl CheckReport {
    /// Whether the gate passes.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.ok) && self.hit_rate.is_none_or(|(_, _, ok)| ok)
    }

    /// Human-readable verdict table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>8} {:>7} {:>18} {:>12} {:>6}",
            "benchmark", "baseline_ns", "fresh_ns", "ratio", "tol", "mode", "shift", "ok"
        );
        for r in &self.rows {
            let fresh = r
                .fresh_ns
                .map_or_else(|| "missing".to_string(), |v| format!("{v:.1}"));
            let ratio = r
                .ratio
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
            let shift = match (r.shift_ns, r.shift_frac_of_spread) {
                (Some(ns), Some(frac)) => format!("{ns:+.1}({frac:+.1}s)"),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<28} {:>14.1} {:>14} {:>8} {:>6.0}% {:>18} {:>12} {:>6}",
                r.name,
                r.baseline_ns,
                fresh,
                ratio,
                r.tolerance * 100.0,
                r.mode.label(),
                shift,
                if r.ok { "ok" } else { "FAIL" }
            );
        }
        if let Some((base, fresh, ok)) = self.hit_rate {
            let _ = writeln!(
                out,
                "{:<28} {:>14.4} {:>14.4} {:>8} {:>7} {:>18} {:>12} {:>6}",
                names::SOLVER_CACHE_HIT_RATE,
                base,
                fresh,
                "-",
                "-",
                "-",
                "-",
                if ok { "ok" } else { "FAIL" }
            );
        }
        for name in &self.new_benches {
            let _ = writeln!(out, "note: new benchmark `{name}` (not gated)");
        }
        let _ = writeln!(out, "verdict: {}", if self.pass() { "PASS" } else { "FAIL" });
        out
    }

    /// One JSONL history line for this comparison: a v2 line (format,
    /// host, provenance, per-benchmark sample vectors and effect sizes)
    /// when the fresh file carried samples, the original v1 shape
    /// otherwise.
    pub fn history_line(&self, unix_secs: u64) -> String {
        if self.fresh_samples.is_empty() {
            return self.history_line_v1(unix_secs);
        }
        let rows = {
            let mut o = JsonObject::new();
            for r in &self.rows {
                let mut cell = JsonObject::new();
                cell = match r.fresh_ns {
                    Some(v) => cell.f64("fast_ns", v),
                    None => cell.raw("fast_ns", "null"),
                };
                if let Some(samples) = self.fresh_samples.get(&r.name) {
                    cell = cell.raw("samples_ns", &f64_array(samples));
                }
                cell = match r.shift_ns {
                    Some(v) => cell.f64("shift_ns", v),
                    None => cell.raw("shift_ns", "null"),
                };
                cell = match r.shift_frac_of_spread {
                    Some(v) => cell.f64("shift_frac", v),
                    None => cell.raw("shift_frac", "null"),
                };
                o = o.raw(&r.name, &cell.bool("ok", r.ok).finish());
            }
            o.finish()
        };
        let mut line = JsonObject::new()
            .u64("format", 2)
            .u64("unix_secs", unix_secs)
            .bool("pass", self.pass());
        line = match &self.fresh_provenance {
            Some(p) => line.str("host", &p.host).raw("provenance", &p.to_json()),
            None => line.raw("host", "null").raw("provenance", "null"),
        };
        line.raw("benchmarks", &rows)
            .raw("hit_rate", &self.hit_rate_json())
            .finish()
    }

    fn hit_rate_json(&self) -> String {
        match self.hit_rate {
            Some((base, fresh, ok)) => JsonObject::new()
                .f64("baseline", base)
                .f64("fresh", fresh)
                .bool("ok", ok)
                .finish(),
            None => "null".to_string(),
        }
    }

    fn history_line_v1(&self, unix_secs: u64) -> String {
        let rows = {
            let mut o = JsonObject::new();
            for r in &self.rows {
                let mut cell = JsonObject::new().f64("baseline_ns", r.baseline_ns);
                cell = match r.fresh_ns {
                    Some(v) => cell.f64("fresh_ns", v),
                    None => cell.raw("fresh_ns", "null"),
                };
                cell = match r.ratio {
                    Some(v) => cell.f64("ratio", v),
                    None => cell.raw("ratio", "null"),
                };
                o = o.raw(&r.name, &cell.bool("ok", r.ok).finish());
            }
            o.finish()
        };
        JsonObject::new()
            .u64("unix_secs", unix_secs)
            .bool("pass", self.pass())
            .raw("benchmarks", &rows)
            .raw("hit_rate", &self.hit_rate_json())
            .finish()
    }
}

/// Compares `fresh` against `baseline` with the legacy ratio gate only
/// (the v1 entry point; `--legacy-tolerance` routes here, and
/// [`check_distribution`] falls back here per benchmark when samples
/// are missing).
pub fn check(baseline: &BenchFile, fresh: &BenchFile, tol: &Tolerances) -> CheckReport {
    let mut report = CheckReport::default();
    for (name, &baseline_ns) in &baseline.benches {
        report.rows.push(BenchVerdict::legacy(
            name,
            baseline_ns,
            fresh.benches.get(name).copied(),
            tol.for_bench(name),
        ));
    }
    finish_report(&mut report, baseline, fresh);
    report
}

/// The distribution-aware gate. Per benchmark, in order of preference:
///
/// 1. **quantile vs history** — fresh samples ≥ [`MIN_SAMPLES`] and the
///    pooled same-host history holds ≥ [`MIN_HISTORY_SAMPLES`] samples;
/// 2. **quantile vs baseline** — fresh and baseline files both carry
///    enough samples;
/// 3. **legacy ratio** — anything thinner (v1 files, new hosts with no
///    history yet, or a baseline stamped by a different machine). This
///    makes the gate self-healing: a brand-new machine gates by ratio
///    until its own history accumulates.
///
/// In history mode the significance bar is additionally floored at the
/// worst between-run drift the window has already demonstrated (see
/// [`between_run_drift`]): a shift inside the machine's documented
/// wobble is noise, not a regression.
pub fn check_distribution(
    baseline: &BenchFile,
    fresh: &BenchFile,
    history: &[HistoryRecord],
    opts: &GateOptions,
) -> CheckReport {
    if opts.force_legacy {
        return check(baseline, fresh, &opts.tolerances);
    }
    let fresh_host = fresh.provenance.as_ref().map(|p| p.host.as_str());
    let baseline_host = baseline.provenance.as_ref().map(|p| p.host.as_str());
    // A baseline recorded on another machine is not a comparison
    // population: its sample distribution encodes that machine's
    // timings, so quantile-gating against it would flag every
    // cross-machine difference. Only a *known, differing* host pair
    // disqualifies — unstamped files (tests, hand-built fixtures) are
    // assumed local.
    let cross_machine_baseline = matches!(
        (baseline_host, fresh_host),
        (Some(b), Some(f)) if b != f
    );
    let mut report = CheckReport::default();
    for (name, &baseline_ns) in &baseline.benches {
        let fresh_ns = fresh.benches.get(name).copied();
        let fresh_samples = fresh.samples.get(name);
        let verdict = match fresh_samples {
            Some(samples) if samples.len() >= MIN_SAMPLES => {
                let groups = history_groups(history, name, fresh_host, opts.history_window);
                let pooled_len: usize = groups.iter().map(Vec::len).sum();
                let (population, mode) = if pooled_len >= MIN_HISTORY_SAMPLES {
                    (groups.concat(), GateMode::QuantileHistory)
                } else if !cross_machine_baseline
                    && baseline
                        .samples
                        .get(name)
                        .is_some_and(|s| s.len() >= MIN_SAMPLES)
                {
                    (baseline.samples[name].clone(), GateMode::QuantileBaseline)
                } else {
                    (Vec::new(), GateMode::Legacy)
                };
                if mode == GateMode::Legacy {
                    None
                } else {
                    let drift = if mode == GateMode::QuantileHistory {
                        between_run_drift(&groups)
                    } else {
                        None
                    };
                    quantile_verdict(
                        name, baseline_ns, fresh_ns, samples, &population, mode, drift, opts,
                    )
                }
            }
            _ => None,
        };
        report.rows.push(verdict.unwrap_or_else(|| {
            BenchVerdict::legacy(
                name,
                baseline_ns,
                fresh_ns,
                opts.tolerances.for_bench(name),
            )
        }));
    }
    finish_report(&mut report, baseline, fresh);
    report
}

/// The per-record sample vectors for `bench` over the most recent
/// `window` history records whose host matches `fresh_host`, oldest
/// first. No host on the fresh side means no pooling — distributions
/// from unknown origins are not comparable. Record boundaries are kept
/// so [`between_run_drift`] can see run-level structure.
fn history_groups(
    history: &[HistoryRecord],
    bench: &str,
    fresh_host: Option<&str>,
    window: usize,
) -> Vec<Vec<f64>> {
    let Some(host) = fresh_host else {
        return Vec::new();
    };
    let matching: Vec<&HistoryRecord> = history
        .iter()
        .filter(|r| r.host.as_deref() == Some(host) && r.samples.contains_key(bench))
        .collect();
    let start = matching.len().saturating_sub(window.max(1));
    matching[start..]
        .iter()
        .map(|rec| rec.samples[bench].clone())
        .collect()
}

/// The worst "one run vs the rest" statistic over the history window:
/// the between-run drift this machine has already demonstrated.
///
/// Samples within a run share machine state (turbo, cache residency,
/// co-tenants), so the pooled permutation null — which shuffles
/// individual samples — underestimates run-to-run variance. The fresh
/// run must stick out farther than any past run did before its shift
/// counts as significant.
fn between_run_drift(groups: &[Vec<f64>]) -> Option<f64> {
    if groups.len() < 2 {
        return None;
    }
    let mut worst: Option<f64> = None;
    for (i, held_out) in groups.iter().enumerate() {
        let rest: Vec<f64> = groups
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, g)| g.iter().copied())
            .collect();
        if let Some(e) = effect_size(&rest, held_out) {
            let s = e.shift_frac_of_spread;
            worst = Some(worst.map_or(s, |w| w.max(s)));
        }
    }
    worst
}

#[allow(clippy::too_many_arguments)]
fn quantile_verdict(
    name: &str,
    baseline_ns: f64,
    fresh_ns: Option<f64>,
    fresh_samples: &[f64],
    population: &[f64],
    mode: GateMode,
    drift_floor: Option<f64>,
    opts: &GateOptions,
) -> Option<BenchVerdict> {
    let cfg = GateConfig {
        min_effect_frac: opts.min_effect_for(name),
        ..opts.gate
    };
    let mut v = quantile_gate(population, fresh_samples, &cfg)?;
    if let Some(floor) = drift_floor {
        if floor > v.threshold {
            v.threshold = floor;
            v.significant = v.statistic > floor;
            v.regression = v.significant && v.material;
        }
    }
    Some(BenchVerdict {
        name: name.to_string(),
        baseline_ns,
        fresh_ns,
        ratio: fresh_ns.map(|f| f / baseline_ns),
        tolerance: cfg.min_effect_frac,
        mode,
        shift_ns: Some(v.effect.max_shift_ns),
        shift_frac_of_spread: Some(v.effect.shift_frac_of_spread),
        threshold: Some(v.threshold),
        ok: !v.regression,
    })
}

/// The parts shared by both gates: new-benchmark notes, the hit-rate
/// gate, and the fresh-side carry-over for the history line.
fn finish_report(report: &mut CheckReport, baseline: &BenchFile, fresh: &BenchFile) {
    for name in fresh.benches.keys() {
        if !baseline.benches.contains_key(name) {
            report.new_benches.push(name.clone());
        }
    }
    if let (Some(&base), Some(&new)) = (
        baseline.metrics.get(names::SOLVER_CACHE_HIT_RATE),
        fresh.metrics.get(names::SOLVER_CACHE_HIT_RATE),
    ) {
        report.hit_rate = Some((base, new, new >= base - HIT_RATE_SLACK));
    }
    report.fresh_samples = fresh.samples.clone();
    report.fresh_provenance = fresh.provenance.clone();
}

/// Appends the comparison's history line to `path` (created when
/// missing).
///
/// # Errors
///
/// Propagates the I/O error.
pub fn append_history(path: &Path, report: &CheckReport) -> std::io::Result<()> {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", report.history_line(unix_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(campaign_ns: f64, hit_rate: f64) -> String {
        format!(
            concat!(
                "{{\n  \"benchmarks\": [\n",
                "    {{\"name\": \"solve_thermal\", \"fast_ns\": 250.0, \"reference_ns\": 2000.0, \"speedup\": 8.00}},\n",
                "    {{\"name\": \"campaign_exhdyn_2chips\", \"fast_ns\": {:.1}, \"reference_ns\": null, \"speedup\": null}}\n",
                "  ],\n",
                "  \"metrics\": {{\"solver.cache.hits\": 90.0, \"solver.cache.hit_rate\": {:.4}}}\n}}\n"
            ),
            campaign_ns, hit_rate
        )
    }

    fn samples(center: f64, n: usize) -> Vec<f64> {
        // ±2% deterministic jitter around `center`.
        (0..n)
            .map(|i| center * (1.0 + 0.02 * f64::from(i as u32 % 5) / 4.0 - 0.01))
            .collect()
    }

    fn v2_file(name: &str, center: f64, host: &str) -> BenchFile {
        let mut f = BenchFile {
            format: 2,
            ..BenchFile::default()
        };
        f.benches.insert(name.to_string(), center);
        f.samples.insert(name.to_string(), samples(center, 9));
        f.provenance = Some(Provenance {
            artifact: "bench-json".to_string(),
            content_address: None,
            git_revision: "test".to_string(),
            host: host.to_string(),
            config_fingerprint: None,
            schema_hash: String::new(),
        });
        f
    }

    fn history_for(name: &str, center: f64, host: &str, records: usize) -> Vec<HistoryRecord> {
        (0..records)
            .map(|_| {
                let mut rec = HistoryRecord {
                    format: 2,
                    host: Some(host.to_string()),
                    ..HistoryRecord::default()
                };
                rec.samples.insert(name.to_string(), samples(center, 9));
                rec
            })
            .collect()
    }

    #[test]
    fn parses_benchmarks_and_metrics() {
        let f = BenchFile::parse(&bench_json(1e9, 0.91)).expect("parses");
        assert_eq!(f.benches["solve_thermal"], 250.0);
        assert_eq!(f.metrics["solver.cache.hit_rate"], 0.91);
        assert_eq!(f.format, 1);
        assert!(f.samples.is_empty());
        assert!(f.provenance.is_none());
    }

    #[test]
    fn parses_v2_samples_and_provenance() {
        let text = concat!(
            "{\"format\": 2, \"benchmarks\": [",
            "{\"name\": \"a\", \"fast_ns\": 10.0, \"reference_ns\": null, ",
            "\"speedup\": null, \"samples_ns\": [9.0, 10.0, 11.0]}],",
            "\"metrics\": {},",
            "\"provenance\": {\"artifact\": \"bench-json\", ",
            "\"content_address\": \"abcd\", \"git_revision\": \"r\", ",
            "\"host\": \"h\", \"config_fingerprint\": null, ",
            "\"schema_hash\": \"s\"}}"
        );
        let f = BenchFile::parse(text).expect("parses");
        assert_eq!(f.format, 2);
        assert_eq!(f.samples["a"], vec![9.0, 10.0, 11.0]);
        let p = f.provenance.expect("stamped");
        assert_eq!(p.host, "h");
        assert_eq!(p.content_address.as_deref(), Some("abcd"));
    }

    #[test]
    fn within_tolerance_passes_and_over_fails() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let tol = Tolerances::default();

        // +10% on a 15%-gated row: pass.
        let mut fresh = baseline.clone();
        fresh.benches.insert("solve_thermal".into(), 275.0);
        assert!(check(&baseline, &fresh, &tol).pass());

        // +20%: fail, and the verdict names the row.
        fresh.benches.insert("solve_thermal".into(), 300.0);
        let report = check(&baseline, &fresh, &tol);
        assert!(!report.pass());
        let row = report.rows.iter().find(|r| r.name == "solve_thermal").unwrap();
        assert!(!row.ok);
        assert_eq!(row.mode, GateMode::Legacy);
        assert!(report.render_text().contains("FAIL"));
    }

    #[test]
    fn noisy_campaign_row_gets_its_wider_tolerance() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let tol = Tolerances::default();
        // +40% on the end-to-end row is inside its 50% override.
        let mut fresh = baseline.clone();
        fresh.benches.insert("campaign_exhdyn_2chips".into(), 1.4e9);
        assert!(check(&baseline, &fresh, &tol).pass());
        // +60% is not.
        fresh.benches.insert("campaign_exhdyn_2chips".into(), 1.6e9);
        assert!(!check(&baseline, &fresh, &tol).pass());
    }

    #[test]
    fn missing_benchmark_is_a_regression() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let mut fresh = baseline.clone();
        fresh.benches.remove("solve_thermal");
        let report = check(&baseline, &fresh, &Tolerances::default());
        assert!(!report.pass());
        assert!(report.render_text().contains("missing"));
    }

    #[test]
    fn hit_rate_gate_allows_slack_but_not_a_real_drop() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let fresh_ok = BenchFile::parse(&bench_json(1e9, 0.90)).unwrap();
        assert!(check(&baseline, &fresh_ok, &Tolerances::default()).pass());
        let fresh_bad = BenchFile::parse(&bench_json(1e9, 0.80)).unwrap();
        let report = check(&baseline, &fresh_bad, &Tolerances::default());
        assert!(!report.pass());
        assert_eq!(report.hit_rate, Some((0.91, 0.80, false)));
    }

    #[test]
    fn history_line_is_one_valid_json_object() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let report = check(&baseline, &baseline, &Tolerances::default());
        let line = report.history_line(1_700_000_000);
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("pass").and_then(Json::as_bool), Some(true));
        assert_eq!(v.u64_field("unix_secs"), Some(1_700_000_000));
        assert!(v.get("benchmarks").and_then(|b| b.get("solve_thermal")).is_some());
    }

    #[test]
    fn legacy_files_without_metrics_skip_the_hit_rate_gate() {
        let legacy = r#"{"benchmarks": [{"name": "solve_thermal", "fast_ns": 250.0, "reference_ns": null, "speedup": null}]}"#;
        let f = BenchFile::parse(legacy).expect("parses");
        assert!(f.metrics.is_empty());
        let report = check(&f, &f, &Tolerances::default());
        assert!(report.pass());
        assert!(report.hit_rate.is_none());
    }

    #[test]
    fn distribution_gate_uses_history_when_thick_enough() {
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1000.0, "host-1");
        let history = history_for("a", 1000.0, "host-1", 3);
        let report = check_distribution(&baseline, &fresh, &history, &GateOptions::new());
        assert_eq!(report.rows[0].mode, GateMode::QuantileHistory);
        assert!(report.pass());
    }

    #[test]
    fn distribution_gate_ignores_other_hosts_history() {
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1000.0, "host-1");
        // Plenty of history — all from a different machine.
        let history = history_for("a", 5000.0, "host-2", 10);
        let report = check_distribution(&baseline, &fresh, &history, &GateOptions::new());
        // Falls back to the baseline file's own samples, and passes
        // (identical distribution), instead of comparing against the
        // 5x-slower foreign host.
        assert_eq!(report.rows[0].mode, GateMode::QuantileBaseline);
        assert!(report.pass());
    }

    #[test]
    fn between_run_drift_raises_the_significance_bar() {
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1100.0, "host-1");
        // This machine's history already wobbles ±10% run to run, so a
        // fresh run at +10% is inside its demonstrated drift.
        let mut wobbly = history_for("a", 1000.0, "host-1", 1);
        wobbly.extend(history_for("a", 1100.0, "host-1", 1));
        wobbly.extend(history_for("a", 950.0, "host-1", 1));
        let report = check_distribution(&baseline, &fresh, &wobbly, &GateOptions::new());
        assert_eq!(report.rows[0].mode, GateMode::QuantileHistory);
        assert!(report.pass(), "a shift inside the observed wobble is noise");
        // The same +10% on a rock-steady machine is a regression.
        let steady = history_for("a", 1000.0, "host-1", 3);
        let report = check_distribution(&baseline, &fresh, &steady, &GateOptions::new());
        assert_eq!(report.rows[0].mode, GateMode::QuantileHistory);
        assert!(!report.pass(), "steady history keeps the gate sharp");
    }

    #[test]
    fn cross_machine_baseline_falls_back_to_legacy() {
        // Fresh machine, no history yet: the committed baseline's
        // sample distribution belongs to another host, so the quantile
        // gate must stand down rather than flag the hardware delta.
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1120.0, "host-2");
        let mut opts = GateOptions::new();
        opts.tolerances.default = 0.35;
        let report = check_distribution(&baseline, &fresh, &[], &opts);
        assert_eq!(report.rows[0].mode, GateMode::Legacy);
        assert!(report.pass(), "+12% is inside the legacy 0.35 ratio");
        // Same-host history still wins over the mismatch when present.
        let history = history_for("a", 1000.0, "host-2", 3);
        let report = check_distribution(&baseline, &fresh, &history, &opts);
        assert_eq!(report.rows[0].mode, GateMode::QuantileHistory);
    }

    #[test]
    fn distribution_gate_falls_back_to_legacy_without_samples() {
        let baseline = BenchFile::parse(&bench_json(1e9, 0.91)).unwrap();
        let fresh = baseline.clone();
        let report = check_distribution(&baseline, &fresh, &[], &GateOptions::new());
        assert!(report.rows.iter().all(|r| r.mode == GateMode::Legacy));
        assert!(report.pass());
    }

    #[test]
    fn force_legacy_overrides_samples() {
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1000.0, "host-1");
        let opts = GateOptions {
            force_legacy: true,
            ..GateOptions::new()
        };
        let report = check_distribution(&baseline, &fresh, &[], &opts);
        assert_eq!(report.rows[0].mode, GateMode::Legacy);
        assert!(report.pass());
    }

    #[test]
    fn v2_history_line_round_trips_through_parse_history() {
        let baseline = v2_file("a", 1000.0, "host-1");
        let fresh = v2_file("a", 1000.0, "host-1");
        let report = check_distribution(&baseline, &fresh, &[], &GateOptions::new());
        let line = report.history_line(1_700_000_000);
        let records = parse_history(&format!("# comment header\n\n{line}\n"));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].format, 2);
        assert_eq!(records[0].host.as_deref(), Some("host-1"));
        assert_eq!(records[0].samples["a"].len(), 9);
    }

    #[test]
    fn parse_history_tolerates_junk_lines() {
        let text = "# header\nnot json\n{\"unix_secs\": 1, \"pass\": true, \"benchmarks\": {}, \"hit_rate\": null}\n";
        let records = parse_history(text);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].format, 1);
        assert!(records[0].samples.is_empty());
    }
}
