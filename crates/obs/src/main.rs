//! The `eval-obs` command-line tool.
//!
//! ```text
//! eval-obs analyze <trace.jsonl> [--json]
//! eval-obs bench-check --baseline <BENCH.json> --fresh <BENCH.json>
//!                      [--history <path>] [--tolerance 0.15]
//!                      [--tolerance name=0.5]...
//! eval-obs serve <metrics.prom> [--addr 127.0.0.1:9184] [--once]
//! ```
//!
//! `analyze` reads `-` as stdin, so a trace can be piped straight in.
//! Exit status: `bench-check` exits 1 on a regression; everything else
//! exits 1 only on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use eval_obs::bench_check::{self, BenchFile, Tolerances};
use eval_obs::{analyze_reader, MetricsServer};

const USAGE: &str = "usage:
  eval-obs analyze <trace.jsonl | -> [--json]
  eval-obs bench-check --baseline <BENCH.json> --fresh <BENCH.json> [--history <path>] [--tolerance X | --tolerance name=X]...
  eval-obs serve <metrics.prom> [--addr HOST:PORT] [--once]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("bench-check") => return cmd_bench_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("eval-obs: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_analyze(args: &[String]) -> CliResult {
    let mut path: Option<&str> = None;
    let mut as_json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => as_json = true,
            other if path.is_none() => path = Some(other),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = path.ok_or("analyze needs a trace path (or `-` for stdin)")?;
    let analysis = if path == "-" {
        let stdin = std::io::stdin();
        analyze_reader(stdin.lock())?
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        analyze_reader(std::io::BufReader::new(file))?
    };
    if analysis.truncated_tail {
        eprintln!("# WARNING: {path}: torn final line dropped (trace truncated by a crash)");
    }
    if as_json {
        println!("{}", analysis.report_json());
    } else {
        print!("{}", analysis.report_text());
    }
    Ok(())
}

fn cmd_bench_check(args: &[String]) -> ExitCode {
    match run_bench_check(args) {
        Ok(pass) => {
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("eval-obs: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_bench_check(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut history: Option<PathBuf> = None;
    let mut tolerances = Tolerances::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?.into()),
            "--fresh" => fresh = Some(it.next().ok_or("--fresh needs a path")?.into()),
            "--history" => history = Some(it.next().ok_or("--history needs a path")?.into()),
            "--tolerance" => {
                let spec = it.next().ok_or("--tolerance needs a value")?;
                match spec.split_once('=') {
                    Some((name, v)) => {
                        let v: f64 = v.parse().map_err(|_| format!("bad tolerance `{spec}`"))?;
                        tolerances.per_bench.insert(name.to_string(), v);
                    }
                    None => {
                        tolerances.default = spec
                            .parse()
                            .map_err(|_| format!("bad tolerance `{spec}`"))?;
                    }
                }
            }
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let baseline_path = baseline.ok_or("bench-check needs --baseline")?;
    let fresh_path = fresh.ok_or("bench-check needs --fresh")?;
    let baseline = BenchFile::load(&baseline_path)?;
    let fresh = BenchFile::load(&fresh_path)?;
    let report = bench_check::check(&baseline, &fresh, &tolerances);
    print!("{}", report.render_text());
    if let Some(history) = history {
        bench_check::append_history(&history, &report)?;
        eprintln!("# history appended to {}", history.display());
    }
    Ok(report.pass())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut path: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:9184".to_string();
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--once" => once = true,
            other if path.is_none() => path = Some(other.into()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = path.ok_or("serve needs a metrics file path")?;
    let server = MetricsServer::bind(&addr)?;
    eprintln!(
        "# serving {} at http://{}/metrics",
        path.display(),
        server.local_addr()?
    );
    server.serve_path(&path, if once { Some(1) } else { None })?;
    Ok(())
}
