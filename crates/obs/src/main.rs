//! The `eval-obs` command-line tool.
//!
//! ```text
//! eval-obs analyze <trace.jsonl> [--json | --format json|text]
//! eval-obs bench-check --baseline <BENCH.json> --fresh <BENCH.json>
//!                      [--history <path>] [--tolerance X | name=X]...
//!                      [--legacy-tolerance X] [--alpha A] [--trials N]
//!                      [--min-effect X | name=X]...
//! eval-obs runs list|show <sel>|diff <a> <b> [--journal <path>]
//! eval-obs serve <metrics.prom> [--addr 127.0.0.1:9184] [--once]
//! ```
//!
//! `analyze` reads `-` as stdin, so a trace can be piped straight in.
//!
//! `bench-check` gates with the distribution-aware quantile test when
//! the fresh file carries sample vectors (`hotpath --samples N`),
//! falling back to the fixed-ratio gate for v1 records or thin data;
//! `--legacy-tolerance X` forces the ratio gate everywhere.
//!
//! `runs` reads the provenance journal (`--journal`, default
//! `$EVAL_RUNS_JOURNAL` or `runs/journal.jsonl`); selectors are a list
//! index, a content-address prefix, or a path suffix.
//!
//! Exit status: `bench-check` exits 1 on a regression; everything else
//! exits 1 only on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use eval_obs::bench_check::{self, BenchFile, GateOptions};
use eval_obs::{analyze_reader, runs, MetricsServer};

const USAGE: &str = "usage:
  eval-obs analyze <trace.jsonl | -> [--json | --format json|text]
  eval-obs bench-check --baseline <BENCH.json> --fresh <BENCH.json> [--history <path>]
                       [--tolerance X | --tolerance name=X]... [--legacy-tolerance X]
                       [--alpha A] [--trials N] [--min-effect X | --min-effect name=X]...
  eval-obs runs list|show <sel>|diff <a> <b> [--journal <path>]
  eval-obs serve <metrics.prom> [--addr HOST:PORT] [--once]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("bench-check") => return cmd_bench_check(&args[1..]),
        Some("runs") => cmd_runs(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("eval-obs: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_analyze(args: &[String]) -> CliResult {
    let mut path: Option<&str> = None;
    let mut as_json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => as_json = true,
            "--format" => match it.next().ok_or("--format needs json|text")?.as_str() {
                "json" => as_json = true,
                "text" => as_json = false,
                other => return Err(format!("bad format `{other}` (json|text)").into()),
            },
            other if path.is_none() => path = Some(other),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = path.ok_or("analyze needs a trace path (or `-` for stdin)")?;
    let analysis = if path == "-" {
        let stdin = std::io::stdin();
        analyze_reader(stdin.lock())?
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        analyze_reader(std::io::BufReader::new(file))?
    };
    if analysis.truncated_tail {
        eprintln!("# WARNING: {path}: torn final line dropped (trace truncated by a crash)");
    }
    if as_json {
        println!("{}", analysis.report_json());
    } else {
        print!("{}", analysis.report_text());
    }
    Ok(())
}

fn cmd_bench_check(args: &[String]) -> ExitCode {
    match run_bench_check(args) {
        Ok(pass) => {
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("eval-obs: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_spec(
    spec: &str,
    flag: &str,
    opts: &mut GateOptions,
    default: &mut dyn FnMut(&mut GateOptions, f64),
) -> Result<(), String> {
    match spec.split_once('=') {
        Some((name, v)) => {
            let v: f64 = v.parse().map_err(|_| format!("bad {flag} `{spec}`"))?;
            opts.tolerances.per_bench.insert(name.to_string(), v);
            Ok(())
        }
        None => {
            let v: f64 = spec.parse().map_err(|_| format!("bad {flag} `{spec}`"))?;
            default(opts, v);
            Ok(())
        }
    }
}

fn run_bench_check(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut history: Option<PathBuf> = None;
    let mut opts = GateOptions::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?.into()),
            "--fresh" => fresh = Some(it.next().ok_or("--fresh needs a path")?.into()),
            "--history" => history = Some(it.next().ok_or("--history needs a path")?.into()),
            "--tolerance" => {
                let spec = it.next().ok_or("--tolerance needs a value")?;
                parse_spec(spec, "tolerance", &mut opts, &mut |o, v| {
                    o.tolerances.default = v;
                })?;
            }
            "--legacy-tolerance" => {
                let spec = it.next().ok_or("--legacy-tolerance needs a value")?;
                opts.force_legacy = true;
                opts.tolerances.default = spec
                    .parse()
                    .map_err(|_| format!("bad legacy tolerance `{spec}`"))?;
            }
            "--min-effect" => {
                let spec = it.next().ok_or("--min-effect needs a value")?;
                parse_spec(spec, "min-effect", &mut opts, &mut |o, v| {
                    o.gate.min_effect_frac = v;
                })?;
            }
            "--alpha" => {
                let spec = it.next().ok_or("--alpha needs a value")?;
                opts.gate.alpha = spec.parse().map_err(|_| format!("bad alpha `{spec}`"))?;
            }
            "--trials" => {
                let spec = it.next().ok_or("--trials needs a count")?;
                opts.gate.trials = spec.parse().map_err(|_| format!("bad trials `{spec}`"))?;
            }
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let baseline_path = baseline.ok_or("bench-check needs --baseline")?;
    let fresh_path = fresh.ok_or("bench-check needs --fresh")?;
    let baseline = BenchFile::load(&baseline_path)?;
    let fresh = BenchFile::load(&fresh_path)?;
    let records = match &history {
        Some(path) => bench_check::load_history(path)?,
        None => Vec::new(),
    };
    let report = bench_check::check_distribution(&baseline, &fresh, &records, &opts);
    print!("{}", report.render_text());
    if let Some(history) = history {
        bench_check::append_history(&history, &report)?;
        eprintln!("# history appended to {}", history.display());
    }
    Ok(report.pass())
}

fn cmd_runs(args: &[String]) -> CliResult {
    let mut journal: Option<PathBuf> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal = Some(it.next().ok_or("--journal needs a path")?.into()),
            other => positional.push(other),
        }
    }
    let journal = journal
        .or_else(eval_trace::provenance::journal_path)
        .unwrap_or_else(|| PathBuf::from("runs/journal.jsonl"));
    let entries = runs::load_journal(&journal)
        .map_err(|e| format!("{}: {e} (no journal? set EVAL_RUNS_JOURNAL)", journal.display()))?;
    let lookup = |sel: &str| {
        runs::find(&entries, sel)
            .ok_or_else(|| format!("no run matches `{sel}` in {}", journal.display()))
    };
    match positional.as_slice() {
        ["list"] => print!("{}", runs::render_list(&entries)),
        ["show", sel] => print!("{}", runs::render_show(lookup(sel)?)),
        ["diff", a, b] => print!("{}", runs::render_diff(lookup(a)?, lookup(b)?)),
        _ => return Err(format!("runs needs list | show <sel> | diff <a> <b>\n{USAGE}").into()),
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut path: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:9184".to_string();
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--once" => once = true,
            other if path.is_none() => path = Some(other.into()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = path.ok_or("serve needs a metrics file path")?;
    let server = MetricsServer::bind(&addr)?;
    eprintln!(
        "# serving {} at http://{}/metrics",
        path.display(),
        server.local_addr()?
    );
    server.serve_path(&path, if once { Some(1) } else { None })?;
    Ok(())
}
