//! Live campaign progress: a [`TraceSink`] decorator with a throttled
//! heartbeat.
//!
//! [`ProgressSink`] wraps any inner sink. Every record is **observed by
//! reference and then forwarded verbatim in the same call** — the
//! decorator cannot reorder, rewrite, or drop records, so a traced run
//! produces a bit-identical JSONL stream with or without it (the
//! round-trip test in `tests/obs_roundtrip.rs` pins this).
//!
//! The observation side keeps a tiny mirror of campaign state — chips
//! done/total from the `campaign-start` event and the live
//! `campaign.chips_done` counter the workers emit — plus a mirror
//! [`Registry`] of every metric update, and writes a single-line
//! heartbeat (chips done/total, chips/sec, ETA, decision and solver
//! counters) to its own writer (normally stderr), throttled to one line
//! per interval. The heartbeat consults the wall clock; none of that
//! timing ever reaches the inner sink.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use eval_trace::{names, Event, Record, Registry, TraceSink};

struct State<W> {
    out: W,
    interval: Duration,
    started: Instant,
    last_beat: Option<Instant>,
    last_len: usize,
    chips_total: Option<u64>,
    chips_done: u64,
    chips_resumed: u64,
    records: u64,
    registry: Registry,
}

/// A progress-reporting decorator around an inner [`TraceSink`].
///
/// Create with [`ProgressSink::new`] (custom writer and interval, used
/// by the tests) or [`ProgressSink::stderr`] (what the `--progress`
/// flag wires up). Recover the inner sink with
/// [`ProgressSink::into_inner`], which finishes the progress line.
pub struct ProgressSink<S, W> {
    inner: S,
    state: Mutex<State<W>>,
}

impl<S: TraceSink, W: Write + Send> ProgressSink<S, W> {
    /// Wraps `inner`, writing heartbeats to `out` at most once per
    /// `interval` (a zero interval beats on every record — tests only).
    pub fn new(inner: S, out: W, interval: Duration) -> Self {
        Self {
            inner,
            state: Mutex::new(State {
                out,
                interval,
                started: Instant::now(),
                last_beat: None,
                last_len: 0,
                chips_total: None,
                chips_done: 0,
                chips_resumed: 0,
                records: 0,
                registry: Registry::new(),
            }),
        }
    }

    /// Chips completed so far (from the live `campaign.chips_done`
    /// counter).
    pub fn chips_done(&self) -> u64 {
        self.lock().chips_done
    }

    /// Chips restored from a checkpoint rather than run in this process
    /// (from the `campaign.chips_resumed` counter; 0 on a fresh run).
    pub fn chips_resumed(&self) -> u64 {
        self.lock().chips_resumed
    }

    /// The wrapped sink, without consuming the decorator (e.g. to read a
    /// streaming sink's registry mid-run).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Ends the progress line (final heartbeat plus newline) and
    /// returns the inner sink.
    pub fn into_inner(self) -> S {
        {
            let mut state = self.lock();
            let line = heartbeat_line(&state);
            let _ = write_beat(&mut state, &line);
            let _ = state.out.write_all(b"\n");
            let _ = state.out.flush();
        }
        self.inner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<W>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Updates the mirror state from one record; never touches `rec`.
    fn observe(&self, rec: &Record) {
        let mut state = self.lock();
        state.records += 1;
        match rec {
            Record::Event(Event::CampaignStart { chips, .. }) => {
                state.chips_total = Some(*chips);
                state.chips_done = 0;
            }
            Record::Metric(update) => {
                match update {
                    eval_trace::MetricUpdate::CounterAdd(name, n)
                        if name.as_ref() == names::CAMPAIGN_CHIPS_DONE =>
                    {
                        state.chips_done += n;
                    }
                    eval_trace::MetricUpdate::CounterAdd(name, n)
                        if name.as_ref() == names::CAMPAIGN_CHIPS_RESUMED =>
                    {
                        state.chips_resumed += n;
                    }
                    // A resumed campaign skips the campaign-start event
                    // (it is already on disk) and announces the population
                    // size through this gauge instead.
                    eval_trace::MetricUpdate::GaugeSet(name, total)
                        if name.as_ref() == names::CAMPAIGN_CHIPS_TOTAL
                            && state.chips_total.is_none()
                            && *total > 0.0 =>
                    {
                        state.chips_total = Some(*total as u64);
                    }
                    _ => {}
                }
                state.registry.apply(update);
            }
            _ => {}
        }
        let due = match state.last_beat {
            None => true,
            Some(at) => at.elapsed() >= state.interval,
        };
        if due {
            let line = heartbeat_line(&state);
            let _ = write_beat(&mut state, &line);
        }
    }
}

impl<S: TraceSink> ProgressSink<S, std::io::Stderr> {
    /// The standard campaign progress sink: heartbeats to stderr, at
    /// most twice a second.
    pub fn stderr(inner: S) -> Self {
        Self::new(inner, std::io::stderr(), Duration::from_millis(500))
    }
}

impl<S: TraceSink, W: Write + Send> TraceSink for ProgressSink<S, W> {
    fn record(&self, rec: Record) {
        self.observe(&rec);
        self.inner.record(rec);
    }

    fn flush(&self) {
        // Forwarded verbatim so a wrapped streaming sink still commits
        // one chip segment per replay.
        self.inner.flush();
    }
}

impl<S, W> std::fmt::Debug for ProgressSink<S, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink").finish_non_exhaustive()
    }
}

/// Renders the current heartbeat (no trailing newline).
fn heartbeat_line<W>(state: &State<W>) -> String {
    use std::fmt::Write as _;
    let mut line = String::from("[eval] ");
    let elapsed = state.started.elapsed().as_secs_f64().max(1e-9);
    match state.chips_total {
        Some(total) if total > 0 => {
            let done = state.chips_done.min(total);
            let pct = 100.0 * done as f64 / total as f64;
            let _ = write!(line, "chips {done}/{total} ({pct:.0}%)");
            if state.chips_resumed > 0 {
                let _ = write!(line, " [{} resumed]", state.chips_resumed);
            }
            // Rate and ETA reflect chips *this process* ran; resumed
            // chips were free and would skew the forecast.
            let fresh = done.saturating_sub(state.chips_resumed);
            if fresh > 0 {
                let rate = fresh as f64 / elapsed;
                let _ = write!(line, " | {rate:.2} chips/s");
                if done < total {
                    let eta = (total - done) as f64 / rate;
                    let _ = write!(line, " | eta {}", human_secs(eta));
                }
            }
        }
        _ => {
            let _ = write!(line, "{} records", state.records);
        }
    }
    let decisions = state.registry.counter(names::DECISION_COUNT);
    if decisions > 0 {
        let _ = write!(line, " | decisions {decisions}");
    }
    let hits = state.registry.counter(names::SOLVER_CACHE_HITS);
    let misses = state.registry.counter(names::SOLVER_CACHE_MISSES);
    if hits + misses > 0 {
        let rate = 100.0 * hits as f64 / (hits + misses) as f64;
        let _ = write!(line, " | cache {rate:.1}%");
    }
    let retunes = state.registry.counter(names::RETUNE_PROBES);
    if retunes > 0 {
        let _ = write!(line, " | probes {retunes}");
    }
    line
}

/// Writes `line` with a carriage return, blanking any longer previous
/// line, and stamps the throttle clock.
fn write_beat<W: Write>(state: &mut State<W>, line: &str) -> std::io::Result<()> {
    let pad = state.last_len.saturating_sub(line.len());
    state.out.write_all(b"\r")?;
    state.out.write_all(line.as_bytes())?;
    for _ in 0..pad {
        state.out.write_all(b" ")?;
    }
    state.out.flush()?;
    state.last_len = line.len();
    state.last_beat = Some(Instant::now());
    Ok(())
}

fn human_secs(s: f64) -> String {
    if s < 90.0 {
        format!("{s:.0}s")
    } else if s < 5400.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{:.1}h", s / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_trace::{Collector, MetricUpdate, Tracer};
    use std::sync::Mutex as StdMutex;

    /// A Vec<u8> writer that can be inspected after the sink is done.
    #[derive(Default, Clone)]
    struct SharedBuf(std::sync::Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Event(Event::CampaignStart {
                chips: 4,
                workloads: 2,
                cells: 6,
            }),
            Record::Metric(MetricUpdate::CounterAdd(names::CAMPAIGN_CHIPS_DONE.into(), 1)),
            Record::Metric(MetricUpdate::CounterAdd(names::DECISION_COUNT.into(), 3)),
            Record::Metric(MetricUpdate::CounterAdd(names::SOLVER_CACHE_HITS.into(), 9)),
            Record::Metric(MetricUpdate::CounterAdd(names::SOLVER_CACHE_MISSES.into(), 1)),
            Record::Event(Event::ChipStart { chip: 0 }),
            Record::Span {
                path: "campaign/chip".into(),
                nanos: 42,
            },
            Record::Metric(MetricUpdate::CounterAdd(names::CAMPAIGN_CHIPS_DONE.into(), 3)),
        ]
    }

    #[test]
    fn forwards_every_record_verbatim_and_in_order() {
        let buf = SharedBuf::default();
        let wrapped = ProgressSink::new(Collector::new(), buf.clone(), Duration::ZERO);
        for rec in sample_records() {
            wrapped.record(rec);
        }
        let inner = wrapped.into_inner();

        let plain = Collector::new();
        for rec in sample_records() {
            plain.record(rec);
        }
        // Byte-identical downstream stream: the decorator is invisible.
        assert_eq!(inner.jsonl(), plain.jsonl());
    }

    #[test]
    fn heartbeat_tracks_chips_rate_and_counters() {
        let buf = SharedBuf::default();
        let wrapped = ProgressSink::new(Collector::new(), buf.clone(), Duration::ZERO);
        for rec in sample_records() {
            wrapped.record(rec);
        }
        assert_eq!(wrapped.chips_done(), 4);
        drop(wrapped.into_inner());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("chips 4/4 (100%)"), "{text}");
        assert!(text.contains("chips 1/4 (25%)"), "{text}");
        assert!(text.contains("decisions 3"), "{text}");
        assert!(text.contains("cache 90.0%"), "{text}");
        assert!(text.ends_with('\n'), "final heartbeat terminates the line");
    }

    #[test]
    fn throttling_suppresses_intermediate_beats() {
        let buf = SharedBuf::default();
        // A day-long interval: only the very first record beats.
        let wrapped = ProgressSink::new(
            Collector::new(),
            buf.clone(),
            Duration::from_secs(86_400),
        );
        let t = Tracer::new(&wrapped);
        for _ in 0..100 {
            t.count(names::DECISION_COUNT);
        }
        drop(wrapped.into_inner());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // First-record beat + the final beat from into_inner.
        assert_eq!(text.matches('\r').count(), 2, "{text:?}");
    }

    #[test]
    fn resumed_runs_learn_totals_from_the_gauge_and_flag_resumed_chips() {
        let buf = SharedBuf::default();
        let wrapped = ProgressSink::new(Collector::new(), buf.clone(), Duration::ZERO);
        // A resumed campaign: no campaign-start event, the totals arrive
        // via the checkpoint-mode gauge and the resumed counter.
        wrapped.record(Record::Metric(MetricUpdate::GaugeSet(
            names::CAMPAIGN_CHIPS_TOTAL.into(),
            4.0,
        )));
        wrapped.record(Record::Metric(MetricUpdate::CounterAdd(
            names::CAMPAIGN_CHIPS_RESUMED.into(),
            2,
        )));
        wrapped.record(Record::Metric(MetricUpdate::CounterAdd(
            names::CAMPAIGN_CHIPS_DONE.into(),
            2,
        )));
        wrapped.record(Record::Metric(MetricUpdate::CounterAdd(
            names::CAMPAIGN_CHIPS_DONE.into(),
            1,
        )));
        assert_eq!(wrapped.chips_resumed(), 2);
        assert_eq!(wrapped.chips_done(), 3);
        drop(wrapped.into_inner());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("chips 3/4 (75%)"), "{text}");
        assert!(text.contains("[2 resumed]"), "{text}");
    }

    #[test]
    fn without_campaign_start_the_heartbeat_counts_records() {
        let buf = SharedBuf::default();
        let wrapped = ProgressSink::new(Collector::new(), buf.clone(), Duration::ZERO);
        wrapped.record(Record::Metric(MetricUpdate::CounterAdd("x".into(), 1)));
        drop(wrapped.into_inner());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("1 records"), "{text}");
    }
}
