//! Workload profiling: distilling a program into the per-phase inputs of
//! the EVAL adaptation layer.
//!
//! This mirrors the paper's measurement protocol (§4.3.3): at each phase,
//! counters estimate the activity factor of every subsystem and `CPIcomp`
//! under both issue-queue configurations; the L2 miss rate and observed
//! miss penalty parameterize the `mr * mp(f)` term of Equation 5.

use crate::checker::RecoveryModel;
use crate::core::{CoreConfig, OooCore, QueueSize};
use crate::counters::ActivityVector;
use crate::subsystem::N_SUBSYSTEMS;
use crate::trace::TraceGenerator;
use crate::workload::{Workload, WorkloadClass};

/// Frequency the fixed cache/memory latencies are expressed at (GHz).
pub const SIM_FREQ_GHZ: f64 = 4.0;

/// The measured behaviour of one program phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Phase index within the workload.
    pub index: usize,
    /// Fraction of the workload's instructions spent in this phase.
    pub weight: f64,
    /// Computation CPI with the full-size issue queue.
    pub cpi_comp_full: f64,
    /// Computation CPI with the 3/4-size issue queue.
    pub cpi_comp_small: f64,
    /// L2 misses per instruction.
    pub mr: f64,
    /// Observed non-overlapped L2 miss penalty in nanoseconds (frequency
    /// independent; multiply by `f` to get cycles — `mp(f)` grows with `f`).
    pub mp_ns: f64,
    /// Per-subsystem activity (with the full queue).
    pub activity: ActivityVector,
}

impl PhaseProfile {
    /// Computation CPI under the given queue sizing.
    pub fn cpi_comp(&self, size: QueueSize) -> f64 {
        match size {
            QueueSize::Full => self.cpi_comp_full,
            QueueSize::ThreeQuarters => self.cpi_comp_small,
        }
    }

    /// Per-instruction subsystem exercise rates (Equation 4 weights).
    pub fn rho(&self) -> &[f64; N_SUBSYSTEMS] {
        &self.activity.rho
    }
}

/// The complete profile of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: &'static str,
    /// Integer or FP program.
    pub class: WorkloadClass,
    /// Diva recovery penalty in cycles (frequency independent).
    pub rp_cycles: f64,
    /// Per-phase measurements, in program order.
    pub phases: Vec<PhaseProfile>,
}

impl WorkloadProfile {
    /// Instruction-weighted mean over phases of an extractor function.
    pub fn weighted<F: Fn(&PhaseProfile) -> f64>(&self, f: F) -> f64 {
        self.phases.iter().map(|p| p.weight * f(p)).sum()
    }

    /// The conservative worst-case activity vector across phases, which a
    /// static configuration must provision for.
    pub fn worst_case_activity(&self) -> ActivityVector {
        let (first, rest) = self
            .phases
            .split_first()
            // lint:allow(panic-safety): profile_workload always records at
            // least one phase; an empty profile has no worst case at all.
            .expect("profiles have at least one phase");
        rest.iter()
            .fold(first.activity, |acc, p| acc.max_with(&p.activity))
    }
}

/// Measures one phase in isolation: warm-up, then a measurement window.
fn measure_phase(
    workload: &Workload,
    phase_idx: usize,
    queue: QueueSize,
    budget: u64,
    seed: u64,
) -> (f64, f64, f64, ActivityVector) {
    // Re-create the workload consisting of just this phase, long enough for
    // warm-up plus measurement.
    let mut phase = workload.phases[phase_idx];
    let warmup = (budget / 2).max(2_000);
    phase.instructions = warmup + budget;
    let single = Workload {
        name: workload.name,
        class: workload.class,
        phases: vec![phase],
    };
    let config = CoreConfig {
        queue_size: queue,
        ..CoreConfig::micro08()
    };
    let mut core = OooCore::new(config);
    // Bring the phase's resident working set into the hierarchy first —
    // the measurement window is far shorter than one pass over the warm
    // set, so without this every warm access would be a compulsory miss.
    core.warm_caches(single.phases[0].footprint());
    let mut trace = TraceGenerator::new(&single, seed).peekable();
    core.run(&mut trace, warmup);
    let stats = core.run(&mut trace, budget);
    (
        stats.cpi_comp(),
        stats.mr(),
        stats.mp_cycles() / SIM_FREQ_GHZ,
        ActivityVector::from_stats(&stats),
    )
}

/// Profiles every phase of `workload` with `budget` measured instructions
/// per (phase, queue-config) pair, deterministically in `seed`.
///
/// # Panics
///
/// Panics if `budget` is zero.
pub fn profile_workload(workload: &Workload, budget: u64, seed: u64) -> WorkloadProfile {
    assert!(budget > 0, "measurement budget must be non-zero");
    let total: u64 = workload.phases.iter().map(|p| p.instructions).sum();
    let rp = RecoveryModel::from_config(&CoreConfig::micro08()).rp_cycles;
    let phases = workload
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (cpi_full, mr, mp_ns, activity) =
                measure_phase(workload, i, QueueSize::Full, budget, seed);
            let (cpi_small, _, _, _) =
                measure_phase(workload, i, QueueSize::ThreeQuarters, budget, seed);
            PhaseProfile {
                index: i,
                weight: p.instructions as f64 / total as f64,
                cpi_comp_full: cpi_full,
                // Downsizing can only remove scheduling opportunities; tiny
                // negative noise from identical traces is clamped away.
                cpi_comp_small: cpi_small.max(cpi_full),
                mr,
                mp_ns,
                activity,
            }
        })
        .collect();
    WorkloadProfile {
        name: workload.name,
        class: workload.class,
        rp_cycles: rp,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystem::SubsystemId;

    #[test]
    fn profile_covers_all_phases_with_unit_weight() {
        let w = Workload::by_name("equake").unwrap();
        let p = profile_workload(&w, 10_000, 5);
        assert_eq!(p.phases.len(), w.phases.len());
        let total_weight: f64 = p.phases.iter().map(|ph| ph.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_hogs_show_big_mr() {
        let art = profile_workload(&Workload::by_name("art").unwrap(), 10_000, 5);
        let sixtrack = profile_workload(&Workload::by_name("sixtrack").unwrap(), 10_000, 5);
        assert!(art.weighted(|p| p.mr) > 5.0 * sixtrack.weighted(|p| p.mr));
    }

    #[test]
    fn queue_downsizing_never_improves_cpi() {
        for name in ["swim", "gcc", "mcf", "mesa"] {
            let p = profile_workload(&Workload::by_name(name).unwrap(), 8_000, 9);
            for ph in &p.phases {
                assert!(ph.cpi_comp_small >= ph.cpi_comp_full);
            }
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let w = Workload::by_name("gzip").unwrap();
        assert_eq!(profile_workload(&w, 5_000, 3), profile_workload(&w, 5_000, 3));
    }

    #[test]
    fn worst_case_activity_dominates_every_phase() {
        let p = profile_workload(&Workload::by_name("gcc").unwrap(), 8_000, 7);
        let wc = p.worst_case_activity();
        for ph in &p.phases {
            for s in SubsystemId::ALL {
                assert!(wc.alpha(s) >= ph.activity.alpha(s));
            }
        }
    }

    #[test]
    fn mp_is_positive_when_misses_exist() {
        let p = profile_workload(&Workload::by_name("mcf").unwrap(), 10_000, 5);
        let heavy = &p.phases[0];
        assert!(heavy.mr > 0.0);
        assert!(heavy.mp_ns > 0.0);
        // Non-overlapped penalty cannot exceed the full memory round trip.
        assert!(heavy.mp_ns <= 208.0 / SIM_FREQ_GHZ + 1e-9);
    }
}
