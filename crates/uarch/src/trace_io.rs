//! Trace import/export: a line-oriented text format so externally captured
//! instruction traces (from a binary-instrumentation tool, another
//! simulator, or a saved synthetic run) can drive [`crate::OooCore`], and
//! synthetic traces can be archived for exact replay elsewhere.
//!
//! Format (`# eval trace v1` header, one instruction per line):
//!
//! ```text
//! # eval trace v1
//! alu   1 0 0x0    0 12      <- kind dep1 dep2 addr taken bb_id
//! load  2 0 0x1f40 0 12
//! br    0 0 0x0    1 13
//! ```
//!
//! Kinds: `alu`, `mul`, `fadd`, `fmul`, `load`, `store`, `br`.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::insn::{Instruction, Kind};

/// Header line identifying the format version.
pub const HEADER: &str = "# eval trace v1";

/// Error while parsing a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or unsupported header.
    BadHeader,
    /// Malformed instruction line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadHeader => write!(f, "missing or unsupported trace header"),
            TraceIoError::BadLine { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn kind_token(kind: Kind) -> &'static str {
    match kind {
        Kind::IntAlu => "alu",
        Kind::IntMul => "mul",
        Kind::FpAdd => "fadd",
        Kind::FpMul => "fmul",
        Kind::Load => "load",
        Kind::Store => "store",
        Kind::Branch => "br",
    }
}

fn parse_kind(token: &str) -> Option<Kind> {
    Some(match token {
        "alu" => Kind::IntAlu,
        "mul" => Kind::IntMul,
        "fadd" => Kind::FpAdd,
        "fmul" => Kind::FpMul,
        "load" => Kind::Load,
        "store" => Kind::Store,
        "br" => Kind::Branch,
        _ => return None,
    })
}

/// Writes a trace (header + one line per instruction).
///
/// # Errors
///
/// Propagates any I/O error from `out`.
pub fn write_trace<I, W>(instructions: I, out: &mut W) -> Result<usize, TraceIoError>
where
    I: IntoIterator<Item = Instruction>,
    W: Write,
{
    writeln!(out, "{HEADER}")?;
    let mut count = 0;
    for insn in instructions {
        writeln!(
            out,
            "{} {} {} {:#x} {} {}",
            kind_token(insn.kind),
            insn.dep1,
            insn.dep2,
            insn.addr,
            u8::from(insn.taken),
            insn.bb_id
        )?;
        count += 1;
    }
    Ok(count)
}

/// Reads a whole trace into memory.
///
/// Blank lines and `#` comments (after the header) are ignored.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, a bad header, or any malformed
/// line.
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<Instruction>, TraceIoError> {
    let mut lines = input.lines();
    match lines.next() {
        Some(Ok(first)) if first.trim() == HEADER => {}
        Some(Ok(_)) | None => return Err(TraceIoError::BadHeader),
        Some(Err(e)) => return Err(e.into()),
    }
    let mut out = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let line_no = idx + 2;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tok = trimmed.split_whitespace();
        let bad = |reason| TraceIoError::BadLine {
            line: line_no,
            reason,
        };
        let kind = parse_kind(tok.next().ok_or(bad("missing kind"))?)
            .ok_or(bad("unknown kind"))?;
        let dep1: u32 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(bad("bad dep1"))?;
        let dep2: u32 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(bad("bad dep2"))?;
        let addr_tok = tok.next().ok_or(bad("missing addr"))?;
        let addr = if let Some(hex) = addr_tok.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| bad("bad addr"))?
        } else {
            addr_tok.parse().map_err(|_| bad("bad addr"))?
        };
        let taken = match tok.next().ok_or(bad("missing taken"))? {
            "0" => false,
            "1" => true,
            _ => return Err(bad("taken must be 0 or 1")),
        };
        let bb_id: u32 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(bad("bad bb_id"))?;
        if tok.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        out.push(Instruction {
            kind,
            dep1,
            dep2,
            addr,
            taken,
            bb_id,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;
    use crate::workload::Workload;
    use crate::{CoreConfig, OooCore};

    #[test]
    fn round_trip_preserves_the_trace_exactly() {
        let w = Workload::by_name("equake").expect("exists");
        let original: Vec<Instruction> = TraceGenerator::new(&w, 3).take(2_000).collect();
        let mut buf = Vec::new();
        let written = write_trace(original.iter().copied(), &mut buf).expect("writes");
        assert_eq!(written, original.len());
        let back = read_trace(buf.as_slice()).expect("parses");
        assert_eq!(back, original);
    }

    #[test]
    fn imported_trace_drives_the_core_identically() {
        let w = Workload::by_name("gzip").expect("exists");
        let original: Vec<Instruction> = TraceGenerator::new(&w, 5).take(5_000).collect();
        let mut buf = Vec::new();
        write_trace(original.iter().copied(), &mut buf).expect("writes");
        let imported = read_trace(buf.as_slice()).expect("parses");

        let run = |insns: &[Instruction]| {
            let mut core = OooCore::new(CoreConfig::micro08());
            let mut it = insns.iter().copied().peekable();
            core.run(&mut it, insns.len() as u64)
        };
        assert_eq!(run(&original), run(&imported));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{HEADER}\n\n# a comment\nalu 1 0 0x0 0 7\n\nload 0 0 0x40 0 7\n"
        );
        let trace = read_trace(text.as_bytes()).expect("parses");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, Kind::IntAlu);
        assert_eq!(trace[1].addr, 0x40);
    }

    #[test]
    fn header_is_mandatory() {
        assert!(matches!(
            read_trace("alu 0 0 0 0 1\n".as_bytes()),
            Err(TraceIoError::BadHeader)
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let text = format!("{HEADER}\nalu 1 0 0x0 0 7\nwat 0 0 0 0 1\n");
        match read_trace(text.as_bytes()) {
            Err(TraceIoError::BadLine { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn taken_field_is_strict() {
        let text = format!("{HEADER}\nbr 0 0 0x0 2 1\n");
        assert!(matches!(
            read_trace(text.as_bytes()),
            Err(TraceIoError::BadLine { reason: "taken must be 0 or 1", .. })
        ));
    }

    #[test]
    fn decimal_and_hex_addresses_both_parse() {
        let text = format!("{HEADER}\nload 0 0 4096 0 1\nstore 0 0 0x1000 0 1\n");
        let trace = read_trace(text.as_bytes()).expect("parses");
        assert_eq!(trace[0].addr, trace[1].addr);
    }
}

#[cfg(test)]
mod golden {
    use super::*;

    /// The on-disk format is a contract: this golden test pins it so a
    /// refactor cannot silently orphan archived traces.
    #[test]
    fn serialization_format_is_stable() {
        let trace = [
            Instruction {
                kind: Kind::IntAlu,
                dep1: 1,
                dep2: 2,
                addr: 0,
                taken: false,
                bb_id: 7,
            },
            Instruction {
                kind: Kind::Load,
                dep1: 0,
                dep2: 0,
                addr: 0x1f40,
                taken: false,
                bb_id: 7,
            },
            Instruction {
                kind: Kind::Branch,
                dep1: 3,
                dep2: 0,
                addr: 0,
                taken: true,
                bb_id: 8,
            },
        ];
        let mut buf = Vec::new();
        write_trace(trace.iter().copied(), &mut buf).expect("writes");
        let text = String::from_utf8(buf).expect("utf-8");
        assert_eq!(
            text,
            "# eval trace v1\n\
             alu 1 2 0x0 0 7\n\
             load 0 0 0x1f40 0 7\n\
             br 3 0 0x0 1 8\n"
        );
    }
}
