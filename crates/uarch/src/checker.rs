//! Diva-style checker: error tolerance via retirement-time verification.
//!
//! The paper's timing-speculation substrate (§3.1, Figure 7(c)): a simple
//! in-order checker clocked at a safe 3.5 GHz verifies results as the main
//! core retires them. On a timing error, "recovery involves taking the
//! result from the checker, flushing the pipeline, and restarting it from
//! the instruction that follows the faulty one" — so the recovery penalty
//! `rp` equals the branch-misprediction penalty.

use eval_rng::ChaCha12Rng;

use crate::core::CoreConfig;

/// Cycles to refill the window after a flush, beyond the front-end depth.
const REFILL_CYCLES: u32 = 8;

/// The recovery-cost model of Equation 5's `CPIrec = PE * rp` term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Recovery penalty per error, in cycles.
    pub rp_cycles: f64,
}

impl RecoveryModel {
    /// Derives `rp` from the core configuration: pipeline flush plus refill
    /// (the Diva-style retirement checker of §3.1 — recovery equals a
    /// branch misprediction).
    pub fn from_config(config: &CoreConfig) -> Self {
        Self {
            rp_cycles: f64::from(config.branch_penalty() + REFILL_CYCLES),
        }
    }

    /// Razor-style in-situ recovery (§3.1's alternative: "augment the
    /// pipeline stages or functional units with error checking hardware").
    /// Shadow latches catch the late edge locally, so recovery is a short
    /// pipeline-local replay instead of a full flush.
    pub fn razor() -> Self {
        Self { rp_cycles: 5.0 }
    }

    /// Expected recovery cycles per instruction at error rate `pe`
    /// (errors/instruction).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in `[0, 1]`.
    pub fn cpi_rec(&self, pe: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pe), "PE must be a probability");
        pe * self.rp_cycles
    }
}

/// A Diva-like checker for the main core.
///
/// Tracks the core-wide error count (the `PE` counter the controller system
/// reads, §4.3.2) and can stochastically replay a committed-instruction
/// window to measure actual recovery cost.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Checker clock in GHz (sped up with ASV so it is error-free).
    pub f_checker_ghz: f64,
    /// Checker commit width (wide-issue thanks to its simplicity).
    pub width: usize,
    recovery: RecoveryModel,
    errors_detected: u64,
    instructions_checked: u64,
}

impl Checker {
    /// The evaluation checker: 3.5 GHz, 4-wide.
    pub fn micro08(config: &CoreConfig) -> Self {
        Self {
            f_checker_ghz: 3.5,
            width: 4,
            recovery: RecoveryModel::from_config(config),
            errors_detected: 0,
            instructions_checked: 0,
        }
    }

    /// The recovery model in use.
    pub fn recovery(&self) -> RecoveryModel {
        self.recovery
    }

    /// Whether the checker can keep up with the main core retiring `ipc`
    /// instructions per cycle at `f_core_ghz`: its verification bandwidth
    /// must cover the core's retirement bandwidth.
    pub fn sustains(&self, ipc: f64, f_core_ghz: f64) -> bool {
        ipc * f_core_ghz <= self.width as f64 * self.f_checker_ghz
    }

    /// Simulates checking `n` instructions at per-instruction error rate
    /// `pe`; every detected error costs `rp` recovery cycles. Returns the
    /// extra cycles incurred. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in `[0, 1]`.
    pub fn check_window(&mut self, n: u64, pe: f64, seed: u64) -> u64 {
        assert!((0.0..=1.0).contains(&pe), "PE must be a probability");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut extra = 0u64;
        for _ in 0..n {
            self.instructions_checked += 1;
            if pe > 0.0 && rng.gen::<f64>() < pe {
                self.errors_detected += 1;
                extra += self.recovery.rp_cycles as u64;
            }
        }
        extra
    }

    /// Observed error rate since construction (the controller's `PE`
    /// sensor reading).
    pub fn observed_pe(&self) -> f64 {
        if self.instructions_checked == 0 {
            0.0
        } else {
            self.errors_detected as f64 / self.instructions_checked as f64
        }
    }

    /// Errors detected since construction.
    pub fn errors_detected(&self) -> u64 {
        self.errors_detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rp_matches_branch_penalty_plus_refill() {
        let config = CoreConfig::micro08();
        let r = RecoveryModel::from_config(&config);
        assert_eq!(r.rp_cycles, f64::from(config.branch_penalty() + 8));
    }

    #[test]
    fn extra_stage_raises_rp() {
        let mut config = CoreConfig::micro08();
        let base = RecoveryModel::from_config(&config).rp_cycles;
        config.extra_fu_stage = true;
        assert_eq!(RecoveryModel::from_config(&config).rp_cycles, base + 1.0);
    }

    #[test]
    fn simulated_recovery_matches_analytic_expectation() {
        let config = CoreConfig::micro08();
        let mut checker = Checker::micro08(&config);
        let n = 2_000_000;
        let pe = 1e-3;
        let extra = checker.check_window(n, pe, 42);
        let expect = checker.recovery().cpi_rec(pe) * n as f64;
        let rel = (extra as f64 - expect).abs() / expect;
        assert!(rel < 0.10, "simulated {extra} vs expected {expect}");
        let obs = checker.observed_pe();
        assert!((obs / pe - 1.0).abs() < 0.10, "observed PE {obs}");
    }

    #[test]
    fn error_free_window_costs_nothing() {
        let config = CoreConfig::micro08();
        let mut checker = Checker::micro08(&config);
        assert_eq!(checker.check_window(10_000, 0.0, 1), 0);
        assert_eq!(checker.observed_pe(), 0.0);
    }

    #[test]
    fn checker_bandwidth_covers_evaluated_range() {
        let checker = Checker::micro08(&CoreConfig::micro08());
        // 3-wide core, even at the top of the frequency ladder.
        assert!(checker.sustains(2.5, 5.6));
        // But an absurd retirement rate exceeds it.
        assert!(!checker.sustains(4.0, 5.6));
    }
}

#[cfg(test)]
mod razor_tests {
    use super::*;

    #[test]
    fn razor_recovery_is_cheaper_per_error() {
        let diva = RecoveryModel::from_config(&CoreConfig::micro08());
        let razor = RecoveryModel::razor();
        assert!(razor.rp_cycles < diva.rp_cycles);
        // At the PEMAX operating point both are negligible (<< 1% CPI)...
        assert!(diva.cpi_rec(1e-4) < 0.01);
        // ...but past the cliff Razor tolerates an order of magnitude more
        // errors for the same recovery CPI.
        let budget = 0.1; // cycles/instruction spent on recovery
        let pe_diva = budget / diva.rp_cycles;
        let pe_razor = budget / razor.rp_cycles;
        assert!(pe_razor > 3.0 * pe_diva);
    }
}
