//! Gshare branch predictor.

/// A gshare predictor: global history XOR branch id indexes a table of
/// 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    history_bits: u32,
    history: u32,
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Creates a predictor with `2^history_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or above 24.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (4..=24).contains(&history_bits),
            "history bits must be in 4..=24"
        );
        Self {
            history_bits,
            history: 0,
            counters: vec![1; 1 << history_bits], // weakly not-taken
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The standard 12-bit (4096-entry) configuration.
    pub fn default_config() -> Self {
        Self::new(12)
    }

    /// History bits folded into the index. Short on purpose: the synthetic
    /// control flow picks successor blocks randomly, so long global
    /// histories carry no signal and only alias well-biased branches apart
    /// (per-branch bias *is* the predictable component, as in a bimodal
    /// table; a few history bits still capture short repeating patterns).
    const HISTORY_FOLD: u32 = 4;

    fn index(&self, bb_id: u32) -> usize {
        let table_mask = (1u32 << self.history_bits) - 1;
        let hist_mask = (1u32 << Self::HISTORY_FOLD) - 1;
        let bb_part = bb_id.wrapping_mul(0x9E37_79B9) >> (32 - self.history_bits);
        let hist_part = (self.history & hist_mask) << (self.history_bits - Self::HISTORY_FOLD);
        ((bb_part ^ hist_part) & table_mask) as usize
    }

    /// Predicts, then trains on the actual `taken` outcome.
    /// Returns `true` if the prediction was correct.
    pub fn predict_and_train(&mut self, bb_id: u32, taken: bool) -> bool {
        let idx = self.index(bb_id);
        let predicted_taken = self.counters[idx] >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        // Saturating 2-bit update.
        if taken {
            if self.counters[idx] < 3 {
                self.counters[idx] += 1;
            }
        } else if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
        let mask = (1u32 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u32) & mask;
        correct
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 if nothing predicted yet).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_branch() {
        let mut p = Gshare::default_config();
        for _ in 0..1000 {
            p.predict_and_train(42, true);
        }
        assert!(
            p.misprediction_rate() < 0.02,
            "rate = {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn learns_a_short_pattern() {
        // Period-4 pattern is captured by global history.
        let mut p = Gshare::default_config();
        let pattern = [true, true, false, true];
        for i in 0..4000usize {
            p.predict_and_train(7, pattern[i % 4]);
        }
        assert!(
            p.misprediction_rate() < 0.05,
            "rate = {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn random_branches_stay_hard() {
        // A deterministic pseudo-random stream (LCG) is unpredictable.
        let mut p = Gshare::default_config();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.predict_and_train(9, (x >> 33) & 1 == 1);
        }
        assert!(
            p.misprediction_rate() > 0.3,
            "rate = {}",
            p.misprediction_rate()
        );
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn rejects_zero_history() {
        Gshare::new(0);
    }
}
