//! Trace-driven out-of-order core model.
//!
//! A deliberately compact but *executing* model of a 3-issue core in the
//! style of the AMD Athlon 64 configuration of Figure 7(a): ROB, separate
//! integer/FP issue queues (resizable to 3/4 capacity), a load/store queue,
//! per-class functional units, a gshare front end and the L1/L2/memory
//! hierarchy. It commits the synthetic trace and reports the CPI
//! decomposition the EVAL performance model (Equation 5) needs.

use std::collections::VecDeque;

use crate::bpred::Gshare;
use crate::cache::{AccessOutcome, Hierarchy};
use crate::insn::{Instruction, Kind};

/// Issue-queue sizing — the paper's *Shift* microarchitecture technique
/// operates the queues at either full or 3/4 capacity (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueSize {
    /// Full-sized queues: 68-entry integer, 32-entry FP (Figure 7(a)).
    Full,
    /// Downsized to 3/4: 51-entry integer, 24-entry FP.
    ThreeQuarters,
}

/// Static configuration of the core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Fetch/dispatch/commit width.
    pub width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Full-size integer issue-queue capacity.
    pub int_queue: usize,
    /// Full-size FP issue-queue capacity.
    pub fp_queue: usize,
    /// Load/store queue capacity.
    pub lsq: usize,
    /// Current issue-queue sizing.
    pub queue_size: QueueSize,
    /// Whether FU replication's extra pipeline stage is present (§3.3.1:
    /// lengthens the branch-misprediction and load-misspeculation loops by
    /// one cycle).
    pub extra_fu_stage: bool,
    /// Front-end depth in cycles (redirect penalty base).
    pub frontend_depth: u32,
    /// Miss-status holding registers: maximum L2 misses outstanding at
    /// once. `None` models unlimited memory-level parallelism (the
    /// default, used by the evaluation); `Some(n)` throttles it.
    pub mshrs: Option<usize>,
}

impl CoreConfig {
    /// The evaluation configuration of Figure 7(a).
    pub fn micro08() -> Self {
        Self {
            width: 3,
            rob_size: 128,
            int_queue: 68,
            fp_queue: 32,
            lsq: 32,
            queue_size: QueueSize::Full,
            extra_fu_stage: false,
            frontend_depth: 12,
            mshrs: None,
        }
    }

    /// Effective integer-queue capacity under the current sizing.
    pub fn int_queue_effective(&self) -> usize {
        match self.queue_size {
            QueueSize::Full => self.int_queue,
            QueueSize::ThreeQuarters => self.int_queue * 3 / 4,
        }
    }

    /// Effective FP-queue capacity under the current sizing.
    pub fn fp_queue_effective(&self) -> usize {
        match self.queue_size {
            QueueSize::Full => self.fp_queue,
            QueueSize::ThreeQuarters => self.fp_queue * 3 / 4,
        }
    }

    /// Branch-misprediction penalty in cycles (also the Diva recovery
    /// penalty `rp`: "recovery involves taking the result from the checker,
    /// flushing the pipeline, and restarting" — §3.1).
    pub fn branch_penalty(&self) -> u32 {
        self.frontend_depth + u32::from(self.extra_fu_stage)
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::micro08()
    }
}

/// Counters accumulated by a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Cycles where commit was blocked by an L2-missing load at the ROB
    /// head — the non-overlapped memory penalty (`mr * mp` of Equation 5).
    pub mem_stall_cycles: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// Committed counts per [`Kind`] in declaration order.
    pub kind_counts: [u64; 7],
    /// Conditional branches seen.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Sum of integer-issue-queue occupancy over cycles (for utilization).
    pub int_q_occupancy: u64,
    /// Sum of FP-issue-queue occupancy over cycles.
    pub fp_q_occupancy: u64,
}

impl CoreStats {
    /// Total CPI.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions.max(1) as f64
    }

    /// Computation CPI: cycles not attributable to L2-miss stalls,
    /// per instruction (the `CPIcomp` of Equation 5 — includes L1 misses
    /// that hit in L2).
    pub fn cpi_comp(&self) -> f64 {
        (self.cycles - self.mem_stall_cycles) as f64 / self.instructions.max(1) as f64
    }

    /// L2 miss rate in misses per instruction (`mr`).
    pub fn mr(&self) -> f64 {
        self.l2_misses as f64 / self.instructions.max(1) as f64
    }

    /// Observed non-overlapped L2 miss penalty in cycles (`mp`), 0 if no
    /// misses occurred.
    pub fn mp_cycles(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.mem_stall_cycles as f64 / self.l2_misses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    kind: Kind,
    dep1: u64, // absolute seq of producer, u64::MAX = none
    dep2: u64,
    issued: bool,
    finish: u64,
    outcome: Option<AccessOutcome>,
    addr: u64,
    in_queue: bool,
}

/// The out-of-order core simulator.
///
/// Owns its branch predictor and cache hierarchy so that state persists
/// across [`OooCore::run`] calls (warm-up, then measurement).
#[derive(Debug, Clone)]
pub struct OooCore {
    config: CoreConfig,
    hierarchy: Hierarchy,
    gshare: Gshare,
    cycle: u64,
    next_seq: u64,
    front_seq: u64,
    rob: VecDeque<RobEntry>,
    int_q_used: usize,
    fp_q_used: usize,
    lsq_used: usize,
    fetch_resume: u64,
    stall_branch: Option<u64>,
}

impl OooCore {
    /// Creates a core with cold caches and an untrained predictor.
    pub fn new(config: CoreConfig) -> Self {
        Self {
            config,
            hierarchy: Hierarchy::new(),
            gshare: Gshare::default_config(),
            cycle: 0,
            next_seq: 0,
            front_seq: 0,
            rob: VecDeque::with_capacity(config.rob_size),
            int_q_used: 0,
            fp_q_used: 0,
            lsq_used: 0,
            fetch_resume: 0,
            stall_branch: None,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> CoreConfig {
        self.config
    }

    /// Switches the issue-queue sizing (takes effect for newly dispatched
    /// instructions; in-flight occupancy drains naturally).
    pub fn set_queue_size(&mut self, size: QueueSize) {
        self.config.queue_size = size;
    }

    /// Architecturally pre-fills the caches with `addrs` (one access per
    /// address, in order) without simulating cycles. Used to bring a
    /// phase's resident working set into the hierarchy so measurements see
    /// steady-state miss rates instead of compulsory cold misses.
    pub fn warm_caches<I: IntoIterator<Item = u64>>(&mut self, addrs: I) {
        for a in addrs {
            let _ = self.hierarchy.access(a);
        }
    }

    fn dep_ready(&self, dep: u64) -> bool {
        if dep == u64::MAX || dep < self.front_seq {
            return true;
        }
        let idx = (dep - self.front_seq) as usize;
        match self.rob.get(idx) {
            Some(e) => e.issued && e.finish <= self.cycle,
            None => true,
        }
    }

    /// Runs until `budget` instructions commit or the trace ends, and
    /// returns the statistics for this window only.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn run<I: Iterator<Item = Instruction>>(
        &mut self,
        trace: &mut std::iter::Peekable<I>,
        budget: u64,
    ) -> CoreStats {
        assert!(budget > 0, "instruction budget must be non-zero");
        let mut stats = CoreStats::default();
        let start_l2 = self.hierarchy.l2_misses();
        let start_l1 = self.hierarchy.l1_stats().0;

        while stats.instructions < budget {
            if self.rob.is_empty() && trace.peek().is_none() {
                break;
            }

            // --- commit ---
            let mut committed = 0;
            while committed < self.config.width && stats.instructions < budget {
                let ready = matches!(
                    self.rob.front(),
                    Some(e) if e.issued && e.finish <= self.cycle
                );
                let Some(e) = (if ready { self.rob.pop_front() } else { None }) else {
                    break;
                };
                self.front_seq += 1;
                committed += 1;
                stats.instructions += 1;
                stats.kind_counts[kind_index(e.kind)] += 1;
            }
            if committed == 0 {
                if let Some(e) = self.rob.front() {
                    if e.kind == Kind::Load
                        && e.issued
                        && e.outcome == Some(AccessOutcome::Mem)
                    {
                        stats.mem_stall_cycles += 1;
                    }
                }
            }

            // --- issue ---
            let mut issue_budget = self.config.width;
            let mut int_alu_free = 3;
            let mut int_mul_free = 1;
            let mut fp_add_free = 1;
            let mut fp_mul_free = 1;
            let mut mem_ports_free = 2;
            let front = self.front_seq;
            let cycle = self.cycle;
            for idx in 0..self.rob.len() {
                if issue_budget == 0 {
                    break;
                }
                let (dep1, dep2, issued, kind) = {
                    let e = &self.rob[idx];
                    (e.dep1, e.dep2, e.issued, e.kind)
                };
                if issued {
                    continue;
                }
                let _ = front;
                if !(self.dep_ready(dep1) && self.dep_ready(dep2)) {
                    continue;
                }
                let fu = match kind {
                    Kind::IntAlu | Kind::Branch => &mut int_alu_free,
                    Kind::IntMul => &mut int_mul_free,
                    Kind::FpAdd => &mut fp_add_free,
                    Kind::FpMul => &mut fp_mul_free,
                    Kind::Load | Kind::Store => &mut mem_ports_free,
                };
                if *fu == 0 {
                    continue;
                }
                // MSHR throttle: a load cannot issue if every miss register
                // is busy with an outstanding memory access.
                if kind == Kind::Load {
                    if let Some(limit) = self.config.mshrs {
                        let outstanding = self
                            .rob
                            .iter()
                            .filter(|e| {
                                e.issued
                                    && e.outcome == Some(AccessOutcome::Mem)
                                    && e.finish > cycle
                            })
                            .count();
                        if outstanding >= limit {
                            continue;
                        }
                    }
                }
                *fu -= 1;
                issue_budget -= 1;
                let e = &mut self.rob[idx];
                e.issued = true;
                if e.in_queue {
                    e.in_queue = false;
                    match e.kind {
                        Kind::FpAdd | Kind::FpMul => self.fp_q_used -= 1,
                        Kind::Load | Kind::Store => {
                            self.lsq_used -= 1;
                            self.int_q_used -= 1;
                        }
                        _ => self.int_q_used -= 1,
                    }
                }
                let latency = match e.kind {
                    Kind::Load => {
                        let outcome = self.hierarchy.access(e.addr);
                        self.rob[idx].outcome = Some(outcome);
                        outcome.latency_cycles()
                    }
                    Kind::Store => {
                        // Store-buffer write: cache state update only.
                        let _ = self.hierarchy.access(e.addr);
                        1
                    }
                    k => k.latency(),
                };
                self.rob[idx].finish = cycle + latency as u64;
            }

            // --- resolve pending redirect ---
            if let Some(seq) = self.stall_branch {
                if seq < self.front_seq {
                    // Branch committed before we noticed; resume now.
                    self.fetch_resume = self.fetch_resume.max(self.cycle);
                    self.stall_branch = None;
                } else {
                    let idx = (seq - self.front_seq) as usize;
                    let e = &self.rob[idx];
                    if e.issued {
                        self.fetch_resume =
                            e.finish + self.config.branch_penalty() as u64;
                        self.stall_branch = None;
                    }
                }
            }

            // --- dispatch ---
            let mut dispatched = 0;
            while dispatched < self.config.width
                && self.rob.len() < self.config.rob_size
                && self.stall_branch.is_none()
                && self.cycle >= self.fetch_resume
            {
                let Some(insn) = trace.peek().copied() else {
                    break;
                };
                let has_slot = match insn.kind {
                    Kind::FpAdd | Kind::FpMul => {
                        self.fp_q_used < self.config.fp_queue_effective()
                    }
                    Kind::Load | Kind::Store => {
                        self.lsq_used < self.config.lsq
                            && self.int_q_used < self.config.int_queue_effective()
                    }
                    _ => self.int_q_used < self.config.int_queue_effective(),
                };
                if !has_slot {
                    break;
                }
                trace.next();
                dispatched += 1;
                let seq = self.next_seq;
                self.next_seq += 1;
                match insn.kind {
                    Kind::FpAdd | Kind::FpMul => self.fp_q_used += 1,
                    Kind::Load | Kind::Store => {
                        self.lsq_used += 1;
                        self.int_q_used += 1;
                    }
                    _ => self.int_q_used += 1,
                }
                let mut mispredicted = false;
                if insn.kind == Kind::Branch {
                    stats.branches += 1;
                    let correct = self.gshare.predict_and_train(insn.bb_id, insn.taken);
                    if !correct {
                        stats.mispredicts += 1;
                        mispredicted = true;
                        self.stall_branch = Some(seq);
                    }
                }
                let to_seq = |d: u32| {
                    if d == 0 || u64::from(d) > seq {
                        u64::MAX
                    } else {
                        seq - u64::from(d)
                    }
                };
                self.rob.push_back(RobEntry {
                    kind: insn.kind,
                    dep1: to_seq(insn.dep1),
                    dep2: to_seq(insn.dep2),
                    issued: false,
                    finish: u64::MAX,
                    outcome: None,
                    addr: insn.addr,
                    in_queue: true,
                });
                if mispredicted {
                    break;
                }
            }

            stats.int_q_occupancy += self.int_q_used as u64;
            stats.fp_q_occupancy += self.fp_q_used as u64;
            self.cycle += 1;
            stats.cycles += 1;
        }

        stats.l2_misses = self.hierarchy.l2_misses() - start_l2;
        stats.l1d_accesses = self.hierarchy.l1_stats().0 - start_l1;
        stats
    }
}

/// Index of a [`Kind`] into [`CoreStats::kind_counts`].
pub(crate) fn kind_index(kind: Kind) -> usize {
    match kind {
        Kind::IntAlu => 0,
        Kind::IntMul => 1,
        Kind::FpAdd => 2,
        Kind::FpMul => 3,
        Kind::Load => 4,
        Kind::Store => 5,
        Kind::Branch => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;
    use crate::workload::Workload;

    fn run_workload(name: &str, size: QueueSize, budget: u64) -> CoreStats {
        let w = Workload::by_name(name).unwrap();
        let mut config = CoreConfig::micro08();
        config.queue_size = size;
        let mut core = OooCore::new(config);
        let mut trace = TraceGenerator::new(&w, 11).peekable();
        // Warm up caches and predictor.
        core.run(&mut trace, 5_000);
        core.run(&mut trace, budget)
    }

    #[test]
    fn cpi_is_at_least_one_over_width() {
        let stats = run_workload("crafty", QueueSize::Full, 20_000);
        assert!(stats.cpi() >= 1.0 / 3.0);
        assert!(stats.instructions == 20_000);
    }

    #[test]
    fn memory_bound_workload_has_higher_cpi_and_mr() {
        let mcf = run_workload("mcf", QueueSize::Full, 20_000);
        let crafty = run_workload("crafty", QueueSize::Full, 20_000);
        assert!(
            mcf.cpi() > crafty.cpi(),
            "mcf {} vs crafty {}",
            mcf.cpi(),
            crafty.cpi()
        );
        assert!(mcf.mr() > crafty.mr());
        assert!(mcf.mr() > 0.001, "mcf should miss in L2: mr={}", mcf.mr());
    }

    #[test]
    fn cpi_decomposition_is_consistent() {
        let s = run_workload("swim", QueueSize::Full, 20_000);
        let total = s.cpi();
        let parts = s.cpi_comp() + s.mr() * s.mp_cycles();
        assert!(
            (total - parts).abs() < 1e-9,
            "CPI {total} != comp {} + mem {}",
            s.cpi_comp(),
            s.mr() * s.mp_cycles()
        );
    }

    #[test]
    fn smaller_queue_does_not_help_cpi() {
        for name in ["swim", "mcf", "gcc"] {
            let full = run_workload(name, QueueSize::Full, 20_000);
            let small = run_workload(name, QueueSize::ThreeQuarters, 20_000);
            assert!(
                small.cpi() >= full.cpi() - 0.02,
                "{name}: small {} vs full {}",
                small.cpi(),
                full.cpi()
            );
        }
    }

    #[test]
    fn branchy_workloads_mispredict_more() {
        let gcc = run_workload("gcc", QueueSize::Full, 20_000);
        let swim = run_workload("swim", QueueSize::Full, 20_000);
        let rate = |s: &CoreStats| s.mispredicts as f64 / s.branches.max(1) as f64;
        assert!(
            rate(&gcc) > rate(&swim),
            "gcc {} vs swim {}",
            rate(&gcc),
            rate(&swim)
        );
    }

    #[test]
    fn extra_fu_stage_slows_branchy_code() {
        let w = Workload::by_name("gcc").unwrap();
        let run = |extra: bool| {
            let mut config = CoreConfig::micro08();
            config.extra_fu_stage = extra;
            let mut core = OooCore::new(config);
            let mut trace = TraceGenerator::new(&w, 3).peekable();
            core.run(&mut trace, 5_000);
            core.run(&mut trace, 20_000)
        };
        let base = run(false);
        let extra = run(true);
        assert!(extra.cpi() >= base.cpi());
    }

    #[test]
    fn queue_sizes_follow_figure_7a() {
        let mut c = CoreConfig::micro08();
        assert_eq!(c.int_queue_effective(), 68);
        assert_eq!(c.fp_queue_effective(), 32);
        c.queue_size = QueueSize::ThreeQuarters;
        assert_eq!(c.int_queue_effective(), 51);
        assert_eq!(c.fp_queue_effective(), 24);
    }

    #[test]
    fn stats_are_deterministic() {
        let a = run_workload("vortex", QueueSize::Full, 10_000);
        let b = run_workload("vortex", QueueSize::Full, 10_000);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod mshr_tests {
    use super::*;
    use crate::trace::TraceGenerator;
    use crate::workload::Workload;

    fn run(mshrs: Option<usize>) -> CoreStats {
        let w = Workload::by_name("art").expect("memory-heavy workload");
        let mut core = OooCore::new(CoreConfig {
            mshrs,
            ..CoreConfig::micro08()
        });
        let mut t = TraceGenerator::new(&w, 7).peekable();
        core.run(&mut t, 5_000);
        core.run(&mut t, 20_000)
    }

    #[test]
    fn fewer_mshrs_serialize_misses_and_raise_cpi() {
        let unlimited = run(None);
        let one = run(Some(1));
        assert!(
            one.cpi() > unlimited.cpi(),
            "1 MSHR {} should be slower than unlimited {}",
            one.cpi(),
            unlimited.cpi()
        );
        // With a single MSHR there is no miss overlap: the observed
        // penalty per miss approaches the full round trip.
        assert!(one.mp_cycles() > unlimited.mp_cycles());
    }

    #[test]
    fn generous_mshrs_match_unlimited() {
        let unlimited = run(None);
        let many = run(Some(64));
        assert_eq!(unlimited, many, "64 MSHRs should never be the bottleneck");
    }
}
