//! Performance counters: per-subsystem activity factors.
//!
//! The controller needs, for each of the 15 subsystems, the activity factor
//! `alpha_f` in accesses per cycle (Equation 7's utilization input) and the
//! per-instruction exercise rate `rho` (Equation 4's weighting of stage
//! error rates). Both are derived from the committed-instruction mix of a
//! simulation window, "with performance counters similar to those already
//! available" (§4.1).

use crate::core::CoreStats;
use crate::subsystem::{SubsystemId, N_SUBSYSTEMS};

/// Per-subsystem activity measured over one simulation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityVector {
    /// Accesses per cycle per port, in `[0, 1]`, indexed by
    /// [`SubsystemId::index`].
    pub alpha_f: [f64; N_SUBSYSTEMS],
    /// Accesses per committed instruction, indexed by [`SubsystemId::index`].
    pub rho: [f64; N_SUBSYSTEMS],
}

/// Number of ports each subsystem can serve per cycle (used to convert raw
/// access counts into `[0, 1]` utilizations). Functional units switch (and
/// burn power) per issued operation, so they are *not* divided by their
/// replica count — this is what makes them the power-density hotspots the
/// paper observes (§6.2: "the FUs and issue queues routinely form
/// hotspots").
fn ports(s: SubsystemId) -> f64 {
    match s {
        SubsystemId::Dcache | SubsystemId::Dtlb | SubsystemId::LdStQueue => 2.0,
        SubsystemId::Icache | SubsystemId::Itlb | SubsystemId::BranchPred => 1.0,
        SubsystemId::Decode | SubsystemId::IntMap => 3.0,
        SubsystemId::IntAlu | SubsystemId::FpUnit => 1.0,
        SubsystemId::FpMap => 2.0,
        SubsystemId::IntQueue => 3.0,
        SubsystemId::FpQueue => 1.0,
        SubsystemId::IntReg => 6.0,
        SubsystemId::FpReg => 4.0,
    }
}

impl ActivityVector {
    /// Derives the activity vector from a window's statistics.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (no cycles or instructions).
    pub fn from_stats(stats: &CoreStats) -> Self {
        assert!(
            stats.cycles > 0 && stats.instructions > 0,
            "cannot derive activity from an empty window"
        );
        let k = &stats.kind_counts;
        let int_alu_ops = (k[0] + k[1] + k[6]) as f64; // alu + mul + branch
        let fp_ops = (k[2] + k[3]) as f64;
        let mem_ops = (k[4] + k[5]) as f64;
        let int_side = (k[0] + k[1] + k[4] + k[5] + k[6]) as f64;
        let instrs = stats.instructions as f64;
        let branches = stats.branches as f64;

        let count = |s: SubsystemId| -> f64 {
            match s {
                SubsystemId::Dcache | SubsystemId::Dtlb | SubsystemId::LdStQueue => mem_ops,
                SubsystemId::Icache | SubsystemId::Itlb | SubsystemId::Decode => instrs,
                SubsystemId::BranchPred => branches,
                SubsystemId::IntQueue | SubsystemId::IntMap => int_side,
                SubsystemId::IntAlu => int_alu_ops,
                SubsystemId::IntReg => 2.0 * int_side,
                SubsystemId::FpQueue | SubsystemId::FpMap => fp_ops,
                SubsystemId::FpUnit => fp_ops,
                SubsystemId::FpReg => 2.0 * fp_ops,
            }
        };

        let mut alpha_f = [0.0; N_SUBSYSTEMS];
        let mut rho = [0.0; N_SUBSYSTEMS];
        for s in SubsystemId::ALL {
            let c = count(s);
            alpha_f[s.index()] = (c / (stats.cycles as f64 * ports(s))).clamp(0.0, 1.0);
            rho[s.index()] = c / instrs;
        }
        Self { alpha_f, rho }
    }

    /// Activity factor of one subsystem (accesses/cycle/port).
    pub fn alpha(&self, s: SubsystemId) -> f64 {
        self.alpha_f[s.index()]
    }

    /// Per-instruction exercise rate of one subsystem.
    pub fn rho_of(&self, s: SubsystemId) -> f64 {
        self.rho[s.index()]
    }

    /// Element-wise maximum — the conservative "worst-case activity" vector
    /// a static (non-adaptive) configuration must assume.
    pub fn max_with(&self, other: &ActivityVector) -> ActivityVector {
        let mut out = *self;
        for i in 0..N_SUBSYSTEMS {
            out.alpha_f[i] = out.alpha_f[i].max(other.alpha_f[i]);
            out.rho[i] = out.rho[i].max(other.rho[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreConfig, OooCore, QueueSize};
    use crate::trace::TraceGenerator;
    use crate::workload::Workload;

    fn stats_for(name: &str) -> CoreStats {
        let w = Workload::by_name(name).unwrap();
        let mut core = OooCore::new(CoreConfig {
            queue_size: QueueSize::Full,
            ..CoreConfig::micro08()
        });
        let mut t = TraceGenerator::new(&w, 21).peekable();
        core.run(&mut t, 5_000);
        core.run(&mut t, 20_000)
    }

    #[test]
    fn alphas_are_utilizations() {
        let v = ActivityVector::from_stats(&stats_for("swim"));
        for s in SubsystemId::ALL {
            let a = v.alpha(s);
            assert!((0.0..=1.0).contains(&a), "{s}: alpha {a}");
        }
    }

    #[test]
    fn fp_workload_exercises_fp_side_int_workload_does_not() {
        let fp = ActivityVector::from_stats(&stats_for("mgrid"));
        let int = ActivityVector::from_stats(&stats_for("crafty"));
        assert!(fp.alpha(SubsystemId::FpUnit) > 0.1);
        assert_eq!(int.alpha(SubsystemId::FpUnit), 0.0);
        assert!(int.alpha(SubsystemId::IntAlu) > fp.alpha(SubsystemId::IntAlu));
    }

    #[test]
    fn rho_of_fetch_side_is_about_one() {
        let v = ActivityVector::from_stats(&stats_for("gzip"));
        assert!((v.rho_of(SubsystemId::Icache) - 1.0).abs() < 1e-9);
        assert!((v.rho_of(SubsystemId::Decode) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_with_is_elementwise() {
        let a = ActivityVector::from_stats(&stats_for("swim"));
        let b = ActivityVector::from_stats(&stats_for("crafty"));
        let m = a.max_with(&b);
        for s in SubsystemId::ALL {
            assert!(m.alpha(s) >= a.alpha(s));
            assert!(m.alpha(s) >= b.alpha(s));
        }
    }
}
