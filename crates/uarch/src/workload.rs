//! Synthetic SPEC-2000-like workloads.
//!
//! The paper evaluates SPECint/SPECfp 2000 binaries under SESC. Those are
//! not redistributable, so this module defines 16 synthetic programs with
//! the published *behavioral* characteristics of their namesakes —
//! instruction mix, dependency structure (ILP), working-set/miss behaviour,
//! branch predictability — organized into phases. What the adaptation layer
//! consumes (per-phase `CPIcomp`, `mr`, activity factors) is produced by
//! actually running these programs through the out-of-order core model.

/// Integer vs floating-point program class — decides which issue queue and
/// functional unit the EVAL microarchitecture techniques act on (§4.1:
/// "the last two outputs apply to integer or FP units depending on the type
/// of application running").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPECint-like.
    Int,
    /// SPECfp-like.
    Fp,
}

/// One program phase: a stationary behaviour regime lasting `instructions`
/// dynamic instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Instruction-mix weights (need not sum to 1; they are normalized):
    /// int ALU, int multiply, FP add, FP multiply, load, store, branch.
    pub mix: [f64; 7],
    /// Mean register-dependency distance in instructions; larger = more ILP.
    pub dep_mean: f64,
    /// Probability that a source operand has no in-flight producer.
    pub dep_free: f64,
    /// Hot working set in 64 B lines (L1-resident if small).
    pub hot_lines: u64,
    /// Warm working set in lines (typically L2-resident).
    pub warm_lines: u64,
    /// Fraction of memory accesses that stream through memory (L2 misses).
    pub stream_frac: f64,
    /// Fraction of (non-streaming) accesses that hit the hot set.
    pub hot_frac: f64,
    /// Branch randomness: 0 = perfectly biased branches, 1 = coin flips.
    pub branch_entropy: f64,
    /// First static basic-block id of this phase's code region.
    pub bb_base: u32,
    /// Number of distinct basic blocks in the region.
    pub bb_count: u32,
    /// Phase length in dynamic instructions.
    pub instructions: u64,
}

impl PhaseSpec {
    /// Base byte address of this phase's data footprint. Phases use
    /// disjoint address regions derived from their code region.
    pub fn footprint_base(&self) -> u64 {
        u64::from(self.bb_base) << 24
    }

    /// Byte address of hot-set line `line` (`line < hot_lines`).
    pub fn hot_addr(&self, line: u64) -> u64 {
        self.footprint_base() + line * 64
    }

    /// Byte address of warm-set line `line` (`line < warm_lines`).
    pub fn warm_addr(&self, line: u64) -> u64 {
        self.footprint_base() + (self.hot_lines + line) * 64
    }

    /// All resident lines of this phase's footprint (hot then warm), for
    /// warming caches before measurement.
    pub fn footprint(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.hot_lines)
            .map(|l| self.hot_addr(l))
            .chain((0..self.warm_lines).map(|l| self.warm_addr(l)))
    }

    /// A balanced integer phase used as a template.
    fn int_template(bb_base: u32, instructions: u64) -> Self {
        Self {
            mix: [0.42, 0.02, 0.0, 0.0, 0.24, 0.12, 0.20],
            dep_mean: 6.0,
            dep_free: 0.25,
            hot_lines: 512,
            warm_lines: 6_000,
            stream_frac: 0.001,
            hot_frac: 0.90,
            branch_entropy: 0.15,
            bb_base,
            bb_count: 24,
            instructions,
        }
    }

    /// A balanced floating-point phase used as a template.
    fn fp_template(bb_base: u32, instructions: u64) -> Self {
        Self {
            mix: [0.20, 0.01, 0.22, 0.16, 0.26, 0.10, 0.05],
            dep_mean: 12.0,
            dep_free: 0.35,
            hot_lines: 512,
            warm_lines: 8_000,
            stream_frac: 0.004,
            hot_frac: 0.85,
            branch_entropy: 0.03,
            bb_base,
            bb_count: 12,
            instructions,
        }
    }
}

/// A named synthetic workload: a class plus a phase sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// SPEC-2000-style name (e.g. `"swim"`).
    pub name: &'static str,
    /// Integer or floating point.
    pub class: WorkloadClass,
    /// The phase sequence, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl Workload {
    /// All 16 workloads (8 SPECint-like, 8 SPECfp-like).
    pub fn all() -> Vec<Workload> {
        vec![
            // ---- SPECint-like ----
            Self::gzip(),
            Self::gcc(),
            Self::mcf(),
            Self::crafty(),
            Self::parser(),
            Self::bzip2(),
            Self::twolf(),
            Self::vortex(),
            // ---- SPECfp-like ----
            Self::swim(),
            Self::mgrid(),
            Self::applu(),
            Self::mesa(),
            Self::art(),
            Self::equake(),
            Self::ammp(),
            Self::sixtrack(),
        ]
    }

    /// The extended suite: [`Workload::all`] plus ten more SPEC-2000-named
    /// programs (the evaluation campaign uses the 16-workload suite; the
    /// extras are available for broader studies).
    pub fn extended() -> Vec<Workload> {
        let mut out = Self::all();
        out.extend([
            // ---- additional SPECint-like ----
            Self::vpr(),
            Self::eon(),
            Self::perlbmk(),
            Self::gap(),
            // ---- additional SPECfp-like ----
            Self::wupwise(),
            Self::galgel(),
            Self::lucas(),
            Self::fma3d(),
            Self::facerec(),
            Self::apsi(),
        ]);
        out
    }

    /// Looks a workload up by name (searches the extended suite).
    pub fn by_name(name: &str) -> Option<Workload> {
        Self::extended().into_iter().find(|w| w.name == name)
    }

    /// Total dynamic instructions over all phases.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    fn vpr() -> Workload {
        // FPGA place & route: simulated annealing — branchy with a
        // temperature-dependent acceptance pattern, moderate working set.
        let mut place = PhaseSpec::int_template(1800, 45_000);
        place.branch_entropy = 0.30;
        place.warm_lines = 7_000;
        place.dep_mean = 4.5;
        let mut route = PhaseSpec::int_template(1840, 35_000);
        route.mix = [0.36, 0.01, 0.0, 0.0, 0.30, 0.12, 0.21];
        route.warm_lines = 9_000;
        route.stream_frac = 0.004;
        Workload {
            name: "vpr",
            class: WorkloadClass::Int,
            phases: vec![place, route],
        }
    }

    fn eon() -> Workload {
        // Probabilistic ray tracer (C++): virtual dispatch, tiny data,
        // highly predictable branches.
        let mut trace_rays = PhaseSpec::int_template(1900, 55_000);
        trace_rays.mix = [0.48, 0.03, 0.0, 0.0, 0.22, 0.09, 0.18];
        trace_rays.hot_lines = 384;
        trace_rays.warm_lines = 3_000;
        trace_rays.branch_entropy = 0.08;
        trace_rays.dep_mean = 5.5;
        let mut shade = PhaseSpec::int_template(1930, 25_000);
        shade.branch_entropy = 0.12;
        Workload {
            name: "eon",
            class: WorkloadClass::Int,
            phases: vec![trace_rays, shade],
        }
    }

    fn perlbmk() -> Workload {
        // Perl interpreter: dispatch loops, hash tables, hard branches.
        let mut interp = PhaseSpec::int_template(2000, 50_000);
        interp.branch_entropy = 0.32;
        interp.bb_count = 44;
        interp.warm_lines = 8_000;
        interp.dep_mean = 3.8;
        let mut regex = PhaseSpec::int_template(2050, 30_000);
        regex.branch_entropy = 0.20;
        regex.hot_lines = 384;
        Workload {
            name: "perlbmk",
            class: WorkloadClass::Int,
            phases: vec![interp, regex],
        }
    }

    fn gap() -> Workload {
        // Computational group theory: big-integer arithmetic plus lists.
        let mut arith = PhaseSpec::int_template(2100, 45_000);
        arith.mix = [0.46, 0.05, 0.0, 0.0, 0.24, 0.10, 0.15];
        arith.dep_mean = 4.0;
        let mut collect = PhaseSpec::int_template(2140, 35_000);
        collect.warm_lines = 9_500;
        collect.stream_frac = 0.006;
        Workload {
            name: "gap",
            class: WorkloadClass::Int,
            phases: vec![arith, collect],
        }
    }

    fn wupwise() -> Workload {
        // Lattice QCD: dense complex linear algebra, very regular.
        let mut bmunu = PhaseSpec::fp_template(2200, 55_000);
        bmunu.mix = [0.14, 0.0, 0.28, 0.26, 0.22, 0.07, 0.03];
        bmunu.dep_mean = 13.0;
        bmunu.stream_frac = 0.008;
        let mut gammul = PhaseSpec::fp_template(2230, 25_000);
        gammul.dep_mean = 10.0;
        Workload {
            name: "wupwise",
            class: WorkloadClass::Fp,
            phases: vec![bmunu, gammul],
        }
    }

    fn galgel() -> Workload {
        // Fluid dynamics (Galerkin method): dense kernels, L2-resident.
        let mut assemble = PhaseSpec::fp_template(2300, 40_000);
        assemble.warm_lines = 9_000;
        assemble.stream_frac = 0.005;
        let mut solve = PhaseSpec::fp_template(2330, 40_000);
        solve.mix = [0.15, 0.0, 0.27, 0.24, 0.23, 0.07, 0.04];
        solve.dep_mean = 11.0;
        Workload {
            name: "galgel",
            class: WorkloadClass::Fp,
            phases: vec![assemble, solve],
        }
    }

    fn lucas() -> Workload {
        // Lucas-Lehmer primality: FFT-based squaring — strided streams.
        let mut fft = PhaseSpec::fp_template(2400, 50_000);
        fft.stream_frac = 0.018;
        fft.dep_mean = 9.0;
        let mut carry = PhaseSpec::fp_template(2430, 30_000);
        carry.mix = [0.24, 0.01, 0.20, 0.14, 0.26, 0.10, 0.05];
        carry.dep_mean = 5.0;
        Workload {
            name: "lucas",
            class: WorkloadClass::Fp,
            phases: vec![fft, carry],
        }
    }

    fn fma3d() -> Workload {
        // Crash simulation (FEM): element loops with indirection.
        let mut elements = PhaseSpec::fp_template(2500, 45_000);
        elements.stream_frac = 0.012;
        elements.hot_frac = 0.78;
        let mut contact = PhaseSpec::fp_template(2530, 35_000);
        contact.branch_entropy = 0.12;
        contact.dep_mean = 7.0;
        Workload {
            name: "fma3d",
            class: WorkloadClass::Fp,
            phases: vec![elements, contact],
        }
    }

    fn facerec() -> Workload {
        // Face recognition: image convolutions plus graph matching.
        let mut gabor = PhaseSpec::fp_template(2600, 45_000);
        gabor.mix = [0.16, 0.0, 0.26, 0.22, 0.24, 0.08, 0.04];
        gabor.stream_frac = 0.010;
        let mut match_graph = PhaseSpec::fp_template(2630, 30_000);
        match_graph.branch_entropy = 0.10;
        match_graph.mix = [0.24, 0.01, 0.18, 0.12, 0.28, 0.10, 0.07];
        Workload {
            name: "facerec",
            class: WorkloadClass::Fp,
            phases: vec![gabor, match_graph],
        }
    }

    fn apsi() -> Workload {
        // Mesoscale weather: many small stencil kernels in sequence.
        let mut advect = PhaseSpec::fp_template(2700, 40_000);
        advect.stream_frac = 0.009;
        let mut diffuse = PhaseSpec::fp_template(2730, 25_000);
        diffuse.stream_frac = 0.006;
        diffuse.dep_mean = 9.0;
        let mut energy = PhaseSpec::fp_template(2760, 25_000);
        energy.mix = [0.18, 0.0, 0.26, 0.18, 0.24, 0.09, 0.05];
        Workload {
            name: "apsi",
            class: WorkloadClass::Fp,
            phases: vec![advect, diffuse, energy],
        }
    }

    fn gzip() -> Workload {
        // Compression: regular loops, small working set, some streaming I/O.
        let mut compress = PhaseSpec::int_template(100, 60_000);
        compress.dep_mean = 5.0;
        compress.branch_entropy = 0.10;
        let mut io = PhaseSpec::int_template(140, 30_000);
        io.stream_frac = 0.006;
        io.mix = [0.30, 0.01, 0.0, 0.0, 0.34, 0.18, 0.17];
        Workload {
            name: "gzip",
            class: WorkloadClass::Int,
            phases: vec![compress, io],
        }
    }

    fn gcc() -> Workload {
        // Compiler: very branchy, large instruction footprint, pointer data.
        let mut parse = PhaseSpec::int_template(200, 40_000);
        parse.mix = [0.38, 0.01, 0.0, 0.0, 0.26, 0.10, 0.25];
        parse.branch_entropy = 0.35;
        parse.bb_count = 48;
        parse.dep_mean = 4.0;
        let mut optimize = PhaseSpec::int_template(260, 40_000);
        optimize.warm_lines = 9_000;
        optimize.hot_frac = 0.80;
        optimize.branch_entropy = 0.25;
        optimize.bb_count = 40;
        Workload {
            name: "gcc",
            class: WorkloadClass::Int,
            phases: vec![parse, optimize],
        }
    }

    fn mcf() -> Workload {
        // Network simplex: pointer chasing, giant working set, low ILP.
        let mut chase = PhaseSpec::int_template(300, 50_000);
        chase.mix = [0.30, 0.01, 0.0, 0.0, 0.38, 0.08, 0.23];
        chase.dep_mean = 2.5;
        chase.dep_free = 0.10;
        chase.stream_frac = 0.035;
        chase.hot_frac = 0.55;
        chase.warm_lines = 15_000;
        let mut relax = PhaseSpec::int_template(340, 30_000);
        relax.stream_frac = 0.015;
        relax.dep_mean = 3.0;
        Workload {
            name: "mcf",
            class: WorkloadClass::Int,
            phases: vec![chase, relax],
        }
    }

    fn crafty() -> Workload {
        // Chess: compute-bound, branchy, tiny data working set.
        let mut search = PhaseSpec::int_template(400, 60_000);
        search.mix = [0.50, 0.02, 0.0, 0.0, 0.20, 0.08, 0.20];
        search.hot_lines = 256;
        search.warm_lines = 2_048;
        search.stream_frac = 0.0003;
        search.branch_entropy = 0.30;
        search.dep_mean = 5.0;
        let mut evaluate = PhaseSpec::int_template(430, 30_000);
        evaluate.mix = [0.55, 0.04, 0.0, 0.0, 0.18, 0.06, 0.17];
        evaluate.branch_entropy = 0.20;
        Workload {
            name: "crafty",
            class: WorkloadClass::Int,
            phases: vec![search, evaluate],
        }
    }

    fn parser() -> Workload {
        // NLP: branchy, irregular small structures.
        let mut tokenize = PhaseSpec::int_template(500, 30_000);
        tokenize.branch_entropy = 0.30;
        tokenize.bb_count = 36;
        let mut link = PhaseSpec::int_template(540, 50_000);
        link.dep_mean = 3.5;
        link.warm_lines = 8_000;
        link.branch_entropy = 0.25;
        Workload {
            name: "parser",
            class: WorkloadClass::Int,
            phases: vec![tokenize, link],
        }
    }

    fn bzip2() -> Workload {
        let mut sort = PhaseSpec::int_template(600, 50_000);
        sort.mix = [0.44, 0.02, 0.0, 0.0, 0.26, 0.10, 0.18];
        sort.warm_lines = 8_000;
        sort.hot_frac = 0.75;
        sort.branch_entropy = 0.22;
        let mut huffman = PhaseSpec::int_template(640, 30_000);
        huffman.hot_lines = 384;
        huffman.branch_entropy = 0.12;
        Workload {
            name: "bzip2",
            class: WorkloadClass::Int,
            phases: vec![sort, huffman],
        }
    }

    fn twolf() -> Workload {
        // Place & route: moderate miss rate, moderate branches.
        let mut place = PhaseSpec::int_template(700, 40_000);
        place.warm_lines = 9_000;
        place.hot_frac = 0.70;
        place.stream_frac = 0.005;
        let mut route = PhaseSpec::int_template(740, 40_000);
        route.dep_mean = 4.0;
        route.branch_entropy = 0.25;
        Workload {
            name: "twolf",
            class: WorkloadClass::Int,
            phases: vec![place, route],
        }
    }

    fn vortex() -> Workload {
        // OO database: lots of loads/stores, good predictability.
        let mut query = PhaseSpec::int_template(800, 40_000);
        query.mix = [0.34, 0.01, 0.0, 0.0, 0.30, 0.16, 0.19];
        query.branch_entropy = 0.08;
        let mut update = PhaseSpec::int_template(840, 40_000);
        update.mix = [0.30, 0.01, 0.0, 0.0, 0.28, 0.22, 0.19];
        update.warm_lines = 8_000;
        Workload {
            name: "vortex",
            class: WorkloadClass::Int,
            phases: vec![query, update],
        }
    }

    fn swim() -> Workload {
        // Shallow-water stencils: long vector loops, heavy streaming.
        let mut stencil = PhaseSpec::fp_template(1000, 60_000);
        stencil.stream_frac = 0.030;
        stencil.dep_mean = 16.0;
        stencil.dep_free = 0.45;
        stencil.mix = [0.16, 0.0, 0.26, 0.20, 0.26, 0.09, 0.03];
        let mut reduce = PhaseSpec::fp_template(1020, 30_000);
        reduce.stream_frac = 0.012;
        reduce.dep_mean = 8.0;
        Workload {
            name: "swim",
            class: WorkloadClass::Fp,
            phases: vec![stencil, reduce],
        }
    }

    fn mgrid() -> Workload {
        // Multigrid: compute-heavy, moderate streaming, very regular.
        let mut smooth = PhaseSpec::fp_template(1100, 50_000);
        smooth.stream_frac = 0.010;
        smooth.mix = [0.14, 0.0, 0.30, 0.24, 0.22, 0.07, 0.03];
        let mut restrict = PhaseSpec::fp_template(1120, 30_000);
        restrict.stream_frac = 0.015;
        Workload {
            name: "mgrid",
            class: WorkloadClass::Fp,
            phases: vec![smooth, restrict],
        }
    }

    fn applu() -> Workload {
        let mut sweep = PhaseSpec::fp_template(1200, 50_000);
        sweep.stream_frac = 0.012;
        sweep.dep_mean = 9.0;
        let mut jacobian = PhaseSpec::fp_template(1220, 30_000);
        jacobian.mix = [0.16, 0.0, 0.24, 0.26, 0.24, 0.07, 0.03];
        Workload {
            name: "applu",
            class: WorkloadClass::Fp,
            phases: vec![sweep, jacobian],
        }
    }

    fn mesa() -> Workload {
        // Software rendering: FP + int mix, small working set, few misses.
        let mut raster = PhaseSpec::fp_template(1300, 50_000);
        raster.stream_frac = 0.002;
        raster.hot_frac = 0.93;
        raster.mix = [0.26, 0.01, 0.20, 0.14, 0.24, 0.10, 0.05];
        raster.branch_entropy = 0.08;
        let mut shade = PhaseSpec::fp_template(1320, 30_000);
        shade.mix = [0.20, 0.0, 0.26, 0.20, 0.22, 0.08, 0.04];
        Workload {
            name: "mesa",
            class: WorkloadClass::Fp,
            phases: vec![raster, shade],
        }
    }

    fn art() -> Workload {
        // Neural-net image recognition: notorious L2 thrasher.
        let mut scan = PhaseSpec::fp_template(1400, 50_000);
        scan.stream_frac = 0.045;
        scan.hot_frac = 0.60;
        scan.warm_lines = 15_500;
        scan.dep_mean = 10.0;
        let mut match_phase = PhaseSpec::fp_template(1420, 30_000);
        match_phase.stream_frac = 0.025;
        Workload {
            name: "art",
            class: WorkloadClass::Fp,
            phases: vec![scan, match_phase],
        }
    }

    fn equake() -> Workload {
        // Sparse FEM: indirection (gather) plus dense FP.
        let mut gather = PhaseSpec::fp_template(1500, 40_000);
        gather.stream_frac = 0.020;
        gather.dep_mean = 6.0;
        gather.dep_free = 0.25;
        let mut dense = PhaseSpec::fp_template(1520, 40_000);
        dense.stream_frac = 0.007;
        dense.dep_mean = 12.0;
        Workload {
            name: "equake",
            class: WorkloadClass::Fp,
            phases: vec![gather, dense],
        }
    }

    fn ammp() -> Workload {
        // Molecular dynamics: neighbor lists, FP heavy, moderate misses.
        let mut neighbors = PhaseSpec::fp_template(1600, 40_000);
        neighbors.stream_frac = 0.015;
        neighbors.dep_mean = 7.0;
        let mut forces = PhaseSpec::fp_template(1620, 40_000);
        forces.mix = [0.14, 0.0, 0.28, 0.26, 0.22, 0.06, 0.04];
        forces.dep_mean = 10.0;
        Workload {
            name: "ammp",
            class: WorkloadClass::Fp,
            phases: vec![neighbors, forces],
        }
    }

    fn sixtrack() -> Workload {
        // Particle tracking: almost pure FP compute, tiny working set.
        let mut track = PhaseSpec::fp_template(1700, 60_000);
        track.stream_frac = 0.0005;
        track.hot_frac = 0.95;
        track.hot_lines = 384;
        track.mix = [0.15, 0.0, 0.30, 0.28, 0.18, 0.05, 0.04];
        track.dep_mean = 14.0;
        let mut correct = PhaseSpec::fp_template(1720, 20_000);
        correct.mix = [0.22, 0.01, 0.24, 0.18, 0.22, 0.08, 0.05];
        Workload {
            name: "sixtrack",
            class: WorkloadClass::Fp,
            phases: vec![track, correct],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_workloads_with_unique_names() {
        let all = Workload::all();
        assert_eq!(all.len(), 16);
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn extended_suite_has_26_unique_workloads() {
        let ext = Workload::extended();
        assert_eq!(ext.len(), 26);
        let mut names: Vec<_> = ext.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
        // The campaign suite is a strict prefix.
        for (a, b) in Workload::all().iter().zip(ext.iter()) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn classes_are_balanced() {
        let all = Workload::all();
        let ints = all.iter().filter(|w| w.class == WorkloadClass::Int).count();
        assert_eq!(ints, 8);
        let ext = Workload::extended();
        let ints = ext.iter().filter(|w| w.class == WorkloadClass::Int).count();
        assert_eq!(ints, 12);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(Workload::by_name("swim").is_some());
        assert!(Workload::by_name("doom").is_none());
    }

    #[test]
    fn every_workload_has_multiple_phases_with_disjoint_bb_ranges() {
        for w in Workload::extended() {
            assert!(w.phases.len() >= 2, "{} has too few phases", w.name);
            for pair in w.phases.windows(2) {
                let end = pair[0].bb_base + pair[0].bb_count;
                assert!(
                    pair[1].bb_base >= end,
                    "{}: overlapping bb ranges",
                    w.name
                );
            }
        }
    }

    #[test]
    fn mixes_are_valid_distributions_after_normalization() {
        for w in Workload::extended() {
            for p in &w.phases {
                let sum: f64 = p.mix.iter().sum();
                assert!(sum > 0.9 && sum < 1.1, "{}: mix sums to {sum}", w.name);
                assert!(p.mix.iter().all(|&m| m >= 0.0));
                // Int workloads have no FP ops.
                if w.class == WorkloadClass::Int {
                    assert_eq!(p.mix[2], 0.0);
                    assert_eq!(p.mix[3], 0.0);
                }
            }
        }
    }
}
