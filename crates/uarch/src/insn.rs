//! Instruction representation for the synthetic traces.

/// Operation class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply (also stands in for divide in the mix).
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl Kind {
    /// Execution latency in cycles once issued (memory kinds add cache time).
    pub fn latency(&self) -> u32 {
        match self {
            Kind::IntAlu => 1,
            Kind::IntMul => 3,
            Kind::FpAdd => 2,
            Kind::FpMul => 4,
            Kind::Load => 0,  // cache hierarchy supplies the latency
            Kind::Store => 1, // retire-time store; address generation only
            Kind::Branch => 1,
        }
    }

    /// Whether the instruction executes on the floating-point side.
    pub fn is_fp(&self) -> bool {
        matches!(self, Kind::FpAdd | Kind::FpMul)
    }

    /// Whether the instruction references memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Kind::Load | Kind::Store)
    }
}

/// One dynamic instruction in a synthetic trace.
///
/// Register dependences are encoded positionally: `dep1`/`dep2` give the
/// distance (in dynamic instructions) back to the producer of each source
/// operand, or 0 for "no dependence / ready at dispatch".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Operation class.
    pub kind: Kind,
    /// Distance to first source's producer (0 = none).
    pub dep1: u32,
    /// Distance to second source's producer (0 = none).
    pub dep2: u32,
    /// Memory address (loads/stores; line-aligned by the cache model).
    pub addr: u64,
    /// Branch outcome (branches only).
    pub taken: bool,
    /// Static basic-block id (feeds the BBV phase detector and gshare).
    pub bb_id: u32,
}

impl Instruction {
    /// A no-dependence single-cycle ALU op — useful as filler in tests.
    pub fn nop(bb_id: u32) -> Self {
        Self {
            kind: Kind::IntAlu,
            dep1: 0,
            dep2: 0,
            addr: 0,
            taken: false,
            bb_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(Kind::IntMul.latency() > Kind::IntAlu.latency());
        assert!(Kind::FpMul.latency() > Kind::FpAdd.latency());
    }

    #[test]
    fn classification_helpers() {
        assert!(Kind::FpAdd.is_fp());
        assert!(!Kind::Load.is_fp());
        assert!(Kind::Load.is_mem());
        assert!(Kind::Store.is_mem());
        assert!(!Kind::Branch.is_mem());
    }

    #[test]
    fn nop_is_dependence_free() {
        let n = Instruction::nop(3);
        assert_eq!(n.dep1, 0);
        assert_eq!(n.dep2, 0);
        assert_eq!(n.bb_id, 3);
    }
}
