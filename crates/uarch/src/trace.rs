//! Deterministic synthetic instruction traces from workload specs.

use eval_rng::ChaCha12Rng;

use crate::insn::{Instruction, Kind};
use crate::workload::{PhaseSpec, Workload};

const KINDS: [Kind; 7] = [
    Kind::IntAlu,
    Kind::IntMul,
    Kind::FpAdd,
    Kind::FpMul,
    Kind::Load,
    Kind::Store,
    Kind::Branch,
];

/// Streams the dynamic instructions of a workload, phase by phase.
///
/// The stream is a deterministic function of `(workload, seed)`; two
/// generators built identically yield identical traces, which lets the
/// profiler replay the same instructions under different core
/// configurations (full vs 3/4 issue queue).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    phases: Vec<PhaseSpec>,
    rng: ChaCha12Rng,
    phase_idx: usize,
    emitted_in_phase: u64,
    /// Streaming pointer (keeps marching through address space).
    stream_line: u64,
    /// Current basic block and remaining instructions within it.
    current_bb: u32,
    bb_remaining: u32,
}

impl TraceGenerator {
    /// Creates a generator for `workload` seeded with `seed`.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        let first_bb = workload.phases[0].bb_base;
        Self {
            phases: workload.phases.clone(),
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0xE7A1_55C0_FFEE_D00D),
            phase_idx: 0,
            emitted_in_phase: 0,
            stream_line: 1 << 32,
            current_bb: first_bb,
            bb_remaining: 0,
        }
    }

    /// Index of the phase the *next* instruction belongs to, if any.
    pub fn current_phase(&self) -> Option<usize> {
        (self.phase_idx < self.phases.len()).then_some(self.phase_idx)
    }

    fn phase(&self) -> &PhaseSpec {
        &self.phases[self.phase_idx]
    }

    fn sample_kind(&mut self) -> Kind {
        let mix = self.phase().mix;
        let total: f64 = mix.iter().sum();
        let mut x = self.rng.gen::<f64>() * total;
        for (k, &w) in KINDS.iter().zip(mix.iter()) {
            if x < w {
                return *k;
            }
            x -= w;
        }
        Kind::IntAlu
    }

    fn sample_dep(&mut self) -> u32 {
        let p = *self.phase();
        if self.rng.gen::<f64>() < p.dep_free {
            return 0;
        }
        // Geometric with the configured mean, clamped to the ROB reach.
        let mean = p.dep_mean.max(1.0);
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let d = 1.0 + (-u.ln()) * (mean - 1.0).max(0.0);
        (d as u32).clamp(1, 64)
    }

    fn sample_addr(&mut self) -> u64 {
        let p = *self.phase();
        let r: f64 = self.rng.gen();
        if r < p.stream_frac {
            // Streaming: march through fresh lines (guaranteed cold).
            self.stream_line += 1;
            self.stream_line * 64
        } else if self.rng.gen::<f64>() < p.hot_frac {
            // Hot set, offset per phase so phases have distinct footprints.
            p.hot_addr(self.rng.gen_range(0..p.hot_lines.max(1)))
        } else {
            p.warm_addr(self.rng.gen_range(0..p.warm_lines.max(1)))
        }
    }

    fn sample_branch(&mut self, bb: u32) -> bool {
        let p = self.phase();
        // Per-block bias direction from the block id; entropy blends toward
        // a fair coin.
        let bias = if bb.wrapping_mul(2654435761) & 1 == 0 {
            0.95
        } else {
            0.05
        };
        let p_taken = (1.0 - p.branch_entropy) * bias + p.branch_entropy * 0.5;
        self.rng.gen::<f64>() < p_taken
    }

    fn advance_bb(&mut self) {
        let p = *self.phase();
        if self.bb_remaining == 0 {
            self.current_bb = p.bb_base + self.rng.gen_range(0..p.bb_count.max(1));
            self.bb_remaining = self.rng.gen_range(4u32..16);
        } else {
            self.bb_remaining -= 1;
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        while self.phase_idx < self.phases.len() {
            if self.emitted_in_phase >= self.phase().instructions {
                self.phase_idx += 1;
                self.emitted_in_phase = 0;
                if self.phase_idx < self.phases.len() {
                    self.current_bb = self.phase().bb_base;
                    self.bb_remaining = 0;
                }
                continue;
            }
            self.emitted_in_phase += 1;
            self.advance_bb();
            let kind = self.sample_kind();
            let bb_id = self.current_bb;
            let insn = match kind {
                Kind::Load | Kind::Store => Instruction {
                    kind,
                    dep1: self.sample_dep(),
                    dep2: 0,
                    addr: self.sample_addr(),
                    taken: false,
                    bb_id,
                },
                Kind::Branch => {
                    let taken = self.sample_branch(bb_id);
                    if taken {
                        self.bb_remaining = 0; // leave the block
                    }
                    Instruction {
                        kind,
                        dep1: self.sample_dep(),
                        dep2: 0,
                        addr: 0,
                        taken,
                        bb_id,
                    }
                }
                _ => Instruction {
                    kind,
                    dep1: self.sample_dep(),
                    dep2: self.sample_dep(),
                    addr: 0,
                    taken: false,
                    bb_id,
                },
            };
            return Some(insn);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn trace_is_deterministic() {
        let w = Workload::by_name("gzip").unwrap();
        let a: Vec<_> = TraceGenerator::new(&w, 7).take(1000).collect();
        let b: Vec<_> = TraceGenerator::new(&w, 7).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(&w, 8).take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_length_matches_workload() {
        let w = Workload::by_name("swim").unwrap();
        let n = TraceGenerator::new(&w, 1).count() as u64;
        assert_eq!(n, w.total_instructions());
    }

    #[test]
    fn mix_roughly_matches_spec() {
        let w = Workload::by_name("swim").unwrap();
        let phase_len = w.phases[0].instructions as usize;
        let trace: Vec<_> = TraceGenerator::new(&w, 3).take(phase_len).collect();
        let loads = trace.iter().filter(|i| i.kind == Kind::Load).count() as f64;
        let frac = loads / phase_len as f64;
        let want = w.phases[0].mix[4] / w.phases[0].mix.iter().sum::<f64>();
        assert!(
            (frac - want).abs() < 0.02,
            "load fraction {frac}, expected ~{want}"
        );
    }

    #[test]
    fn phases_use_their_own_basic_blocks() {
        let w = Workload::by_name("gcc").unwrap();
        let p0 = &w.phases[0];
        let p1 = &w.phases[1];
        let trace: Vec<_> = TraceGenerator::new(&w, 5).collect();
        let first = &trace[..p0.instructions as usize];
        let second = &trace[p0.instructions as usize..];
        assert!(first
            .iter()
            .all(|i| i.bb_id >= p0.bb_base && i.bb_id < p0.bb_base + p0.bb_count));
        assert!(second
            .iter()
            .all(|i| i.bb_id >= p1.bb_base && i.bb_id < p1.bb_base + p1.bb_count));
    }

    #[test]
    fn fp_workloads_emit_fp_ops_int_ones_do_not() {
        let fp: Vec<_> = TraceGenerator::new(&Workload::by_name("mgrid").unwrap(), 1)
            .take(5000)
            .collect();
        assert!(fp.iter().any(|i| i.kind.is_fp()));
        let int: Vec<_> = TraceGenerator::new(&Workload::by_name("mcf").unwrap(), 1)
            .take(5000)
            .collect();
        assert!(int.iter().all(|i| !i.kind.is_fp()));
    }

    #[test]
    fn streaming_addresses_never_repeat() {
        let w = Workload::by_name("art").unwrap();
        let trace: Vec<_> = TraceGenerator::new(&w, 2).take(20_000).collect();
        let stream_addrs: Vec<_> = trace
            .iter()
            .filter(|i| i.kind.is_mem() && i.addr >= (1 << 32) * 64)
            .map(|i| i.addr)
            .collect();
        assert!(!stream_addrs.is_empty());
        let mut sorted = stream_addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), stream_addrs.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::workload::Workload;
    use proptest::prelude::*;

    proptest! {
        /// Every generated instruction respects the structural invariants:
        /// bounded dependency distances, phase-local basic blocks, and
        /// line-aligned footprint addresses for memory operations.
        #[test]
        fn prop_instructions_are_well_formed(seed in 0u64..500, wl_idx in 0usize..16) {
            let w = &Workload::all()[wl_idx];
            for insn in TraceGenerator::new(w, seed).take(2_000) {
                prop_assert!(insn.dep1 <= 64 && insn.dep2 <= 64);
                let in_some_phase = w.phases.iter().any(|p| {
                    insn.bb_id >= p.bb_base && insn.bb_id < p.bb_base + p.bb_count
                });
                prop_assert!(in_some_phase, "bb {} outside all phases", insn.bb_id);
                if insn.kind.is_mem() {
                    prop_assert!(insn.addr % 1 == 0);
                } else {
                    prop_assert_eq!(insn.addr, 0);
                }
            }
        }

        /// Traces never emit FP operations for integer workloads.
        #[test]
        fn prop_int_workloads_have_no_fp(seed in 0u64..200) {
            let w = Workload::by_name("bzip2").expect("exists");
            prop_assert!(TraceGenerator::new(&w, seed)
                .take(3_000)
                .all(|i| !i.kind.is_fp()));
        }
    }
}
