//! Basic-block-vector (BBV) phase detection.
//!
//! The hardware phase detector of Sherwood et al. as configured in
//! Figure 7(a): basic-block execution frequencies are accumulated into
//! **32 buckets of 6 bits each**; at the end of each interval the signature
//! is compared (Manhattan distance) against previously seen stable phases.
//! "If this phase has been seen before, a saved configuration is reused"
//! (§4.3.3) — hence the detector hands out stable [`PhaseId`]s.

/// Number of histogram buckets.
pub const BUCKETS: usize = 32;

/// Saturating ceiling of each bucket (6 bits).
pub const BUCKET_MAX: u32 = 63;

/// Identifier of a detected phase; equal ids mean "same behaviour, reuse
/// the saved configuration".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseId(pub u32);

/// Outcome of completing one detection interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEvent {
    /// The phase the finished interval belongs to.
    pub id: PhaseId,
    /// Whether this phase was newly created (vs recognized from the table).
    pub is_new: bool,
}

/// The BBV phase detector.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    interval: u64,
    threshold: u32,
    counts: [u64; BUCKETS],
    seen: u64,
    table: Vec<[u8; BUCKETS]>,
    next_id: u32,
}

impl PhaseDetector {
    /// Creates a detector with the given interval length (instructions per
    /// comparison) and Manhattan-distance threshold for "same phase".
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64, threshold: u32) -> Self {
        assert!(interval > 0, "interval must be non-zero");
        Self {
            interval,
            threshold,
            counts: [0; BUCKETS],
            seen: 0,
            table: Vec::new(),
            next_id: 0,
        }
    }

    /// Evaluation defaults: intervals of 10 000 instructions (scaled from
    /// the paper's multi-millisecond phases to the shorter synthetic
    /// traces), threshold of 25% of the maximum distance.
    pub fn micro08() -> Self {
        Self::new(10_000, (BUCKETS as u32 * BUCKET_MAX) / 4)
    }

    /// Number of distinct phases discovered so far.
    pub fn phases_seen(&self) -> usize {
        self.table.len()
    }

    /// Feeds one committed instruction's basic-block id. Returns a
    /// [`PhaseEvent`] when an interval completes.
    pub fn observe(&mut self, bb_id: u32) -> Option<PhaseEvent> {
        let bucket = (bb_id.wrapping_mul(0x9E37_79B9) >> 27) as usize % BUCKETS;
        self.counts[bucket] += 1;
        self.seen += 1;
        if self.seen < self.interval {
            return None;
        }
        let sig = self.signature();
        self.counts = [0; BUCKETS];
        self.seen = 0;
        // Find the closest known phase.
        let mut best: Option<(usize, u32)> = None;
        for (i, known) in self.table.iter().enumerate() {
            let d = manhattan(&sig, known);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, d)) if d <= self.threshold => Some(PhaseEvent {
                id: PhaseId(i as u32),
                is_new: false,
            }),
            _ => {
                self.table.push(sig);
                let id = PhaseId(self.next_id);
                self.next_id += 1;
                Some(PhaseEvent { id, is_new: true })
            }
        }
    }

    /// The 6-bit-per-bucket normalized signature of the current interval.
    fn signature(&self) -> [u8; BUCKETS] {
        let total: u64 = self.counts.iter().sum::<u64>().max(1);
        let mut sig = [0u8; BUCKETS];
        for (s, &c) in sig.iter_mut().zip(self.counts.iter()) {
            // Scale so a uniform distribution uses mid-range values; heavy
            // buckets saturate at 63.
            let v = (c * 4 * BUCKET_MAX as u64 / total).min(BUCKET_MAX as u64);
            *s = v as u8;
        }
        sig
    }
}

fn manhattan(a: &[u8; BUCKETS], b: &[u8; BUCKETS]) -> u32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| u32::from(x.abs_diff(y)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;
    use crate::workload::Workload;

    #[test]
    fn stable_code_region_is_one_phase() {
        let mut d = PhaseDetector::new(1000, 100);
        let mut events = Vec::new();
        for i in 0..10_000u32 {
            if let Some(e) = d.observe(100 + i % 8) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 10);
        assert!(events[0].is_new);
        assert!(events[1..].iter().all(|e| !e.is_new && e.id == events[0].id));
    }

    #[test]
    fn different_code_regions_are_different_phases() {
        let mut d = PhaseDetector::new(1000, 100);
        let mut ids = Vec::new();
        // Region A, then region B with disjoint bb ids.
        for i in 0..5000u32 {
            if let Some(e) = d.observe(i % 8) {
                ids.push(e.id);
            }
        }
        for i in 0..5000u32 {
            if let Some(e) = d.observe(5000 + i % 8) {
                ids.push(e.id);
            }
        }
        assert!(d.phases_seen() >= 2, "saw {} phases", d.phases_seen());
        assert_ne!(ids[0], *ids.last().unwrap());
    }

    #[test]
    fn returning_to_a_phase_reuses_its_id() {
        let mut d = PhaseDetector::new(1000, 120);
        let run = |d: &mut PhaseDetector, base: u32| -> Vec<PhaseEvent> {
            let mut out = Vec::new();
            for i in 0..3000u32 {
                if let Some(e) = d.observe(base + i % 8) {
                    out.push(e);
                }
            }
            out
        };
        let a1 = run(&mut d, 0);
        let _b = run(&mut d, 9000);
        let a2 = run(&mut d, 0);
        assert_eq!(a1.last().unwrap().id, a2.last().unwrap().id);
        assert!(!a2.last().unwrap().is_new);
    }

    #[test]
    fn detects_workload_phase_structure() {
        // The gcc workload has two phases with disjoint bb ranges; the
        // detector should discover at least two distinct phases.
        let w = Workload::by_name("gcc").unwrap();
        let mut d = PhaseDetector::new(5_000, 150);
        for insn in TraceGenerator::new(&w, 17) {
            d.observe(insn.bb_id);
        }
        assert!(d.phases_seen() >= 2, "saw {} phases", d.phases_seen());
    }
}
