//! The 15 processor subsystems of the EVAL evaluation (Figure 7(b)).

use std::fmt;

/// Number of subsystems per core.
pub const N_SUBSYSTEMS: usize = 15;

/// One of the 15 per-core subsystems, each of which gets its own variation
/// locality, `PE(f)` curve, thermal node and (with fine-grain ASV/ABB) its
/// own voltages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SubsystemId {
    Dcache,
    Dtlb,
    FpQueue,
    FpReg,
    LdStQueue,
    FpUnit,
    FpMap,
    IntAlu,
    IntReg,
    IntQueue,
    IntMap,
    Itlb,
    Icache,
    BranchPred,
    Decode,
}

impl SubsystemId {
    /// All subsystems in canonical (index) order.
    pub const ALL: [SubsystemId; N_SUBSYSTEMS] = [
        SubsystemId::Dcache,
        SubsystemId::Dtlb,
        SubsystemId::FpQueue,
        SubsystemId::FpReg,
        SubsystemId::LdStQueue,
        SubsystemId::FpUnit,
        SubsystemId::FpMap,
        SubsystemId::IntAlu,
        SubsystemId::IntReg,
        SubsystemId::IntQueue,
        SubsystemId::IntMap,
        SubsystemId::Itlb,
        SubsystemId::Icache,
        SubsystemId::BranchPred,
        SubsystemId::Decode,
    ];

    /// Canonical index in `[0, N_SUBSYSTEMS)`; the inverse of
    /// [`SubsystemId::from_index`] (checked by a test against `ALL`).
    pub const fn index(&self) -> usize {
        match self {
            SubsystemId::Dcache => 0,
            SubsystemId::Dtlb => 1,
            SubsystemId::FpQueue => 2,
            SubsystemId::FpReg => 3,
            SubsystemId::LdStQueue => 4,
            SubsystemId::FpUnit => 5,
            SubsystemId::FpMap => 6,
            SubsystemId::IntAlu => 7,
            SubsystemId::IntReg => 8,
            SubsystemId::IntQueue => 9,
            SubsystemId::IntMap => 10,
            SubsystemId::Itlb => 11,
            SubsystemId::Icache => 12,
            SubsystemId::BranchPred => 13,
            SubsystemId::Decode => 14,
        }
    }

    /// Subsystem from its canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_SUBSYSTEMS`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SubsystemId::Dcache => "dcache",
            SubsystemId::Dtlb => "dtlb",
            SubsystemId::FpQueue => "fpq",
            SubsystemId::FpReg => "fpreg",
            SubsystemId::LdStQueue => "ldstq",
            SubsystemId::FpUnit => "fpunit",
            SubsystemId::FpMap => "fpmap",
            SubsystemId::IntAlu => "intalu",
            SubsystemId::IntReg => "intreg",
            SubsystemId::IntQueue => "intq",
            SubsystemId::IntMap => "intmap",
            SubsystemId::Itlb => "itlb",
            SubsystemId::Icache => "icache",
            SubsystemId::BranchPred => "branchpred",
            SubsystemId::Decode => "decode",
        }
    }

    /// Whether this is one of the two resizable issue queues.
    pub fn is_issue_queue(&self) -> bool {
        matches!(self, SubsystemId::IntQueue | SubsystemId::FpQueue)
    }

    /// Whether this is one of the replicable functional units.
    pub fn is_replicable_fu(&self) -> bool {
        matches!(self, SubsystemId::IntAlu | SubsystemId::FpUnit)
    }
}

impl fmt::Display for SubsystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, s) in SubsystemId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(SubsystemId::from_index(i), *s);
        }
    }

    #[test]
    fn there_are_fifteen_subsystems() {
        assert_eq!(SubsystemId::ALL.len(), N_SUBSYSTEMS);
        assert_eq!(N_SUBSYSTEMS, 15);
    }

    #[test]
    fn special_roles() {
        assert!(SubsystemId::IntQueue.is_issue_queue());
        assert!(SubsystemId::FpQueue.is_issue_queue());
        assert!(SubsystemId::IntAlu.is_replicable_fu());
        assert!(SubsystemId::FpUnit.is_replicable_fu());
        assert!(!SubsystemId::Dcache.is_issue_queue());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SubsystemId::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_SUBSYSTEMS);
    }
}
