//! Set-associative caches with LRU replacement and the two-level hierarchy
//! of the modeled core (Figure 7(a): round trips of 2 cycles to L1,
//! 8 to L2 and 208 to memory at the nominal 4 GHz).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The modeled 64 KB, 2-way, 64 B-line L1.
    pub fn l1() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The modeled 1 MB, 8-way, 64 B-line private L2.
    pub fn l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored per set together with an LRU ordering (most recent
/// first). Capacities in this model are small enough that a simple vector
/// scan per set is faster than fancier structures.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets x ways` tags, `u64::MAX` = invalid; each set ordered MRU-first.
    tags: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/sets or line size
    /// not a power of two).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(config.line_bytes.is_power_of_two(), "line size power of two");
        assert!(config.sets() > 0, "cache needs at least one set");
        Self {
            config,
            tags: vec![u64::MAX; config.sets() * config.ways],
            accesses: 0,
            misses: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks `addr` up, fills on miss, updates LRU. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        let set = (line % sets) as usize;
        let tag = line / sets;
        let ways = self.config.ways;
        let base = set * ways;
        let slot = self.tags[base..base + ways].iter().position(|&t| t == tag);
        match slot {
            Some(pos) => {
                // Move to MRU position.
                self.tags[base..base + pos + 1].rotate_right(1);
                true
            }
            None => {
                self.misses += 1;
                // Evict LRU (last), insert at MRU (first).
                self.tags[base..base + ways].rotate_right(1);
                self.tags[base] = tag;
                false
            }
        }
    }

    /// Forgets all contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1, hit the private L2.
    L2Hit,
    /// Missed both levels; went to memory.
    Mem,
}

impl AccessOutcome {
    /// Round-trip latency in cycles at the nominal 4 GHz (Figure 7(a)).
    pub fn latency_cycles(&self) -> u32 {
        match self {
            AccessOutcome::L1Hit => 2,
            AccessOutcome::L2Hit => 8,
            AccessOutcome::Mem => 208,
        }
    }
}

/// A private L1 + L2 hierarchy for one core.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Creates the modeled L1 + L2 pair.
    pub fn new() -> Self {
        Self {
            l1: Cache::new(CacheConfig::l1()),
            l2: Cache::new(CacheConfig::l2()),
        }
    }

    /// Performs an access, filling both levels on the way.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        if self.l1.access(addr) {
            AccessOutcome::L1Hit
        } else if self.l2.access(addr) {
            AccessOutcome::L2Hit
        } else {
            AccessOutcome::Mem
        }
    }

    /// L2 misses so far (the `mr` numerator of Equation 5).
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// L1 statistics (accesses, misses).
    pub fn l1_stats(&self) -> (u64, u64) {
        (self.l1.accesses(), self.l1.misses())
    }

    /// Forgets contents and statistics of both levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038)); // same 64B line
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way cache: touch three lines mapping to the same set.
        let cfg = CacheConfig {
            size_bytes: 2 * 64,
            ways: 2,
            line_bytes: 64,
        };
        let mut c = Cache::new(cfg);
        // One set only: every line maps to set 0.
        c.access(0); // miss, [0]
        c.access(64); // miss, [1,0]
        assert!(c.access(0)); // hit, [0,1]
        c.access(128); // miss, evicts 1 -> [2,0]
        assert!(c.access(0), "0 was MRU, must survive");
        assert!(!c.access(64), "1 was LRU, must be gone");
    }

    #[test]
    fn working_set_larger_than_l1_misses_to_l2() {
        let mut h = Hierarchy::new();
        let lines = 4 * 1024; // 256 KB working set > 64 KB L1, < 1 MB L2
        for round in 0..3 {
            let mut l1_hits = 0;
            let mut l2_hits = 0;
            for i in 0..lines {
                match h.access(i * 64) {
                    AccessOutcome::L1Hit => l1_hits += 1,
                    AccessOutcome::L2Hit => l2_hits += 1,
                    AccessOutcome::Mem => {}
                }
            }
            if round > 0 {
                assert!(l2_hits > l1_hits, "L2 should capture the working set");
            }
        }
    }

    #[test]
    fn latencies_match_figure_7a() {
        assert_eq!(AccessOutcome::L1Hit.latency_cycles(), 2);
        assert_eq!(AccessOutcome::L2Hit.latency_cycles(), 8);
        assert_eq!(AccessOutcome::Mem.latency_cycles(), 208);
    }

    #[test]
    fn reset_clears_contents() {
        let mut h = Hierarchy::new();
        h.access(0x2000);
        h.reset();
        assert_eq!(h.l2_misses(), 0);
        assert_eq!(h.access(0x2000), AccessOutcome::Mem);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// An access immediately repeated always hits, and the miss count
        /// never exceeds the access count.
        #[test]
        fn prop_rehit_and_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let mut c = Cache::new(CacheConfig::l1());
            for &a in &addrs {
                let _ = c.access(a);
                prop_assert!(c.access(a), "immediate re-access of {a:#x} missed");
            }
            prop_assert!(c.misses() <= c.accesses());
            prop_assert_eq!(c.accesses(), 2 * addrs.len() as u64);
        }

        /// A working set smaller than associativity * 1 set never conflicts:
        /// after the first pass, everything hits.
        #[test]
        fn prop_small_working_set_fits(start in 0u64..1_000) {
            let mut h = Hierarchy::new();
            let lines: Vec<u64> = (0..256).map(|i| (start + i) * 64).collect();
            for &a in &lines {
                let _ = h.access(a);
            }
            for &a in &lines {
                prop_assert_eq!(h.access(a), AccessOutcome::L1Hit);
            }
        }
    }
}
