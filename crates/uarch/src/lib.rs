//! # eval-uarch
//!
//! The microarchitectural substrate of the EVAL reproduction — a stand-in
//! for the SESC cycle-level simulator + SPEC 2000 binaries used by the
//! paper (§5.1). It provides:
//!
//! * a **synthetic workload generator** ([`workload`]): 16 SPEC-2000-named
//!   programs, each a sequence of phases with distinct instruction mixes,
//!   dependency (ILP) structure, working sets and branch behaviour;
//! * a **trace-driven out-of-order core** ([`core`]): ROB, resizable issue
//!   queue (the paper's 68/51-entry integer and 32/24-entry FP queues),
//!   functional units, a gshare branch predictor ([`bpred`]) and a two-level
//!   cache hierarchy ([`cache`]) with the paper's 2/8/208-cycle round trips;
//! * a **Diva-style checker** ([`checker`]) that turns an error rate per
//!   instruction into flush-and-restart recovery cycles;
//! * a **BBV phase detector** ([`phase`]): 32 buckets of 6-bit saturating
//!   counters, as in Sherwood et al. (Figure 7(a));
//! * **performance counters** ([`counters`]) that report per-subsystem
//!   activity factors for the 15 subsystems of Figure 7(b); and
//! * a **profiler** ([`profile`]) that distills a workload into the
//!   per-phase quantities the adaptation layer consumes: `CPIcomp` under
//!   both issue-queue sizes, the L2 miss rate `mr`, the observed
//!   non-overlapped miss penalty, and the activity-factor vector.
//!
//! ## Example
//!
//! ```
//! use eval_uarch::{Workload, profile::profile_workload};
//!
//! let swim = Workload::by_name("swim").unwrap();
//! let profile = profile_workload(&swim, 20_000, 99);
//! assert!(!profile.phases.is_empty());
//! let p = &profile.phases[0];
//! // Downsizing the queue can only hurt (or not change) base CPI:
//! assert!(p.cpi_comp_small >= p.cpi_comp_full - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod checker;
pub mod core;
pub mod counters;
pub mod insn;
pub mod phase;
pub mod profile;
pub mod subsystem;
pub mod trace;
pub mod trace_io;
pub mod workload;

pub use crate::core::{CoreConfig, CoreStats, OooCore, QueueSize};
pub use bpred::Gshare;
pub use cache::{AccessOutcome, Cache, CacheConfig, Hierarchy};
pub use checker::{Checker, RecoveryModel};
pub use counters::ActivityVector;
pub use insn::{Instruction, Kind};
pub use phase::{PhaseDetector, PhaseId};
pub use profile::{profile_workload, PhaseProfile, WorkloadProfile};
pub use subsystem::{SubsystemId, N_SUBSYSTEMS};
pub use trace::TraceGenerator;
pub use trace_io::{read_trace, write_trace, TraceIoError};
pub use workload::{Workload, WorkloadClass};
