//! # eval-power
//!
//! Power, leakage and steady-state thermal models for the EVAL reproduction
//! — Equations 6–9 of the MICRO 2008 paper:
//!
//! ```text
//! T    = TH + Rth * (Pdyn + Psta)                       (6)
//! Pdyn = Kdyn * alpha_f * Vdd^2 * f                     (7)
//! Psta = Ksta * Vdd * T^2 * exp(-q Vt / k T)            (8)
//! Vt   = Vt0 + k1 (T - T0) + k2 dVdd + k3 Vbb           (9)
//! ```
//!
//! "These equations form a feedback system and need to be solved
//! iteratively" (§4.1) — [`solve_thermal`] runs the fixed-point iteration
//! (undamped with a deterministic damped fallback; see `solve`) and
//! reports thermal runaway when leakage self-heating diverges.
//! [`SolveCache`] memoizes and warm-starts solves over the discrete
//! ladders — the operating-point fast path all optimizers share.
//!
//! The crate also defines the discrete actuator ladders of Figure 7(a)
//! (frequency in 100 MHz steps, ASV in 50 mV steps from 800 mV to 1200 mV,
//! ABB in 50 mV steps from −500 mV to +500 mV) and the constraint set
//! (`PMAX` = 30 W/proc, `TMAX` = 85 C, `TH_MAX` = 70 C, `PEMAX` = 1e-4
//! err/inst).
//!
//! ## Example
//!
//! ```
//! use eval_power::{solve_thermal, SubsystemPowerParams, ThermalEnvironment};
//! use eval_variation::DeviceParams;
//!
//! let params = SubsystemPowerParams {
//!     kdyn_w: 0.5,
//!     ksta_nom_w: 0.2,
//!     rth_c_per_w: 4.0,
//!     vt0: 0.150,
//! };
//! let env = ThermalEnvironment { th_c: 55.0, alpha_f: 0.8 };
//! let op = eval_power::OperatingPoint::new(4.0, 1.0, 0.0)?;
//! let sol = solve_thermal(&params, &env, &op, &DeviceParams::micro08())?;
//! assert!(sol.t_c > env.th_c); // self-heating
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod constraints;
pub mod ladder;
pub mod op;
pub mod params;
pub mod solve;

pub use cache::{SolveCache, SolveCacheStats};
pub use constraints::Constraints;
pub use ladder::{freq_steps, vbb_steps, vdd_steps, Ladder, FREQ_LADDER, VBB_LADDER, VDD_LADDER};
pub use op::OperatingPoint;
pub use params::{SubsystemPowerParams, ThermalEnvironment};
pub use solve::{
    cold_start_c, solve_thermal, solve_thermal_reference, solve_thermal_seeded, SolveStats,
    ThermalRunaway, ThermalSolution,
};
