//! The constraint set of the optimization problem (§4.1).

use eval_units::consts;

/// Operating constraints: "no point can be at T higher than TMAX, the
/// processor power cannot be higher than PMAX, and the total processor PE
/// cannot be higher than PEMAX" (§4.1), with the heat-sink limit TH_MAX
/// from Figure 7(a).
///
/// # Example
///
/// ```
/// use eval_power::Constraints;
/// let c = Constraints::micro08();
/// assert_eq!(c.p_max_w, 30.0);
/// // The Freq/Power algorithms budget PE conservatively per subsystem:
/// assert!(c.pe_budget_per_subsystem(15) < c.pe_max);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum junction temperature, Celsius.
    pub t_max_c: f64,
    /// Maximum heat-sink temperature, Celsius.
    pub th_max_c: f64,
    /// Maximum per-processor power (core + L1 + L2), watts.
    pub p_max_w: f64,
    /// Maximum total error rate, errors per instruction.
    pub pe_max: f64,
}

impl Constraints {
    /// Figure 7(a): `PMAX = 30 W/proc`, `TMAX = 85 C`, `TH_MAX = 70 C`,
    /// `PEMAX = 1e-4 err/inst`. The values live in [`eval_units::consts`],
    /// the single source of truth for the paper's constants.
    pub fn micro08() -> Self {
        Self {
            t_max_c: consts::T_MAX_C,
            th_max_c: consts::TH_MAX_C,
            p_max_w: consts::P_MAX.get(),
            pe_max: consts::PE_MAX.get(),
        }
    }

    /// The per-subsystem error budget used by the Freq/Power algorithms:
    /// the total budget conservatively split `PEMAX / n` over `n`
    /// subsystems (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `n_subsystems` is zero.
    pub fn pe_budget_per_subsystem(&self, n_subsystems: usize) -> f64 {
        assert!(n_subsystems > 0, "need at least one subsystem");
        self.pe_max / n_subsystems as f64
    }
}

impl Default for Constraints {
    fn default() -> Self {
        Self::micro08()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = Constraints::micro08();
        assert_eq!(c.t_max_c, 85.0);
        assert_eq!(c.p_max_w, 30.0);
        assert_eq!(c.pe_max, 1e-4);
    }

    #[test]
    fn per_subsystem_budget_splits_evenly() {
        let c = Constraints::micro08();
        assert!((c.pe_budget_per_subsystem(15) - 1e-4 / 15.0).abs() < 1e-20);
    }
}
