//! Operating points: the knobs the adaptation outputs.

use eval_units::{GHz, UnitRangeError, Volts};

/// One candidate setting of the per-subsystem actuators plus the core clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core frequency.
    pub f: GHz,
    /// Subsystem supply voltage (ASV knob).
    pub vdd: Volts,
    /// Subsystem body-bias voltage (ABB knob; positive = forward).
    pub vbb: Volts,
}

impl OperatingPoint {
    /// The nominal design point: 4 GHz, 1 V, no body bias.
    pub fn nominal() -> Self {
        Self {
            f: eval_units::consts::F_NOMINAL,
            vdd: eval_units::consts::VDD_NOMINAL,
            vbb: Volts::raw(0.0),
        }
    }

    /// Range-validated constructor from raw knob values: the frequency must
    /// be positive and the voltages within the ASV/ABB actuator ranges.
    // lint:allow(unit-safety): this is the validating boundary that turns
    // raw numbers into newtypes; it cannot itself take newtypes.
    pub fn new(f_ghz: f64, vdd: f64, vbb: f64) -> Result<Self, UnitRangeError> {
        Ok(Self {
            f: GHz::new(f_ghz)?,
            vdd: Volts::vdd(vdd)?,
            vbb: Volts::vbb(vbb)?,
        })
    }

    /// Unchecked constructor for values already produced by a validated
    /// source (e.g. the actuator ladders).
    // lint:allow(unit-safety): const escape hatch for ladder-validated
    // values (the discrete actuator ladders only emit in-range settings).
    pub const fn raw(f_ghz: f64, vdd: f64, vbb: f64) -> Self {
        Self {
            f: GHz::raw(f_ghz),
            vdd: Volts::raw(vdd),
            vbb: Volts::raw(vbb),
        }
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} GHz / {:.0} mV / {:+.0} mV",
            self.f.get(),
            self.vdd.millivolts(),
            self.vbb.millivolts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let op = OperatingPoint::raw(4.3, 1.05, -0.1);
        assert_eq!(op.to_string(), "4.3 GHz / 1050 mV / -100 mV");
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(OperatingPoint::default(), OperatingPoint::nominal());
    }

    #[test]
    fn new_rejects_out_of_range_knobs() {
        assert!(OperatingPoint::new(4.0, 1.0, 0.0).is_ok());
        assert!(OperatingPoint::new(-4.0, 1.0, 0.0).is_err());
        assert!(OperatingPoint::new(4.0, 0.3, 0.0).is_err());
        assert!(OperatingPoint::new(4.0, 1.0, 0.9).is_err());
        // A swapped (vdd, vbb) pair is caught at construction: the legal
        // supply and body-bias ranges are disjoint.
        assert!(OperatingPoint::new(4.0, 0.0, 1.0).is_err());
    }
}
