//! Operating points: the knobs the adaptation outputs.

/// One candidate setting of the per-subsystem actuators plus the core clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core frequency in GHz.
    pub f_ghz: f64,
    /// Subsystem supply voltage in volts (ASV knob).
    pub vdd: f64,
    /// Subsystem body-bias voltage in volts (ABB knob; positive = forward).
    pub vbb: f64,
}

impl OperatingPoint {
    /// The nominal design point: 4 GHz, 1 V, no body bias.
    pub fn nominal() -> Self {
        Self {
            f_ghz: 4.0,
            vdd: 1.0,
            vbb: 0.0,
        }
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} GHz / {:.0} mV / {:+.0} mV",
            self.f_ghz,
            self.vdd * 1e3,
            self.vbb * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let op = OperatingPoint {
            f_ghz: 4.3,
            vdd: 1.05,
            vbb: -0.1,
        };
        assert_eq!(op.to_string(), "4.3 GHz / 1050 mV / -100 mV");
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(OperatingPoint::default(), OperatingPoint::nominal());
    }
}
