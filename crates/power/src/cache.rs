//! Memoized, warm-started thermal solves over the discrete actuator
//! ladders — the operating-point fast path.
//!
//! Every adaptation decision evaluates `(f, Vdd, Vbb)` candidates drawn
//! from the ladders of Figure 7(a), and a frequency-ladder sweep at fixed
//! `(Vdd, Vbb)` revisits nearly identical thermal problems: the fixed
//! point moves by a fraction of a degree per 100 MHz step. [`SolveCache`]
//! exploits both facts:
//!
//! * **Memoization.** Solutions are keyed by the *exact bits* of the
//!   subsystem parameters and environment plus the discrete frequency
//!   ladder index — no tolerance matching, so a hit is exactly the value
//!   a miss would have produced.
//! * **Warm starts.** A miss at ladder index `i` seeds the solver with
//!   the converged temperature of its *anchor* point
//!   `a = i - (i % ANCHOR_STRIDE)`, itself always solved from the
//!   canonical cold start. Temperature increases with frequency, so the
//!   anchor's temperature approaches the target fixed point from below
//!   and the undamped iteration converges in ~2–4 steps.
//!
//! **Order-independence by construction.** The seed for any key is
//! derived only from the key itself (its anchor's canonically solved
//! temperature), never from whatever happened to be solved last. The
//! cached value for a key is therefore a pure function of the key:
//! query order, interleaving across subsystems, and even evictions
//! (`clear` on reaching [`MAX_ENTRIES`]) cannot change any returned
//! value. `tests/hotpath_equivalence.rs` checks this bitwise across the
//! full grid.
//!
//! One cache instance assumes a single [`DeviceParams`] (the per-process
//! technology model, constant across a campaign); device fields are
//! deliberately not part of the key.
//
// lint:hot-path — this module is on the operating-point fast path; the
// no-alloc-in-check rule forbids Vec construction outside tests here.

use std::collections::BTreeMap;

use eval_units::Volts;
use eval_variation::DeviceParams;

use crate::ladder::FREQ_LADDER;
use crate::op::OperatingPoint;
use crate::params::{SubsystemPowerParams, ThermalEnvironment};
use crate::solve::{
    cold_start_c, solve_thermal_seeded, SolveStats, ThermalRunaway, ThermalSolution,
};

/// Frequency-ladder stride between canonically (cold) seeded anchor
/// points. Non-anchor indices warm-start from their anchor's temperature,
/// at most `ANCHOR_STRIDE - 1` steps below them.
pub const ANCHOR_STRIDE: usize = 4;

/// Entry cap; reaching it clears the map (deterministically, and —
/// because cached values are pure functions of their keys — without any
/// effect on returned values, only on hit rate).
pub const MAX_ENTRIES: usize = 1 << 17;

/// Bit-exact cache key: subsystem parameters, environment, biases, and
/// the discrete frequency-ladder index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SolveKey {
    kdyn: u64,
    ksta: u64,
    rth: u64,
    vt0: u64,
    th: u64,
    alpha: u64,
    vdd: u64,
    vbb: u64,
    f_idx: u32,
}

impl SolveKey {
    fn new(
        params: &SubsystemPowerParams,
        env: &ThermalEnvironment,
        f_idx: usize,
        vdd: Volts,
        vbb: Volts,
    ) -> Self {
        SolveKey {
            kdyn: params.kdyn_w.to_bits(),
            ksta: params.ksta_nom_w.to_bits(),
            rth: params.rth_c_per_w.to_bits(),
            vt0: params.vt0.to_bits(),
            th: env.th_c.to_bits(),
            alpha: env.alpha_f.to_bits(),
            vdd: vdd.get().to_bits(),
            vbb: vbb.get().to_bits(),
            f_idx: f_idx as u32,
        }
    }
}

/// Hit/miss and solver-effort counters, drained by optimizers into
/// eval-trace metrics (`solver.cache.hits`, `solver.cache.misses`,
/// `solver.iterations`, `solver.slow_convergence`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCacheStats {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that ran the solver.
    pub misses: u64,
    /// Total fixed-point iterations across all misses.
    pub iterations: u64,
    /// Solves that exhausted the iteration budget (bounded slow
    /// convergence; the last iterate was accepted).
    pub slow_convergence: u64,
}

impl SolveCacheStats {
    /// Merges `other` into `self` (for aggregating across caches).
    pub fn merge(&mut self, other: SolveCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.iterations += other.iterations;
        self.slow_convergence += other.slow_convergence;
    }
}

/// The memoized ladder solver. One instance per optimizer (caches are
/// cheap: an empty `BTreeMap` plus counters).
#[derive(Debug, Clone, Default)]
pub struct SolveCache {
    map: BTreeMap<SolveKey, Result<ThermalSolution, ThermalRunaway>>,
    stats: SolveCacheStats,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no solutions are cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters since construction or the last [`take_stats`].
    ///
    /// [`take_stats`]: SolveCache::take_stats
    pub fn stats(&self) -> SolveCacheStats {
        self.stats
    }

    /// Returns and resets the counters (for periodic metric flushes).
    pub fn take_stats(&mut self) -> SolveCacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Solves the thermal fixed point at frequency-ladder index `f_idx`
    /// and biases `(vdd, vbb)`, memoized and warm-started.
    ///
    /// Returns exactly what [`crate::solve_thermal`] would return for the
    /// same operating point up to the seed-independence tolerance of the
    /// solver; for a given key the returned bits never depend on what was
    /// queried before.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalRunaway`] (also cached) when the operating point
    /// diverges thermally.
    ///
    /// # Panics
    ///
    /// Panics if `f_idx` is outside the frequency ladder.
    pub fn solve_ladder(
        &mut self,
        params: &SubsystemPowerParams,
        env: &ThermalEnvironment,
        device: &DeviceParams,
        f_idx: usize,
        vdd: Volts,
        vbb: Volts,
    ) -> Result<ThermalSolution, ThermalRunaway> {
        let key = SolveKey::new(params, env, f_idx, vdd, vbb);
        if let Some(&cached) = self.map.get(&key) {
            self.stats.hits += 1;
            return cached;
        }
        self.stats.misses += 1;

        // Canonical seed: anchors cold-start; everything else starts from
        // its anchor's converged temperature (a lower bound on the target,
        // since temperature increases with frequency). The anchor solve
        // recurses at most once — an anchor is its own anchor.
        let anchor_idx = f_idx - (f_idx % ANCHOR_STRIDE);
        let seed = if anchor_idx == f_idx {
            cold_start_c(env, device)
        } else {
            match self.solve_ladder(params, env, device, anchor_idx, vdd, vbb) {
                Ok(anchor) => anchor.t_c,
                // A runaway anchor gives no usable temperature; fall back
                // to the canonical cold start (still key-derived).
                Err(_) => cold_start_c(env, device),
            }
        };

        let op = OperatingPoint::raw(FREQ_LADDER.at(f_idx), vdd.get(), vbb.get());
        let mut effort = SolveStats::default();
        let result = solve_thermal_seeded(params, env, &op, device, seed, &mut effort);
        self.stats.iterations += u64::from(effort.iterations);
        if effort.slow_convergence {
            self.stats.slow_convergence += 1;
        }
        if self.map.len() >= MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SubsystemPowerParams {
        SubsystemPowerParams {
            kdyn_w: 0.4,
            ksta_nom_w: 0.15,
            rth_c_per_w: 6.0,
            vt0: 0.150,
        }
    }

    fn env() -> ThermalEnvironment {
        ThermalEnvironment {
            th_c: 55.0,
            alpha_f: 0.8,
        }
    }

    #[test]
    fn warm_started_sweep_matches_cold_solver() {
        let device = DeviceParams::micro08();
        let mut cache = SolveCache::new();
        for f_idx in 0..FREQ_LADDER.len() {
            let cached = cache.solve_ladder(
                &params(),
                &env(),
                &device,
                f_idx,
                Volts::raw(1.0),
                Volts::raw(0.0),
            );
            let op = OperatingPoint::raw(FREQ_LADDER.at(f_idx), 1.0, 0.0);
            let cold = crate::solve_thermal(&params(), &env(), &op, &device);
            match (cached, cold) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.t_c - b.t_c).abs() < 1e-5,
                        "idx {f_idx}: warm {} vs cold {}",
                        a.t_c,
                        b.t_c
                    );
                    assert!((a.total_w() - b.total_w()).abs() < 1e-6);
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("idx {f_idx}: warm {a:?} vs cold {b:?} disagree on feasibility"),
            }
        }
    }

    #[test]
    fn second_lookup_hits_and_is_bitwise_identical() {
        let device = DeviceParams::micro08();
        let mut cache = SolveCache::new();
        let first = cache
            .solve_ladder(&params(), &env(), &device, 7, Volts::raw(1.1), Volts::raw(0.1))
            .expect("feasible point");
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        // Index 7 warm-starts from anchor 4, so two misses were recorded.
        assert_eq!(stats.misses, 2);
        assert!(stats.iterations > 0);

        let second = cache
            .solve_ladder(&params(), &env(), &device, 7, Volts::raw(1.1), Volts::raw(0.1))
            .expect("feasible point");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(first.t_c.to_bits(), second.t_c.to_bits());
        assert_eq!(first.total_w().to_bits(), second.total_w().to_bits());
    }

    #[test]
    fn query_order_cannot_change_values() {
        let device = DeviceParams::micro08();
        // Forward sweep vs reverse sweep vs fresh-per-point: identical bits.
        let mut forward = SolveCache::new();
        let mut reverse = SolveCache::new();
        let n = FREQ_LADDER.len();
        let fwd: Vec<_> = (0..n)
            .map(|i| {
                forward.solve_ladder(&params(), &env(), &device, i, Volts::raw(1.0), Volts::raw(0.0))
            })
            .collect();
        let rev: Vec<_> = (0..n)
            .rev()
            .map(|i| {
                reverse.solve_ladder(&params(), &env(), &device, i, Volts::raw(1.0), Volts::raw(0.0))
            })
            .collect();
        for i in 0..n {
            let a = fwd[i].expect("feasible");
            let b = rev[n - 1 - i].expect("feasible");
            assert_eq!(a.t_c.to_bits(), b.t_c.to_bits(), "index {i}");
            assert_eq!(a.psta_w.to_bits(), b.psta_w.to_bits(), "index {i}");
        }
    }

    #[test]
    fn take_stats_resets_counters() {
        let device = DeviceParams::micro08();
        let mut cache = SolveCache::new();
        let _ = cache.solve_ladder(&params(), &env(), &device, 0, Volts::raw(1.0), Volts::raw(0.0));
        let taken = cache.take_stats();
        assert_eq!(taken.misses, 1);
        assert_eq!(cache.stats(), SolveCacheStats::default());

        let mut merged = SolveCacheStats::default();
        merged.merge(taken);
        merged.merge(taken);
        assert_eq!(merged.misses, 2);
    }

    #[test]
    fn runaway_points_are_cached_too() {
        let device = DeviceParams::micro08();
        let bad = SubsystemPowerParams {
            kdyn_w: 2.0,
            ksta_nom_w: 5.0,
            rth_c_per_w: 80.0,
            vt0: 0.10,
        };
        let hot = ThermalEnvironment {
            th_c: 70.0,
            alpha_f: 1.0,
        };
        let mut cache = SolveCache::new();
        let top = FREQ_LADDER.len() - 1;
        assert!(cache
            .solve_ladder(&bad, &hot, &device, top, Volts::raw(1.2), Volts::raw(0.5))
            .is_err());
        let misses = cache.stats().misses;
        assert!(cache
            .solve_ladder(&bad, &hot, &device, top, Volts::raw(1.2), Volts::raw(0.5))
            .is_err());
        assert_eq!(cache.stats().misses, misses, "second runaway lookup is a hit");
        assert_eq!(cache.stats().hits, 1);
    }
}
