//! Discrete actuator ladders (Figure 7(a) of the paper).
//!
//! "f: from 2.4 GHz to over 4 GHz in 100 MHz steps; ASV: from 800 mV to
//! 1200 mV in 50 mV steps; ABB: from −500 mV to 500 mV in 50 mV steps."
//! The frequency ladder's ceiling is set comfortably above 4 GHz (5.6 GHz)
//! so adaptation can exploit chips whose critical subsystems end up fast.

/// An inclusive arithmetic ladder of actuator settings.
///
/// # Example
///
/// ```
/// use eval_power::FREQ_LADDER;
/// assert_eq!(FREQ_LADDER.len(), 33);               // 2.4..=5.6 GHz
/// assert!((FREQ_LADDER.nearest(4.27) - 4.3).abs() < 1e-9);
/// assert!((FREQ_LADDER.step_by(4.0, -2) - 3.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ladder {
    /// Smallest setting.
    pub min: f64,
    /// Largest setting.
    pub max: f64,
    /// Step between adjacent settings.
    pub step: f64,
}

/// Core-frequency ladder: 2.4 GHz .. 5.6 GHz in 100 MHz steps.
pub const FREQ_LADDER: Ladder = Ladder {
    min: 2.4,
    max: 5.6,
    step: 0.1,
};

/// ASV ladder: 800 mV .. 1200 mV in 50 mV steps.
pub const VDD_LADDER: Ladder = Ladder {
    min: 0.80,
    max: 1.20,
    step: 0.05,
};

/// ABB ladder: −500 mV .. +500 mV in 50 mV steps.
pub const VBB_LADDER: Ladder = Ladder {
    min: -0.50,
    max: 0.50,
    step: 0.05,
};

impl Ladder {
    /// Number of settings on the ladder.
    pub fn len(&self) -> usize {
        ((self.max - self.min) / self.step).round() as usize + 1
    }

    /// Whether the ladder has no settings (never true for valid ladders).
    pub fn is_empty(&self) -> bool {
        self.max < self.min
    }

    /// The `i`-th setting (0 = `min`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn at(&self, i: usize) -> f64 {
        assert!(i < self.len(), "ladder index {i} out of range {}", self.len());
        self.min + i as f64 * self.step
    }

    /// Iterates over all settings, smallest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.at(i))
    }

    /// The closest ladder setting at or below `x` (clamped to `min`).
    pub fn floor(&self, x: f64) -> f64 {
        if x <= self.min {
            return self.min;
        }
        if x >= self.max {
            return self.max;
        }
        let steps = ((x - self.min) / self.step + 1e-9).floor();
        self.min + steps * self.step
    }

    /// The ladder setting nearest to `x` (clamped to the range).
    pub fn nearest(&self, x: f64) -> f64 {
        if x <= self.min {
            return self.min;
        }
        if x >= self.max {
            return self.max;
        }
        let steps = ((x - self.min) / self.step).round();
        self.min + steps * self.step
    }

    /// Moves `x` by `delta_steps` ladder steps, clamped to the range.
    pub fn step_by(&self, x: f64, delta_steps: i64) -> f64 {
        let moved = x + delta_steps as f64 * self.step;
        moved.clamp(self.min, self.max)
    }

    /// Whether `x` lies on the ladder (within floating tolerance).
    pub fn contains(&self, x: f64) -> bool {
        if x < self.min - 1e-9 || x > self.max + 1e-9 {
            return false;
        }
        let steps = (x - self.min) / self.step;
        (steps - steps.round()).abs() < 1e-6
    }

    /// The ladder index of `x`, if `x` is (within floating tolerance) a
    /// ladder setting. The hot-path cache uses this to key solves by
    /// discrete ladder position instead of by raw floating value.
    pub fn index_of(&self, x: f64) -> Option<usize> {
        let steps = (x - self.min) / self.step;
        let rounded = steps.round();
        if (steps - rounded).abs() >= 1e-6 {
            return None;
        }
        if rounded < -0.5 || rounded as usize >= self.len() {
            return None;
        }
        Some(rounded as usize)
    }
}

/// Materializes a ladder into a `'static` slice exactly once (one small,
/// intentional leak per ladder for the lifetime of the process).
fn materialize(cell: &std::sync::OnceLock<&'static [f64]>, ladder: &Ladder) -> &'static [f64] {
    cell.get_or_init(|| Box::leak(ladder.iter().collect::<Vec<f64>>().into_boxed_slice()))
}

/// All [`FREQ_LADDER`] settings as a `'static` slice (materialized once).
pub fn freq_steps() -> &'static [f64] {
    static CELL: std::sync::OnceLock<&'static [f64]> = std::sync::OnceLock::new();
    materialize(&CELL, &FREQ_LADDER)
}

/// All [`VDD_LADDER`] settings as a `'static` slice (materialized once).
pub fn vdd_steps() -> &'static [f64] {
    static CELL: std::sync::OnceLock<&'static [f64]> = std::sync::OnceLock::new();
    materialize(&CELL, &VDD_LADDER)
}

/// All [`VBB_LADDER`] settings as a `'static` slice (materialized once).
pub fn vbb_steps() -> &'static [f64] {
    static CELL: std::sync::OnceLock<&'static [f64]> = std::sync::OnceLock::new();
    materialize(&CELL, &VBB_LADDER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_ladder_has_100mhz_steps() {
        assert_eq!(FREQ_LADDER.len(), 33);
        assert!((FREQ_LADDER.at(1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn vdd_ladder_matches_paper() {
        assert_eq!(VDD_LADDER.len(), 9);
        assert!((VDD_LADDER.at(0) - 0.80).abs() < 1e-12);
        assert!((VDD_LADDER.at(8) - 1.20).abs() < 1e-12);
    }

    #[test]
    fn vbb_ladder_spans_both_bias_directions() {
        assert_eq!(VBB_LADDER.len(), 21);
        assert!(VBB_LADDER.contains(0.0));
        assert!(VBB_LADDER.contains(-0.5));
        assert!(VBB_LADDER.contains(0.5));
    }

    #[test]
    fn floor_and_nearest_round_correctly() {
        assert!((FREQ_LADDER.floor(4.27) - 4.2).abs() < 1e-9);
        assert!((FREQ_LADDER.nearest(4.27) - 4.3).abs() < 1e-9);
        assert!((FREQ_LADDER.floor(1.0) - 2.4).abs() < 1e-12);
        assert!((FREQ_LADDER.nearest(9.0) - 5.6).abs() < 1e-12);
    }

    #[test]
    fn step_by_clamps() {
        assert!((FREQ_LADDER.step_by(2.5, -8) - 2.4).abs() < 1e-12);
        assert!((FREQ_LADDER.step_by(4.0, 2) - 4.2).abs() < 1e-12);
    }

    #[test]
    fn index_of_round_trips_every_setting() {
        for ladder in [FREQ_LADDER, VDD_LADDER, VBB_LADDER] {
            for i in 0..ladder.len() {
                assert_eq!(ladder.index_of(ladder.at(i)), Some(i));
            }
            assert_eq!(ladder.index_of(ladder.min - ladder.step), None);
            assert_eq!(ladder.index_of(ladder.max + ladder.step), None);
            assert_eq!(ladder.index_of(ladder.min + 0.4 * ladder.step), None);
        }
    }

    #[test]
    fn static_steps_match_the_ladders() {
        assert_eq!(freq_steps().len(), FREQ_LADDER.len());
        assert_eq!(vdd_steps().len(), VDD_LADDER.len());
        assert_eq!(vbb_steps().len(), VBB_LADDER.len());
        for (i, &f) in freq_steps().iter().enumerate() {
            assert_eq!(f, FREQ_LADDER.at(i));
        }
        for (i, &v) in vdd_steps().iter().enumerate() {
            assert_eq!(v, VDD_LADDER.at(i));
        }
        for (i, &v) in vbb_steps().iter().enumerate() {
            assert_eq!(v, VBB_LADDER.at(i));
        }
        // Repeated calls hand back the very same slice.
        assert!(std::ptr::eq(freq_steps(), freq_steps()));
    }

    #[test]
    fn iter_is_sorted_and_on_ladder() {
        let mut prev = f64::NEG_INFINITY;
        for v in VDD_LADDER.iter() {
            assert!(v > prev);
            assert!(VDD_LADDER.contains(v));
            prev = v;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `nearest` returns an on-ladder value no farther than half a step.
        #[test]
        fn prop_nearest_is_closest(x in 0.0f64..8.0) {
            for ladder in [FREQ_LADDER, VDD_LADDER, VBB_LADDER] {
                let n = ladder.nearest(x);
                prop_assert!(ladder.contains(n));
                let clamped = x.clamp(ladder.min, ladder.max);
                prop_assert!((n - clamped).abs() <= ladder.step / 2.0 + 1e-9);
            }
        }

        /// `floor` never exceeds the input (when in range) and is on-ladder.
        #[test]
        fn prop_floor_is_lower_bound(x in 0.0f64..8.0) {
            for ladder in [FREQ_LADDER, VDD_LADDER, VBB_LADDER] {
                let f = ladder.floor(x);
                prop_assert!(ladder.contains(f));
                if x >= ladder.min {
                    prop_assert!(f <= x + 1e-9);
                }
            }
        }

        /// Stepping is clamped and lands on the ladder.
        #[test]
        fn prop_step_by_stays_on_ladder(idx in 0usize..33, steps in -40i64..40) {
            let x = FREQ_LADDER.at(idx.min(FREQ_LADDER.len() - 1));
            let y = FREQ_LADDER.step_by(x, steps);
            prop_assert!(FREQ_LADDER.contains(y));
        }
    }
}
