//! Per-subsystem power/thermal constants and the sensed environment.

use eval_units::{GHz, Volts};

/// Per-subsystem constants measured or computed by the manufacturer and
/// stored on chip (§4.1: "Rth, Kdyn, Ksta, and Vt0 are per-subsystem
/// constants").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemPowerParams {
    /// Dynamic-power coefficient in watts at `alpha_f = 1`, `Vdd = 1 V`,
    /// `f = 1 GHz` (absorbs the switched capacitance `C` of Equation 7).
    pub kdyn_w: f64,
    /// Static power in watts at nominal `(Vt, Vdd, T)`; scaled by the
    /// leakage factor of Equation 8 at other conditions.
    pub ksta_nom_w: f64,
    /// Thermal resistance to the heat sink in Celsius per watt (Equation 6).
    pub rth_c_per_w: f64,
    /// Reference threshold voltage in volts, as measured on the tester from
    /// the subsystem's leakage at a known temperature.
    pub vt0: f64,
}

impl SubsystemPowerParams {
    /// Dynamic power (W) at activity `alpha_f`, supply `vdd` and
    /// frequency `f` — Equation 7.
    ///
    /// # Panics
    ///
    /// Panics if any argument is negative.
    pub fn pdyn_w(&self, alpha_f: f64, vdd: Volts, f: GHz) -> f64 {
        assert!(
            alpha_f >= 0.0 && vdd.get() >= 0.0 && f.get() >= 0.0,
            "power inputs must be non-negative"
        );
        self.kdyn_w * alpha_f * vdd.get() * vdd.get() * f.get()
    }
}

/// The dynamically sensed part of the controller inputs: the heat-sink
/// temperature (one sensor, refreshed every few seconds) and the subsystem
/// activity factor (performance counters, re-measured at each phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalEnvironment {
    /// Heat-sink temperature in Celsius.
    pub th_c: f64,
    /// Subsystem activity factor in accesses per cycle, `[0, 1]`-ish.
    pub alpha_f: f64,
}

impl Default for ThermalEnvironment {
    /// A warm heat sink (55 C) with a moderately active subsystem.
    fn default() -> Self {
        Self {
            th_c: 55.0,
            alpha_f: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdyn_scales_quadratically_with_vdd() {
        let p = SubsystemPowerParams {
            kdyn_w: 1.0,
            ksta_nom_w: 0.0,
            rth_c_per_w: 1.0,
            vt0: 0.15,
        };
        let base = p.pdyn_w(1.0, Volts::raw(1.0), GHz::raw(4.0));
        let boosted = p.pdyn_w(1.0, Volts::raw(1.2), GHz::raw(4.0));
        assert!((boosted / base - 1.44).abs() < 1e-12);
    }

    #[test]
    fn pdyn_is_linear_in_activity_and_frequency() {
        let p = SubsystemPowerParams {
            kdyn_w: 0.7,
            ksta_nom_w: 0.0,
            rth_c_per_w: 1.0,
            vt0: 0.15,
        };
        let v = Volts::raw(1.0);
        assert!((p.pdyn_w(0.5, v, GHz::raw(4.0)) * 2.0 - p.pdyn_w(1.0, v, GHz::raw(4.0))).abs() < 1e-12);
        assert!((p.pdyn_w(1.0, v, GHz::raw(2.0)) * 2.0 - p.pdyn_w(1.0, v, GHz::raw(4.0))).abs() < 1e-12);
    }
}
