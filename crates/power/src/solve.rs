//! Fixed-point solvers for the thermal/leakage feedback loop
//! (Equations 6–9).
//!
//! Two solvers share one epilogue:
//!
//! * [`solve_thermal`] / [`solve_thermal_seeded`] — the production path.
//!   It iterates the *undamped* map `T -> TH + Rth * P(T)`. Because the
//!   map's slope `g' = Rth * dPsta/dT` is small (leakage e-folds every
//!   ~30 °C, so `g'` is typically 0.01–0.3), the undamped iteration
//!   contracts at ratio `g'` and needs ~5–7 evaluations from a cold start
//!   and 2–4 from a warm one — versus ~25–30 for the historical 0.5-damped
//!   stepping, whose ratio is pinned near 0.5 regardless of the start.
//!   If a step ever grows (a non-contracting corner of parameter space),
//!   the loop falls back permanently to 0.5 damping — a deterministic
//!   rule, so results stay reproducible. The seeded entry point powers the
//!   warm-started ladder sweeps of `eval_power::cache`.
//! * [`solve_thermal_reference`] — the original damped iteration, kept
//!   verbatim as the independent witness for equivalence tests and as the
//!   "before" side of the hot-path benchmarks.
//!
//! The production solver converges the step to `1e-7` °C (tighter than
//! the reference's `1e-6` damped step) so that the *choice of starting
//! guess* cannot move the answer beyond ulp scale: the remaining error is
//! bounded by `g'/(1-g') * 1e-7`, far below every decision threshold in
//! the system.
//
// lint:hot-path — this module is on the operating-point fast path; the
// no-alloc-in-check rule forbids Vec construction outside tests here.

use std::fmt;

use eval_variation::{leakage_factor, DeviceParams};

use crate::op::OperatingPoint;
use crate::params::{SubsystemPowerParams, ThermalEnvironment};

/// The converged operating state of one subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSolution {
    /// Steady-state subsystem temperature, Celsius.
    pub t_c: f64,
    /// Threshold voltage at that temperature and the applied biases, volts.
    pub vt: f64,
    /// Dynamic power, watts.
    pub pdyn_w: f64,
    /// Static (leakage) power, watts.
    pub psta_w: f64,
}

impl ThermalSolution {
    /// Total subsystem power in watts.
    pub fn total_w(&self) -> f64 {
        self.pdyn_w + self.psta_w
    }
}

/// Error: the leakage/temperature feedback diverged (thermal runaway) or
/// the operating point is electrically invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRunaway {
    /// Temperature reached when the solver gave up, Celsius.
    pub t_c: f64,
}

impl fmt::Display for ThermalRunaway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thermal runaway: temperature diverged past {:.0} C",
            self.t_c
        )
    }
}

impl std::error::Error for ThermalRunaway {}

/// Temperature ceiling beyond which the iteration is declared divergent.
const T_RUNAWAY_C: f64 = 250.0;

/// Iteration budget shared by both solvers.
const MAX_ITERS: u32 = 200;

/// Step tolerance of the production (undamped) solver, Celsius.
const FAST_TOL_C: f64 = 1e-7;

/// Per-solve effort accounting, accumulated into the caller's counters
/// (flushed as `solver.*` metrics through eval-trace by the cache layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Fixed-point map evaluations performed.
    pub iterations: u32,
    /// Whether any solve exhausted the iteration budget and accepted the
    /// last iterate (bounded, slow convergence).
    pub slow_convergence: bool,
}

/// `(Vt, Psta)` at one temperature — the body of the fixed-point map.
#[inline]
fn vt_psta(
    params: &SubsystemPowerParams,
    op: &OperatingPoint,
    device: &DeviceParams,
    t_c: f64,
) -> (f64, f64) {
    let vt = device.vt_at(params.vt0, t_c, op.vdd.get(), op.vbb.get());
    let psta = params.ksta_nom_w * leakage_factor(device, vt, op.vdd.get(), t_c);
    (vt, psta)
}

/// The shared solver epilogue: re-derives `Vt` and `Psta` at the accepted
/// temperature exactly once and packages the solution. Every exit of both
/// solvers funnels through here, so no exit recomputes the pair twice.
#[inline]
fn finish(
    params: &SubsystemPowerParams,
    op: &OperatingPoint,
    device: &DeviceParams,
    pdyn_w: f64,
    t_c: f64,
) -> ThermalSolution {
    let (vt, psta_w) = vt_psta(params, op, device, t_c);
    ThermalSolution {
        t_c,
        vt,
        pdyn_w,
        psta_w,
    }
}

/// The canonical cold-start temperature: what every unseeded solve begins
/// from. Warm-start seeds must be derived from canonically solved points
/// (see `eval_power::cache`) so results never depend on query order.
pub fn cold_start_c(env: &ThermalEnvironment, device: &DeviceParams) -> f64 {
    env.th_c.max(device.t_ref_c * 0.5)
}

/// Solves the feedback system of Equations 6–9 for one subsystem from the
/// canonical cold start.
///
/// # Errors
///
/// Returns [`ThermalRunaway`] if the temperature diverges past 250 C —
/// callers treat such operating points as violating `TMAX` by a wide margin.
pub fn solve_thermal(
    params: &SubsystemPowerParams,
    env: &ThermalEnvironment,
    op: &OperatingPoint,
    device: &DeviceParams,
) -> Result<ThermalSolution, ThermalRunaway> {
    let mut stats = SolveStats::default();
    solve_thermal_seeded(params, env, op, device, cold_start_c(env, device), &mut stats)
}

/// [`solve_thermal`] from an explicit starting temperature `t0_c`,
/// accumulating effort into `stats`.
///
/// The undamped map `g(T) = TH + Rth * (Pdyn + Psta(T))` is increasing in
/// `T`, so iterates approach the stable fixed point monotonically from
/// either side — a seed below the answer (a colder ladder point) ascends,
/// a seed above it descends; neither overshoots. The converged value is a
/// property of the operating point alone (to the `1e-7` step tolerance),
/// not of the seed.
///
/// # Errors
///
/// Returns [`ThermalRunaway`] if the temperature diverges past 250 C.
pub fn solve_thermal_seeded(
    params: &SubsystemPowerParams,
    env: &ThermalEnvironment,
    op: &OperatingPoint,
    device: &DeviceParams,
    t0_c: f64,
    stats: &mut SolveStats,
) -> Result<ThermalSolution, ThermalRunaway> {
    let pdyn = params.pdyn_w(env.alpha_f, op.vdd, op.f);
    let mut t_c = t0_c;
    let mut prev_step = f64::INFINITY;
    let mut damped = false;
    for iter in 1..=MAX_ITERS {
        let t_next = env.th_c + params.rth_c_per_w * (pdyn + vt_psta(params, op, device, t_c).1);
        if t_next > T_RUNAWAY_C || !t_next.is_finite() {
            stats.iterations += iter;
            return Err(ThermalRunaway { t_c: t_next.min(1e6) });
        }
        let step = (t_next - t_c).abs();
        // Contraction guard: if a step ever grows, the undamped map is not
        // contracting here — drop to the reference damping for the rest of
        // this solve. The rule is deterministic, so repeated solves of the
        // same point take the same path.
        if step > prev_step {
            damped = true;
        }
        prev_step = step;
        let t_new = if damped { 0.5 * (t_c + t_next) } else { t_next };
        if (t_new - t_c).abs() < FAST_TOL_C {
            stats.iterations += iter;
            return Ok(finish(params, op, device, pdyn, t_new));
        }
        t_c = t_new;
    }
    stats.iterations += MAX_ITERS;
    stats.slow_convergence = true;
    // Slow but bounded convergence: accept the last iterate.
    Ok(finish(params, op, device, pdyn, t_c))
}

/// The original 0.5-damped fixed-point iteration, unchanged: iterates
/// `T -> Vt(T) -> Psta(T, Vt) -> T` with 0.5 damping until the temperature
/// moves by less than 1e-6 C (typically < 30 iterations).
///
/// Kept as the independent reference implementation for the grid
/// equivalence tests (`tests/hotpath_equivalence.rs`) and the "before"
/// side of the hot-path benchmarks; production code uses [`solve_thermal`].
///
/// # Errors
///
/// Returns [`ThermalRunaway`] if the temperature diverges past 250 C.
pub fn solve_thermal_reference(
    params: &SubsystemPowerParams,
    env: &ThermalEnvironment,
    op: &OperatingPoint,
    device: &DeviceParams,
) -> Result<ThermalSolution, ThermalRunaway> {
    let pdyn = params.pdyn_w(env.alpha_f, op.vdd, op.f);
    let mut t_c = cold_start_c(env, device);
    for _ in 0..MAX_ITERS {
        let t_next = env.th_c + params.rth_c_per_w * (pdyn + vt_psta(params, op, device, t_c).1);
        if t_next > T_RUNAWAY_C || !t_next.is_finite() {
            return Err(ThermalRunaway { t_c: t_next.min(1e6) });
        }
        let t_new = 0.5 * t_c + 0.5 * t_next;
        if (t_new - t_c).abs() < 1e-6 {
            return Ok(finish(params, op, device, pdyn, t_new));
        }
        t_c = t_new;
    }
    // Slow but bounded convergence: accept the last iterate.
    Ok(finish(params, op, device, pdyn, t_c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SubsystemPowerParams {
        SubsystemPowerParams {
            kdyn_w: 0.4,
            ksta_nom_w: 0.15,
            rth_c_per_w: 6.0,
            vt0: 0.150,
        }
    }

    fn env() -> ThermalEnvironment {
        ThermalEnvironment {
            th_c: 55.0,
            alpha_f: 0.8,
        }
    }

    #[test]
    fn solution_satisfies_equation_6() {
        let device = DeviceParams::micro08();
        let op = OperatingPoint::nominal();
        let sol = solve_thermal(&params(), &env(), &op, &device).expect("solver converges");
        let rhs = env().th_c + params().rth_c_per_w * sol.total_w();
        assert!(
            (sol.t_c - rhs).abs() < 1e-4,
            "T = {} but TH + Rth*P = {}",
            sol.t_c,
            rhs
        );
    }

    #[test]
    fn fast_and_reference_solvers_agree() {
        let device = DeviceParams::micro08();
        for (f, vdd, vbb) in [
            (2.4, 0.8, -0.5),
            (4.0, 1.0, 0.0),
            (4.8, 1.1, 0.3),
            (5.6, 1.2, 0.5),
        ] {
            let op = OperatingPoint::raw(f, vdd, vbb);
            let fast = solve_thermal(&params(), &env(), &op, &device).expect("fast converges");
            let reference =
                solve_thermal_reference(&params(), &env(), &op, &device).expect("ref converges");
            assert!(
                (fast.t_c - reference.t_c).abs() < 1e-4,
                "fast {} vs reference {}",
                fast.t_c,
                reference.t_c
            );
            assert!((fast.total_w() - reference.total_w()).abs() < 1e-5);
        }
    }

    #[test]
    fn fast_solver_needs_few_iterations() {
        let device = DeviceParams::micro08();
        let op = OperatingPoint::nominal();
        let mut stats = SolveStats::default();
        let sol = solve_thermal_seeded(
            &params(),
            &env(),
            &op,
            &device,
            cold_start_c(&env(), &device),
            &mut stats,
        )
        .expect("solver converges");
        assert!(
            stats.iterations <= 15,
            "cold undamped solve took {} iterations",
            stats.iterations
        );
        assert!(!stats.slow_convergence);

        // Warm start from the converged answer: nearly free.
        let mut warm = SolveStats::default();
        let again =
            solve_thermal_seeded(&params(), &env(), &op, &device, sol.t_c, &mut warm)
                .expect("solver converges");
        assert!(warm.iterations <= 3, "warm solve took {}", warm.iterations);
        assert!((again.t_c - sol.t_c).abs() < 1e-6);
    }

    #[test]
    fn seed_above_the_fixed_point_descends_to_the_same_answer() {
        let device = DeviceParams::micro08();
        let op = OperatingPoint::nominal();
        let cold = solve_thermal(&params(), &env(), &op, &device).expect("solver converges");
        let mut stats = SolveStats::default();
        let from_above = solve_thermal_seeded(
            &params(),
            &env(),
            &op,
            &device,
            cold.t_c + 40.0,
            &mut stats,
        )
        .expect("solver converges");
        assert!((from_above.t_c - cold.t_c).abs() < 1e-6);
    }

    #[test]
    fn higher_vdd_runs_hotter_and_leaks_more() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let boosted = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vdd: eval_units::Volts::raw(1.2),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(boosted.t_c > base.t_c);
        assert!(boosted.psta_w > base.psta_w);
        assert!(boosted.pdyn_w > base.pdyn_w);
    }

    #[test]
    fn forward_bias_increases_leakage() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let fbb = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vbb: eval_units::Volts::raw(0.5),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(fbb.psta_w > base.psta_w);
        assert!(fbb.vt < base.vt);
    }

    #[test]
    fn reverse_bias_cuts_leakage() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let rbb = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vbb: eval_units::Volts::raw(-0.5),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(rbb.psta_w < base.psta_w);
    }

    #[test]
    fn idle_subsystem_sits_near_heat_sink_temperature() {
        let device = DeviceParams::micro08();
        let quiet = ThermalEnvironment {
            th_c: 45.0,
            alpha_f: 0.0,
        };
        let tiny = SubsystemPowerParams {
            kdyn_w: 0.4,
            ksta_nom_w: 0.001,
            rth_c_per_w: 2.0,
            vt0: 0.150,
        };
        let sol = solve_thermal(&tiny, &quiet, &OperatingPoint::nominal(), &device).expect("solver converges");
        assert!(sol.pdyn_w == 0.0);
        assert!(sol.t_c - quiet.th_c < 0.5);
    }

    #[test]
    fn runaway_is_detected_by_both_solvers() {
        let device = DeviceParams::micro08();
        // Huge thermal resistance + strong leakage: diverges.
        let bad = SubsystemPowerParams {
            kdyn_w: 2.0,
            ksta_nom_w: 5.0,
            rth_c_per_w: 80.0,
            vt0: 0.10,
        };
        let tenv = ThermalEnvironment {
            th_c: 70.0,
            alpha_f: 1.0,
        };
        let op = OperatingPoint::raw(5.0, 1.2, 0.5);
        assert!(solve_thermal(&bad, &tenv, &op, &device).is_err());
        assert!(solve_thermal_reference(&bad, &tenv, &op, &device).is_err());
    }

    #[test]
    fn fixed_point_is_stable_across_restarts() {
        // Solving twice gives the same answer (deterministic).
        let device = DeviceParams::micro08();
        let a = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let b = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The returned state always satisfies Equation 6 to solver
        /// tolerance, for any plausible subsystem and operating point.
        #[test]
        fn prop_equation_6_residual(
            kdyn in 0.1f64..1.5,
            ksta in 0.01f64..0.8,
            rth in 0.5f64..9.0,
            vt0 in 0.18f64..0.32,
            th in 40.0f64..70.0,
            alpha in 0.0f64..1.0,
            f in 2.4f64..5.6,
            vdd in 0.8f64..1.2,
            vbb in -0.5f64..0.5,
        ) {
            let device = eval_variation::DeviceParams::micro08();
            let params = SubsystemPowerParams { kdyn_w: kdyn, ksta_nom_w: ksta, rth_c_per_w: rth, vt0 };
            let env = ThermalEnvironment { th_c: th, alpha_f: alpha };
            let op = OperatingPoint::raw(f, vdd, vbb);
            if let Ok(sol) = solve_thermal(&params, &env, &op, &device) {
                let rhs = th + rth * sol.total_w();
                prop_assert!((sol.t_c - rhs).abs() < 1e-3,
                    "residual {} at T={}", (sol.t_c - rhs).abs(), sol.t_c);
                prop_assert!(sol.t_c >= th - 1e-9);
                prop_assert!(sol.pdyn_w >= 0.0 && sol.psta_w >= 0.0);
            }
        }

        /// More activity never cools the subsystem down.
        #[test]
        fn prop_monotone_in_activity(
            alpha_lo in 0.0f64..0.5,
            delta in 0.01f64..0.5,
            vdd in 0.8f64..1.2,
        ) {
            let device = eval_variation::DeviceParams::micro08();
            let params = SubsystemPowerParams {
                kdyn_w: 0.6, ksta_nom_w: 0.3, rth_c_per_w: 6.0, vt0: device.vt_nominal,
            };
            let op = OperatingPoint::raw(4.0, vdd, 0.0);
            let lo = solve_thermal(&params,
                &ThermalEnvironment { th_c: 60.0, alpha_f: alpha_lo }, &op, &device);
            let hi = solve_thermal(&params,
                &ThermalEnvironment { th_c: 60.0, alpha_f: alpha_lo + delta }, &op, &device);
            if let (Ok(lo), Ok(hi)) = (lo, hi) {
                prop_assert!(hi.t_c >= lo.t_c - 1e-6);
                prop_assert!(hi.total_w() >= lo.total_w() - 1e-9);
            }
        }

        /// The production solver lands on the reference solver's answer for
        /// any plausible operating point where both converge.
        #[test]
        fn prop_fast_matches_reference(
            kdyn in 0.1f64..1.5,
            ksta in 0.01f64..0.8,
            rth in 0.5f64..9.0,
            th in 40.0f64..70.0,
            alpha in 0.0f64..1.0,
            f in 2.4f64..5.6,
            vdd in 0.8f64..1.2,
            vbb in -0.5f64..0.5,
        ) {
            let device = eval_variation::DeviceParams::micro08();
            let params = SubsystemPowerParams { kdyn_w: kdyn, ksta_nom_w: ksta, rth_c_per_w: rth, vt0: 0.25 };
            let env = ThermalEnvironment { th_c: th, alpha_f: alpha };
            let op = OperatingPoint::raw(f, vdd, vbb);
            if let (Ok(fast), Ok(reference)) = (
                solve_thermal(&params, &env, &op, &device),
                solve_thermal_reference(&params, &env, &op, &device),
            ) {
                prop_assert!((fast.t_c - reference.t_c).abs() < 1e-4,
                    "fast {} vs reference {}", fast.t_c, reference.t_c);
            }
        }
    }
}
