//! Damped fixed-point solver for the thermal/leakage feedback loop
//! (Equations 6–9).

use std::fmt;

use eval_variation::{leakage_factor, DeviceParams};

use crate::op::OperatingPoint;
use crate::params::{SubsystemPowerParams, ThermalEnvironment};

/// The converged operating state of one subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSolution {
    /// Steady-state subsystem temperature, Celsius.
    pub t_c: f64,
    /// Threshold voltage at that temperature and the applied biases, volts.
    pub vt: f64,
    /// Dynamic power, watts.
    pub pdyn_w: f64,
    /// Static (leakage) power, watts.
    pub psta_w: f64,
}

impl ThermalSolution {
    /// Total subsystem power in watts.
    pub fn total_w(&self) -> f64 {
        self.pdyn_w + self.psta_w
    }
}

/// Error: the leakage/temperature feedback diverged (thermal runaway) or
/// the operating point is electrically invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRunaway {
    /// Temperature reached when the solver gave up, Celsius.
    pub t_c: f64,
}

impl fmt::Display for ThermalRunaway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thermal runaway: temperature diverged past {:.0} C",
            self.t_c
        )
    }
}

impl std::error::Error for ThermalRunaway {}

/// Temperature ceiling beyond which the iteration is declared divergent.
const T_RUNAWAY_C: f64 = 250.0;

/// Solves the feedback system of Equations 6–9 for one subsystem.
///
/// Iterates `T -> Vt(T) -> Psta(T, Vt) -> T` with 0.5 damping until the
/// temperature moves by less than 1e-6 C (typically < 30 iterations).
///
/// # Errors
///
/// Returns [`ThermalRunaway`] if the temperature diverges past 250 C —
/// callers treat such operating points as violating `TMAX` by a wide margin.
pub fn solve_thermal(
    params: &SubsystemPowerParams,
    env: &ThermalEnvironment,
    op: &OperatingPoint,
    device: &DeviceParams,
) -> Result<ThermalSolution, ThermalRunaway> {
    let pdyn = params.pdyn_w(env.alpha_f, op.vdd, op.f);
    let mut t_c = env.th_c.max(device.t_ref_c * 0.5);
    for _ in 0..200 {
        let vt = device.vt_at(params.vt0, t_c, op.vdd.get(), op.vbb.get());
        let psta = params.ksta_nom_w * leakage_factor(device, vt, op.vdd.get(), t_c);
        let t_next = env.th_c + params.rth_c_per_w * (pdyn + psta);
        if t_next > T_RUNAWAY_C || !t_next.is_finite() {
            return Err(ThermalRunaway { t_c: t_next.min(1e6) });
        }
        let t_new = 0.5 * t_c + 0.5 * t_next;
        if (t_new - t_c).abs() < 1e-6 {
            let vt = device.vt_at(params.vt0, t_new, op.vdd.get(), op.vbb.get());
            let psta = params.ksta_nom_w * leakage_factor(device, vt, op.vdd.get(), t_new);
            return Ok(ThermalSolution {
                t_c: t_new,
                vt,
                pdyn_w: pdyn,
                psta_w: psta,
            });
        }
        t_c = t_new;
    }
    // Slow but bounded convergence: accept the last iterate.
    let vt = device.vt_at(params.vt0, t_c, op.vdd.get(), op.vbb.get());
    let psta = params.ksta_nom_w * leakage_factor(device, vt, op.vdd.get(), t_c);
    Ok(ThermalSolution {
        t_c,
        vt,
        pdyn_w: pdyn,
        psta_w: psta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SubsystemPowerParams {
        SubsystemPowerParams {
            kdyn_w: 0.4,
            ksta_nom_w: 0.15,
            rth_c_per_w: 6.0,
            vt0: 0.150,
        }
    }

    fn env() -> ThermalEnvironment {
        ThermalEnvironment {
            th_c: 55.0,
            alpha_f: 0.8,
        }
    }

    #[test]
    fn solution_satisfies_equation_6() {
        let device = DeviceParams::micro08();
        let op = OperatingPoint::nominal();
        let sol = solve_thermal(&params(), &env(), &op, &device).expect("solver converges");
        let rhs = env().th_c + params().rth_c_per_w * sol.total_w();
        assert!(
            (sol.t_c - rhs).abs() < 1e-4,
            "T = {} but TH + Rth*P = {}",
            sol.t_c,
            rhs
        );
    }

    #[test]
    fn higher_vdd_runs_hotter_and_leaks_more() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let boosted = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vdd: eval_units::Volts::raw(1.2),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(boosted.t_c > base.t_c);
        assert!(boosted.psta_w > base.psta_w);
        assert!(boosted.pdyn_w > base.pdyn_w);
    }

    #[test]
    fn forward_bias_increases_leakage() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let fbb = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vbb: eval_units::Volts::raw(0.5),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(fbb.psta_w > base.psta_w);
        assert!(fbb.vt < base.vt);
    }

    #[test]
    fn reverse_bias_cuts_leakage() {
        let device = DeviceParams::micro08();
        let base = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let rbb = solve_thermal(
            &params(),
            &env(),
            &OperatingPoint {
                vbb: eval_units::Volts::raw(-0.5),
                ..OperatingPoint::nominal()
            },
            &device,
        )
        .expect("solver converges");
        assert!(rbb.psta_w < base.psta_w);
    }

    #[test]
    fn idle_subsystem_sits_near_heat_sink_temperature() {
        let device = DeviceParams::micro08();
        let quiet = ThermalEnvironment {
            th_c: 45.0,
            alpha_f: 0.0,
        };
        let tiny = SubsystemPowerParams {
            kdyn_w: 0.4,
            ksta_nom_w: 0.001,
            rth_c_per_w: 2.0,
            vt0: 0.150,
        };
        let sol = solve_thermal(&tiny, &quiet, &OperatingPoint::nominal(), &device).expect("solver converges");
        assert!(sol.pdyn_w == 0.0);
        assert!(sol.t_c - quiet.th_c < 0.5);
    }

    #[test]
    fn runaway_is_detected() {
        let device = DeviceParams::micro08();
        // Huge thermal resistance + strong leakage: diverges.
        let bad = SubsystemPowerParams {
            kdyn_w: 2.0,
            ksta_nom_w: 5.0,
            rth_c_per_w: 80.0,
            vt0: 0.10,
        };
        let res = solve_thermal(
            &bad,
            &ThermalEnvironment {
                th_c: 70.0,
                alpha_f: 1.0,
            },
            &OperatingPoint::raw(5.0, 1.2, 0.5),
            &device,
        );
        assert!(res.is_err());
    }

    #[test]
    fn fixed_point_is_stable_across_restarts() {
        // Solving twice gives the same answer (deterministic).
        let device = DeviceParams::micro08();
        let a = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        let b = solve_thermal(&params(), &env(), &OperatingPoint::nominal(), &device).expect("solver converges");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The returned state always satisfies Equation 6 to solver
        /// tolerance, for any plausible subsystem and operating point.
        #[test]
        fn prop_equation_6_residual(
            kdyn in 0.1f64..1.5,
            ksta in 0.01f64..0.8,
            rth in 0.5f64..9.0,
            vt0 in 0.18f64..0.32,
            th in 40.0f64..70.0,
            alpha in 0.0f64..1.0,
            f in 2.4f64..5.6,
            vdd in 0.8f64..1.2,
            vbb in -0.5f64..0.5,
        ) {
            let device = eval_variation::DeviceParams::micro08();
            let params = SubsystemPowerParams { kdyn_w: kdyn, ksta_nom_w: ksta, rth_c_per_w: rth, vt0 };
            let env = ThermalEnvironment { th_c: th, alpha_f: alpha };
            let op = OperatingPoint::raw(f, vdd, vbb);
            if let Ok(sol) = solve_thermal(&params, &env, &op, &device) {
                let rhs = th + rth * sol.total_w();
                prop_assert!((sol.t_c - rhs).abs() < 1e-3,
                    "residual {} at T={}", (sol.t_c - rhs).abs(), sol.t_c);
                prop_assert!(sol.t_c >= th - 1e-9);
                prop_assert!(sol.pdyn_w >= 0.0 && sol.psta_w >= 0.0);
            }
        }

        /// More activity never cools the subsystem down.
        #[test]
        fn prop_monotone_in_activity(
            alpha_lo in 0.0f64..0.5,
            delta in 0.01f64..0.5,
            vdd in 0.8f64..1.2,
        ) {
            let device = eval_variation::DeviceParams::micro08();
            let params = SubsystemPowerParams {
                kdyn_w: 0.6, ksta_nom_w: 0.3, rth_c_per_w: 6.0, vt0: device.vt_nominal,
            };
            let op = OperatingPoint::raw(4.0, vdd, 0.0);
            let lo = solve_thermal(&params,
                &ThermalEnvironment { th_c: 60.0, alpha_f: alpha_lo }, &op, &device);
            let hi = solve_thermal(&params,
                &ThermalEnvironment { th_c: 60.0, alpha_f: alpha_lo + delta }, &op, &device);
            if let (Ok(lo), Ok(hi)) = (lo, hi) {
                prop_assert!(hi.t_c >= lo.t_c - 1e-6);
                prop_assert!(hi.total_w() >= lo.total_w() - 1e-9);
            }
        }
    }
}
