//! # eval-rng
//!
//! The single source of randomness for the EVAL reproduction: a
//! deterministic, explicitly seeded ChaCha12 stream cipher used as a PRNG.
//!
//! The build environment is offline, so this crate replaces the external
//! `rand`/`rand_chacha` pair with a std-only implementation. Beyond the
//! offline constraint, funnelling every simulation crate through one PRNG
//! is a determinism guarantee the `eval-lint` tool can enforce: there is
//! no `thread_rng()`, no `from_entropy()`, and no OS entropy anywhere in
//! this crate — a [`ChaCha12Rng`] can only be built from an explicit seed,
//! so per-chip Monte-Carlo streams are bit-reproducible by construction
//! (the paper's §5 protocol assumes exactly that).
//!
//! The API mirrors the subset of `rand 0.8` the workspace used
//! (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`) to keep call sites
//! unchanged.
//!
//! ## Example
//!
//! ```
//! use eval_rng::ChaCha12Rng;
//!
//! let mut a = ChaCha12Rng::seed_from_u64(7);
//! let mut b = ChaCha12Rng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..4).map(|_| a.gen::<f64>()).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.gen::<f64>()).collect();
//! assert_eq!(xs, ys); // same seed, same stream — always
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of ChaCha double-rounds; 6 double-rounds = ChaCha12.
const DOUBLE_ROUNDS: usize = 6;

/// A deterministic ChaCha12 pseudo-random generator.
///
/// Construction requires an explicit seed; there is deliberately no
/// entropy-based constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    /// Key + counter + nonce state (the 4x4 ChaCha matrix minus constants).
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

/// SplitMix64 step, used only to expand a 64-bit seed into key material
/// (the same construction `rand`'s `seed_from_u64` uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Builds the generator from a 64-bit seed, expanding it into a
    /// 256-bit ChaCha key with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            if let Some(hi) = pair.get_mut(1) {
                *hi = (w >> 32) as u32;
            }
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    /// Builds the generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    /// Runs the ChaCha12 block function for the current counter.
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.block.iter_mut().zip(s.iter().zip(input.iter())) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Next raw 32-bit output word.
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    /// Next raw 64-bit output word (two 32-bit words, low first).
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; integers: uniform over the full range;
    /// `bool`: fair coin).
    pub fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive; empty
    /// ranges are a caller bug and panic in debug builds via `debug_assert`).
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn uniform_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, bound)` by widening multiply (Lemire-style
    /// without the rejection step; bias is < 2^-32 for the bounds used in
    /// the simulator).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty integer range");
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types samplable from their "standard" distribution via [`ChaCha12Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn sample(rng: &mut ChaCha12Rng) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut ChaCha12Rng) -> Self {
        rng.uniform_f64()
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut ChaCha12Rng) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample(rng: &mut ChaCha12Rng) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut ChaCha12Rng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable via [`ChaCha12Rng::gen_range`].
pub trait RangeSample {
    /// Element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut ChaCha12Rng) -> Self::Output;
}

impl RangeSample for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut ChaCha12Rng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.uniform_f64()
    }
}

impl RangeSample for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut ChaCha12Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.uniform_f64()
    }
}

macro_rules! int_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut ChaCha12Rng) -> $t {
                debug_assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl RangeSample for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut ChaCha12Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

int_range_sample!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        for _ in 0..5_000 {
            let x = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&x));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.gen_range(2.8f64..=3.0);
            assert!((2.8..=3.0).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn block_function_matches_known_structure() {
        // Not a RFC vector (ChaCha12 with our key schedule), but pins the
        // stream so refactors cannot silently change every simulation.
        let mut rng = ChaCha12Rng::from_key([0; 8]);
        let first = rng.next_u32();
        let mut rng2 = ChaCha12Rng::from_key([0; 8]);
        assert_eq!(first, rng2.next_u32());
        assert_ne!(first, rng.next_u32());
    }
}
