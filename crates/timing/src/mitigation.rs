//! Error-mitigation transforms on the path-delay distribution (§3.3).
//!
//! * **Tilt** — the low-slope functional-unit replica: near-critical paths
//!   are optimized, so the distribution's mean drops by 25 % while its
//!   variance doubles (numbers from Augsburger & Nikolic, used by the
//!   paper). Costs 30 % more power and area in that unit.
//! * **Shift** — issue-queue downsizing to 3/4 capacity: shorter bitlines
//!   speed every path up by a constant factor, shifting the `PE(f)` curve
//!   right at no area cost (but at some IPC cost, handled by `eval-uarch`).

use crate::paths::PathDistribution;

/// Mean-delay factor of the low-slope replica (paper: "the mean decreases
/// by 25%").
pub const LOW_SLOPE_MEAN_FACTOR: f64 = 0.75;

/// Variance factor of the low-slope replica (paper: "the variance doubles").
pub const LOW_SLOPE_VARIANCE_FACTOR: f64 = 2.0;

/// Power and area multiplier of the low-slope replica (paper: "consumes 30%
/// more area and power").
pub const LOW_SLOPE_POWER_AREA_FACTOR: f64 = 1.3;

/// Delay factor applied to a downsized (3/4-capacity) SRAM structure:
/// shorter buses to charge speed most paths up.
pub const RESIZE_DELAY_FACTOR: f64 = 0.92;

/// Capacity fraction of the downsized issue queue.
pub const RESIZE_CAPACITY: f64 = 0.75;

/// Side effects of enabling a mitigation technique on a subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationEffect {
    /// Multiplier on the subsystem's dynamic and static power.
    pub power_factor: f64,
    /// Multiplier on the subsystem's area.
    pub area_factor: f64,
}

impl MitigationEffect {
    /// No side effects.
    pub const NONE: MitigationEffect = MitigationEffect {
        power_factor: 1.0,
        area_factor: 1.0,
    };

    /// Side effects of the low-slope replica.
    pub const LOW_SLOPE: MitigationEffect = MitigationEffect {
        power_factor: LOW_SLOPE_POWER_AREA_FACTOR,
        area_factor: LOW_SLOPE_POWER_AREA_FACTOR,
    };
}

/// **Tilt**: the low-slope functional-unit replica's path distribution.
///
/// The mean drops by 25% and the *relative* variance (normalized to the
/// mean) doubles — widening the transistors speeds the whole circuit up,
/// so the absolute spread shrinks with the mean while the shape flattens.
///
/// # Example
///
/// ```
/// use eval_timing::{low_slope, PathDistribution};
/// let normal = PathDistribution::new(0.20, 0.02, 64.0);
/// let ls = low_slope(&normal);
/// assert!(ls.mean_ns() < normal.mean_ns());
/// // Relative spread grows even though the absolute sigma shrank a bit.
/// assert!(ls.sigma_ns() / ls.mean_ns() > normal.sigma_ns() / normal.mean_ns());
/// ```
pub fn low_slope(dist: &PathDistribution) -> PathDistribution {
    PathDistribution::new(
        dist.mean_ns() * LOW_SLOPE_MEAN_FACTOR,
        dist.sigma_ns() * LOW_SLOPE_MEAN_FACTOR * LOW_SLOPE_VARIANCE_FACTOR.sqrt(),
        dist.paths(),
    )
}

/// **Shift**: the downsized SRAM structure's path distribution — every path
/// sped up by [`RESIZE_DELAY_FACTOR`].
pub fn resize_shift(dist: &PathDistribution) -> PathDistribution {
    dist.scaled(RESIZE_DELAY_FACTOR)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PathDistribution {
        PathDistribution::new(0.21, 0.012, 64.0)
    }

    #[test]
    fn low_slope_reduces_pe_slope_but_keeps_tail_contained() {
        // At a period near the original onset, the tilted unit is strictly
        // better because its mean dropped far more than its sigma grew.
        let d = base();
        let ls = low_slope(&d);
        let t = 0.24;
        assert!(ls.pe_at_period(t) <= d.pe_at_period(t));
    }

    #[test]
    fn low_slope_relative_variance_doubles() {
        let d = base();
        let ls = low_slope(&d);
        let rel = |x: &PathDistribution| x.sigma_ns() / x.mean_ns();
        let var_ratio = (rel(&ls) / rel(&d)).powi(2);
        assert!((var_ratio - LOW_SLOPE_VARIANCE_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn low_slope_raises_error_free_frequency() {
        // The replica lets a slow FU cycle faster at the same error budget.
        let d = base();
        let ls = low_slope(&d);
        assert!(ls.max_error_free_frequency(1e-6) > d.max_error_free_frequency(1e-6));
        assert!(ls.max_error_free_frequency(1e-12) > d.max_error_free_frequency(1e-12));
    }

    #[test]
    fn resize_shifts_curve_right() {
        let d = base();
        let r = resize_shift(&d);
        // Same PE is reached at a proportionally shorter period.
        let f_d = d.max_error_free_frequency(1e-10);
        let f_r = r.max_error_free_frequency(1e-10);
        assert!((f_r / f_d - 1.0 / RESIZE_DELAY_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn effects_expose_costs() {
        assert_eq!(MitigationEffect::NONE.power_factor, 1.0);
        assert!((MitigationEffect::LOW_SLOPE.area_factor - 1.3).abs() < 1e-12);
    }
}
