//! # eval-timing
//!
//! VATS-style timing-error modeling for the EVAL reproduction (§2.2 of the
//! MICRO 2008 paper): per-pipeline-stage *dynamic path-delay distributions*,
//! the per-stage error-rate-vs-frequency curve `PE(f)`, and the series-failure
//! composition of an `n`-stage pipeline,
//!
//! ```text
//! PE(f) = sum_i rho_i * PE_i(f)        (errors per instruction)
//! ```
//!
//! Subsystem *kind* determines the onset shape: memory structures have
//! homogeneous critical paths and a sharp error onset; logic has a wide
//! variety of paths and a gradual onset; mixed subsystems fall in between
//! (Figure 8(a) of the paper).
//!
//! The crate also implements the error-*mitigation* transforms of §3.3:
//! **tilt** (low-slope functional-unit replica: path-delay mean −25 %,
//! variance ×2) and **shift** (SRAM downsizing: all paths sped up by a
//! constant factor). **Reshape** (ASV/ABB) enters through the operating
//! conditions passed to [`StageTiming::pe_at`].
//!
//! ## Example
//!
//! ```
//! use eval_timing::{PathClass, SubsystemKind};
//!
//! let logic = PathClass::for_kind(SubsystemKind::Logic);
//! let dist = logic.nominal_distribution(0.25); // 4 GHz -> 250 ps period
//! // Error-free at the nominal period by design:
//! assert!(dist.pe_at_period(0.25) < 1e-9);
//! // Overclocking creates errors:
//! assert!(dist.pe_at_period(0.20) > dist.pe_at_period(0.25));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kind;
pub mod mitigation;
pub mod paths;
pub mod pipeline;
pub mod stage;

pub use kind::{PathClass, SubsystemKind};
pub use mitigation::{
    low_slope, resize_shift, MitigationEffect, LOW_SLOPE_MEAN_FACTOR, LOW_SLOPE_POWER_AREA_FACTOR,
    LOW_SLOPE_VARIANCE_FACTOR, RESIZE_CAPACITY, RESIZE_DELAY_FACTOR,
};
pub use paths::PathDistribution;
pub use pipeline::PipelineErrorModel;
pub use stage::{OperatingConditions, StageTiming};

/// Error-rate threshold (errors/instruction) below which operation is
/// considered error-free; used to locate `fvar`, the variation-safe frequency.
pub const ERROR_FREE_PE: f64 = 1e-12;

/// Static sign-off margin between the worst physical path and the rated
/// clock period (noise, aging, unmodeled corners). A conventionally clocked
/// processor keeps this guardband; a timing-speculative one (with a checker
/// to back it up) can spend it — a large part of why EVAL processors can
/// cycle faster than the no-variation reference.
pub const DESIGN_GUARDBAND: f64 = 0.05;

/// Sign-off error probability (per access) of the *aggressively timed*
/// units — the custom execution datapaths and the issue queues' wakeup/
/// select loops. Timing closure leaves these with the thinnest statistical
/// margins, which is why they are the subsystems that become critical once
/// ASV re-shapes everything else (§6.2), and why EVAL equips exactly them
/// with replicas and resizing.
pub const AGGRESSIVE_DESIGN_PE: f64 = 1e-9;
