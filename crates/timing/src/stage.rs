//! Per-subsystem timing under variation and operating conditions.

use eval_units::{GHz, UnitRangeError, Volts};
use eval_variation::{delay_factor, ChipMap, DeviceParams};

use crate::paths::PathDistribution;
use crate::kind::PathClass;

/// Voltage and temperature conditions applied to one subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingConditions {
    /// Supply voltage (ASV knob).
    pub vdd: Volts,
    /// Body-bias voltage (ABB knob; positive = forward bias).
    pub vbb: Volts,
    /// Subsystem temperature in Celsius.
    pub t_c: f64,
}

impl OperatingConditions {
    /// Nominal conditions: 1 V supply, zero body bias, the reference 100 C.
    pub fn nominal() -> Self {
        Self {
            vdd: Volts::raw(1.0),
            vbb: Volts::raw(0.0),
            t_c: 100.0,
        }
    }

    /// Range-validated constructor: `vdd` must be a legal supply voltage
    /// and `vbb` a legal body bias (see [`eval_units::Volts`]).
    // lint:allow(unit-safety): validating boundary constructor — raw
    // numbers in, range-checked newtypes out.
    pub fn new(vdd: f64, vbb: f64, t_c: f64) -> Result<Self, UnitRangeError> {
        Ok(Self {
            vdd: Volts::vdd(vdd)?,
            vbb: Volts::vbb(vbb)?,
            t_c,
        })
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        Self::nominal()
    }
}

/// One grid cell's process parameters under a subsystem footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellDevice {
    /// Reference threshold voltage (volts, at reference temperature).
    vt0: f64,
    /// Normalized effective channel length.
    leff: f64,
}

/// The timing model of one pipeline stage (subsystem) on a specific chip:
/// a nominal path-delay distribution plus the systematic variation of the
/// grid cells the subsystem's floorplan covers.
///
/// Evaluating `PE` mixes the per-cell delay-scaled distributions: paths are
/// assumed uniformly spread over the footprint, so each cell contributes
/// `paths / n_cells` independent paths scaled by that cell's local
/// process/voltage/temperature delay factor.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    dist: PathDistribution,
    cells: Vec<CellDevice>,
    device: DeviceParams,
}

impl StageTiming {
    /// Builds the stage model from a chip map and a footprint.
    ///
    /// * `class` — nominal path statistics for the subsystem kind.
    /// * `t_nom_ns` — nominal (no-variation) clock period in ns.
    /// * `chip` — the chip's variation maps.
    /// * `cells` — flat grid-cell indices of the subsystem's floorplan.
    /// * `device` — shared device-physics constants.
    /// * `gates_per_path` — logic depth used to average the random
    ///   variation component along a path (VARIUS: random variation of a
    ///   path is the per-gate sigma divided by `sqrt(depth)`).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty, contains out-of-range indices, or
    /// `gates_per_path` is zero.
    pub fn from_chip(
        class: &PathClass,
        t_nom_ns: f64,
        chip: &ChipMap,
        cells: &[usize],
        device: DeviceParams,
        gates_per_path: usize,
    ) -> Self {
        assert!(!cells.is_empty(), "subsystem footprint must be non-empty");
        assert!(gates_per_path > 0, "paths must contain at least one gate");

        // Random component: widen the path distribution by the per-path
        // relative sigma implied by random Vt/Leff variation.
        let dlnt_dvt = device.alpha / (device.vdd_nominal - device.vt_nominal);
        let rel_from_vt = dlnt_dvt * chip.vt_sigma_ran;
        let rel_from_leff = device.leff_exp * chip.leff_sigma_ran / device.leff_nominal;
        let rel_rand =
            (rel_from_vt * rel_from_vt + rel_from_leff * rel_from_leff).sqrt()
                / (gates_per_path as f64).sqrt();

        let dist = class.nominal_distribution(t_nom_ns).widened(rel_rand);
        let cells = cells
            .iter()
            .map(|&c| CellDevice {
                vt0: chip.vt.at(c),
                leff: chip.leff.at(c),
            })
            .collect();
        Self {
            dist,
            cells,
            device,
        }
    }

    /// Builds a stage with explicit per-cell parameters (mainly for tests
    /// and for the no-variation reference processor).
    ///
    /// # Panics
    ///
    /// Panics if `vt0_leff_pairs` is empty.
    pub fn from_parts(
        dist: PathDistribution,
        vt0_leff_pairs: &[(f64, f64)],
        device: DeviceParams,
    ) -> Self {
        assert!(!vt0_leff_pairs.is_empty(), "at least one cell required");
        Self {
            dist,
            cells: vt0_leff_pairs
                .iter()
                .map(|&(vt0, leff)| CellDevice { vt0, leff })
                .collect(),
            device,
        }
    }

    /// The underlying nominal path-delay distribution.
    pub fn distribution(&self) -> PathDistribution {
        self.dist
    }

    /// Replaces the path-delay distribution (used by the tilt/shift
    /// mitigation transforms), keeping the footprint and device physics.
    pub fn with_distribution(&self, dist: PathDistribution) -> Self {
        Self {
            dist,
            cells: self.cells.clone(),
            device: self.device,
        }
    }

    /// Number of grid cells under this subsystem.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Mean reference threshold voltage over the footprint (arithmetic;
    /// see `eval-core`'s tester module for the leakage-based measurement
    /// the manufacturer actually performs, §4.1 of the paper).
    pub fn measured_vt0(&self) -> f64 {
        self.cells.iter().map(|c| c.vt0).sum::<f64>() / self.cells.len() as f64
    }

    /// Per-cell `(Vt0, Leff)` pairs of the footprint, for tester-style
    /// leakage measurements.
    pub fn cell_params(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.cells.iter().map(|c| (c.vt0, c.leff))
    }

    /// Per-cell delay factor (relative to nominal) at `cond`.
    fn cell_factor(&self, cell: &CellDevice, cond: &OperatingConditions) -> f64 {
        let vt = self
            .device
            .vt_at(cell.vt0, cond.t_c, cond.vdd.get(), cond.vbb.get());
        delay_factor(&self.device, vt, cell.leff, cond.vdd.get(), cond.t_c)
    }

    /// The largest per-cell delay factor at `cond` (the slowest spot).
    pub fn worst_cell_factor(&self, cond: &OperatingConditions) -> f64 {
        self.cells
            .iter()
            .map(|c| self.cell_factor(c, cond))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Error probability **per access** at frequency `f` under `cond`.
    ///
    /// # Panics
    ///
    /// Panics if `f <= 0` or if `cond.vdd` does not exceed the local
    /// threshold voltage (an invalid operating point).
    pub fn pe_access(&self, f: GHz, cond: &OperatingConditions) -> f64 {
        assert!(f.get() > 0.0, "frequency must be positive");
        let t = f.period_ns();
        let per_cell_paths = self.dist.paths() / self.cells.len() as f64;
        let mut log_ok = 0.0f64;
        for cell in &self.cells {
            let kappa = self.cell_factor(cell, cond);
            let q = self.dist.scaled(kappa).single_path_miss(t);
            if q >= 1.0 {
                return 1.0;
            }
            log_ok += per_cell_paths * (-q).ln_1p();
        }
        -log_ok.exp_m1()
    }

    /// Budget-aware variant of [`pe_access`] for the hot path: evaluates
    /// the same per-cell product but returns early with `None` as soon as
    /// the accumulated error probability already proves
    /// `scale * pe > cap` (the caller's `rho * PE > budget` test). The
    /// partial product is a lower bound on the final `pe` — each cell only
    /// adds error mass — so an early `None` is never wrong.
    ///
    /// When the access is within budget, the returned `Some(pe)` is
    /// bitwise identical to [`pe_access`]'s value: same cells, same
    /// accumulation order, same arithmetic.
    ///
    /// [`pe_access`]: StageTiming::pe_access
    ///
    /// # Panics
    ///
    /// Panics if `f <= 0` or if `cond.vdd` does not exceed the local
    /// threshold voltage (an invalid operating point).
    pub fn pe_access_bounded(
        &self,
        f: GHz,
        cond: &OperatingConditions,
        scale: f64,
        cap: f64,
    ) -> Option<f64> {
        assert!(f.get() > 0.0, "frequency must be positive");
        let t = f.period_ns();
        let per_cell_paths = self.dist.paths() / self.cells.len() as f64;
        let mut log_ok = 0.0f64;
        for cell in &self.cells {
            let kappa = self.cell_factor(cell, cond);
            let q = self.dist.scaled(kappa).single_path_miss(t);
            if q >= 1.0 {
                // `pe_access` returns 1.0 here; mirror its caller's
                // `scale * 1.0 > cap` comparison exactly.
                return if scale > cap { None } else { Some(1.0) };
            }
            log_ok += per_cell_paths * (-q).ln_1p();
            if scale * (-log_ok.exp_m1()) > cap {
                return None;
            }
        }
        let pe = -log_ok.exp_m1();
        if scale * pe > cap {
            None
        } else {
            Some(pe)
        }
    }

    /// Maximum frequency at which the per-access error probability stays at
    /// or below `pe_threshold`, under `cond`. Solved by bisection; `PE` is
    /// monotone in `f`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pe_threshold < 1`.
    pub fn max_frequency(&self, cond: &OperatingConditions, pe_threshold: f64) -> GHz {
        assert!(
            pe_threshold > 0.0 && pe_threshold < 1.0,
            "threshold must be a probability in (0, 1)"
        );
        let (mut lo, mut hi) = (0.25f64, 40.0f64);
        // Ensure bracketing: at `lo` we expect no errors.
        if self.pe_access(GHz::raw(lo), cond) > pe_threshold {
            return GHz::raw(lo);
        }
        for _ in 0..70 {
            let mid = 0.5 * (lo + hi);
            if self.pe_access(GHz::raw(mid), cond) <= pe_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        GHz::raw(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{PathClass, SubsystemKind};
    use eval_variation::{ChipGrid, VariationModel, VariationParams};

    fn test_stage(kind: SubsystemKind, seed: u64) -> StageTiming {
        let model = VariationModel::new(ChipGrid::square(8), VariationParams::micro08());
        let chip = model.sample_chip(seed);
        let cells: Vec<usize> = (0..8).collect();
        StageTiming::from_chip(
            &PathClass::for_kind(kind),
            0.25,
            &chip,
            &cells,
            DeviceParams::micro08(),
            12,
        )
    }

    #[test]
    fn bounded_pe_matches_unbounded_classification_and_bits() {
        let stage = test_stage(SubsystemKind::Logic, 7);
        let cond = OperatingConditions {
            vdd: Volts::raw(1.0),
            vbb: Volts::raw(0.0),
            t_c: 65.0,
        };
        let (scale, cap) = (0.6, 1e-4);
        for i in 0..33 {
            let f = GHz::raw(2.4 + 0.1 * i as f64);
            let full = stage.pe_access(f, &cond);
            let bounded = stage.pe_access_bounded(f, &cond, scale, cap);
            if scale * full > cap {
                assert!(bounded.is_none(), "f={f:?}: expected early None");
            } else {
                let pe = bounded.expect("within budget");
                assert_eq!(pe.to_bits(), full.to_bits(), "f={f:?}");
            }
        }
    }

    #[test]
    fn variation_lowers_max_frequency_below_nominal_on_average() {
        let mut below = 0;
        let n = 20;
        for seed in 0..n {
            let stage = test_stage(SubsystemKind::Memory, seed);
            let f = stage.max_frequency(&OperatingConditions::nominal(), 1e-12);
            if f.get() < 4.0 {
                below += 1;
            }
        }
        assert!(
            below > n / 2,
            "most chips should lose frequency to variation ({below}/{n})"
        );
    }

    #[test]
    fn pe_monotone_in_frequency_under_variation() {
        let stage = test_stage(SubsystemKind::Mixed, 3);
        let cond = OperatingConditions::nominal();
        let mut prev = 0.0;
        for k in 0..60 {
            let f = GHz::raw(3.0 + 0.05 * k as f64);
            let pe = stage.pe_access(f, &cond);
            assert!(pe >= prev - 1e-18);
            prev = pe;
        }
    }

    #[test]
    fn higher_vdd_raises_max_frequency() {
        let stage = test_stage(SubsystemKind::Logic, 5);
        let base = stage.max_frequency(&OperatingConditions::nominal(), 1e-12);
        let boosted = stage.max_frequency(
            &OperatingConditions {
                vdd: Volts::raw(1.2),
                ..OperatingConditions::nominal()
            },
            1e-12,
        );
        assert!(boosted.get() > base.get(), "boosted={boosted} base={base}");
    }

    #[test]
    fn forward_body_bias_raises_max_frequency() {
        let stage = test_stage(SubsystemKind::Logic, 5);
        let base = stage.max_frequency(&OperatingConditions::nominal(), 1e-12);
        let fbb = stage.max_frequency(
            &OperatingConditions {
                vbb: Volts::raw(0.5),
                ..OperatingConditions::nominal()
            },
            1e-12,
        );
        assert!(fbb.get() > base.get());
    }

    #[test]
    fn cooler_subsystem_is_faster() {
        let stage = test_stage(SubsystemKind::Mixed, 9);
        let hot = stage.max_frequency(
            &OperatingConditions {
                t_c: 100.0,
                ..OperatingConditions::nominal()
            },
            1e-12,
        );
        let cool = stage.max_frequency(
            &OperatingConditions {
                t_c: 60.0,
                ..OperatingConditions::nominal()
            },
            1e-12,
        );
        assert!(cool.get() > hot.get());
    }

    #[test]
    fn memory_onset_is_sharper_than_logic() {
        // Measure the frequency span between PE = 1e-8 and PE = 1e-2 per
        // access; memory should cross it in a narrower relative band.
        let cond = OperatingConditions::nominal();
        let span = |stage: &StageTiming| {
            let f_lo = stage.max_frequency(&cond, 1e-8).get();
            let f_hi = stage.max_frequency(&cond, 1e-2).get();
            (f_hi - f_lo) / f_lo
        };
        let mem = span(&test_stage(SubsystemKind::Memory, 11));
        let logic = span(&test_stage(SubsystemKind::Logic, 11));
        assert!(
            mem < logic,
            "memory span {mem} should be narrower than logic span {logic}"
        );
    }

    #[test]
    fn measured_vt0_tracks_footprint_mean() {
        let stage = test_stage(SubsystemKind::Memory, 2);
        let vt0 = stage.measured_vt0();
        assert!(vt0 > 0.05 && vt0 < 0.30, "vt0={vt0}");
    }
}
