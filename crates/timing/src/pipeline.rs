//! Series-failure composition of an n-stage pipeline (Equation 4).

use eval_units::GHz;

use crate::stage::{OperatingConditions, StageTiming};

/// An `n`-stage pipeline viewed as a series failure system: each stage `i`
/// fails independently with `PE_i(f)` per access and is exercised `rho_i`
/// times by the average instruction, so
/// `PE(f) = sum_i rho_i * PE_i(f)` errors per instruction (Equation 4).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineErrorModel {
    stages: Vec<(f64, StageTiming)>,
}

impl PipelineErrorModel {
    /// Creates the model from `(activity_factor, stage)` pairs, where the
    /// activity factor `rho_i` is the number of accesses per instruction.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or any activity factor is negative.
    pub fn new(stages: Vec<(f64, StageTiming)>) -> Self {
        assert!(!stages.is_empty(), "pipeline must have at least one stage");
        assert!(
            stages.iter().all(|(rho, _)| *rho >= 0.0),
            "activity factors must be non-negative"
        );
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Borrow the stages and their activity factors.
    pub fn stages(&self) -> &[(f64, StageTiming)] {
        &self.stages
    }

    /// Errors **per instruction** at `f` with every stage under the same
    /// conditions.
    pub fn pe_uniform(&self, f: GHz, cond: &OperatingConditions) -> f64 {
        self.stages
            .iter()
            .map(|(rho, s)| rho * s.pe_access(f, cond))
            .sum()
    }

    /// Errors **per instruction** at `f` with per-stage conditions
    /// (fine-grain ASV/ABB: each subsystem has its own `Vdd`, `Vbb`, `T`).
    ///
    /// # Panics
    ///
    /// Panics if `conds.len() != self.len()`.
    pub fn pe_per_stage(&self, f: GHz, conds: &[OperatingConditions]) -> f64 {
        assert_eq!(
            conds.len(),
            self.stages.len(),
            "one condition set per stage"
        );
        self.stages
            .iter()
            .zip(conds)
            .map(|((rho, s), c)| rho * s.pe_access(f, c))
            .sum()
    }

    /// The variation-safe frequency `fvar`: the largest `f` whose error rate
    /// per instruction stays at or below `pe_threshold` with all stages under
    /// `cond`. This is the frequency a `Baseline` (no-error-tolerance)
    /// processor must run at.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pe_threshold < 1`.
    pub fn fvar_uniform(&self, cond: &OperatingConditions, pe_threshold: f64) -> GHz {
        assert!(
            pe_threshold > 0.0 && pe_threshold < 1.0,
            "threshold must be a probability in (0, 1)"
        );
        let (mut lo, mut hi) = (0.25f64, 40.0f64);
        if self.pe_uniform(GHz::raw(lo), cond) > pe_threshold {
            return GHz::raw(lo);
        }
        for _ in 0..70 {
            let mid = 0.5 * (lo + hi);
            if self.pe_uniform(GHz::raw(mid), cond) <= pe_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        GHz::raw(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{PathClass, SubsystemKind};
    use eval_variation::{ChipGrid, DeviceParams, VariationModel, VariationParams};

    fn pipeline(seed: u64) -> PipelineErrorModel {
        let model = VariationModel::new(ChipGrid::square(8), VariationParams::micro08());
        let chip = model.sample_chip(seed);
        let device = DeviceParams::micro08();
        let mk = |kind, cells: std::ops::Range<usize>| {
            StageTiming::from_chip(
                &PathClass::for_kind(kind),
                0.25,
                &chip,
                &cells.collect::<Vec<_>>(),
                device,
                12,
            )
        };
        PipelineErrorModel::new(vec![
            (1.0, mk(SubsystemKind::Memory, 0..8)),
            (0.5, mk(SubsystemKind::Logic, 8..16)),
            (0.3, mk(SubsystemKind::Mixed, 16..24)),
        ])
    }

    #[test]
    fn pipeline_pe_is_sum_of_weighted_stage_pes() {
        let p = pipeline(1);
        let cond = OperatingConditions::nominal();
        let f = GHz::raw(4.4);
        let direct: f64 = p
            .stages()
            .iter()
            .map(|(rho, s)| rho * s.pe_access(f, &cond))
            .sum();
        assert!((p.pe_uniform(f, &cond) - direct).abs() < 1e-15);
    }

    #[test]
    fn fvar_is_below_weakest_stage_threshold() {
        let p = pipeline(2);
        let cond = OperatingConditions::nominal();
        let fvar = p.fvar_uniform(&cond, 1e-12);
        // At fvar the pipeline meets the threshold; 3% above it does not.
        assert!(p.pe_uniform(fvar, &cond) <= 1e-12 * 1.01);
        assert!(p.pe_uniform(GHz::raw(fvar.get() * 1.03), &cond) > 1e-12);
    }

    #[test]
    fn per_stage_conditions_allow_reshaping() {
        let p = pipeline(3);
        let f = GHz::raw(p.fvar_uniform(&OperatingConditions::nominal(), 1e-12).get() * 1.05);
        let nominal = vec![OperatingConditions::nominal(); p.len()];
        let pe_before = p.pe_per_stage(f, &nominal);
        // Boost every stage's supply: errors must not increase.
        let boosted = vec![
            OperatingConditions {
                vdd: eval_units::Volts::raw(1.15),
                ..OperatingConditions::nominal()
            };
            p.len()
        ];
        let pe_after = p.pe_per_stage(f, &boosted);
        assert!(pe_after <= pe_before);
    }

    #[test]
    fn zero_activity_stage_contributes_nothing() {
        let model = VariationModel::new(ChipGrid::square(8), VariationParams::micro08());
        let chip = model.sample_chip(4);
        let device = DeviceParams::micro08();
        let stage = StageTiming::from_chip(
            &PathClass::for_kind(SubsystemKind::Memory),
            0.25,
            &chip,
            &[0, 1, 2],
            device,
            12,
        );
        let p = PipelineErrorModel::new(vec![(0.0, stage)]);
        assert_eq!(p.pe_uniform(GHz::raw(6.0), &OperatingConditions::nominal()), 0.0);
    }
}
