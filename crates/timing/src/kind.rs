//! Subsystem kinds and their nominal path-delay characteristics.

use crate::paths::PathDistribution;

/// The three subsystem types of the EVAL evaluation (Figure 7(b)).
///
/// The type determines the slope of the `PE(f)` curve: "memory subsystems,
/// with their homogeneous paths, have a rapid error onset; logic subsystems
/// have a wide variety of paths and produce a more gradual error onset;
/// mixed subsystems fall between the two extremes" (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubsystemKind {
    /// SRAM-dominated: caches, TLBs, register files, rename maps.
    Memory,
    /// Queues and predictors: CAM + logic.
    Mixed,
    /// Pure combinational logic: ALUs, FP units, decode.
    Logic,
}

impl SubsystemKind {
    /// All kinds, in display order.
    pub const ALL: [SubsystemKind; 3] = [
        SubsystemKind::Memory,
        SubsystemKind::Mixed,
        SubsystemKind::Logic,
    ];

    /// Short lowercase label ("memory", "mixed", "logic").
    pub fn label(&self) -> &'static str {
        match self {
            SubsystemKind::Memory => "memory",
            SubsystemKind::Mixed => "mixed",
            SubsystemKind::Logic => "logic",
        }
    }
}

impl std::fmt::Display for SubsystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Nominal (design-time, no-variation) path-delay statistics of a stage.
///
/// The stage is designed so that, at nominal process/voltage/temperature,
/// its error rate at the nominal clock period equals the design sign-off
/// target (`design_pe`, essentially error-free). Given the relative path
/// spread `sigma_rel` and the effective number of independent critical
/// paths `paths`, this pins the distribution mean below the period by the
/// required number of sigmas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathClass {
    /// Path-delay standard deviation relative to the mean.
    pub sigma_rel: f64,
    /// Effective number of independently failing critical paths per access.
    pub paths: f64,
    /// Sign-off error probability per access at the nominal period.
    pub design_pe: f64,
    /// Devices that dominate a path's delay: random per-transistor
    /// variation averages down by `sqrt(gates_per_path)`. SRAM read paths
    /// are dominated by the cell pair and sense amp (~2); logic paths by a
    /// dozen gates.
    pub gates_per_path: usize,
}

impl PathClass {
    /// Canonical path statistics for a subsystem kind.
    ///
    /// Memory: many near-identical paths (narrow spread, sharp onset).
    /// Logic: few highly optimized critical paths over a wide delay range.
    pub fn for_kind(kind: SubsystemKind) -> Self {
        match kind {
            SubsystemKind::Memory => Self {
                sigma_rel: 0.02,
                paths: 4096.0,
                design_pe: 1e-13,
                gates_per_path: 2,
            },
            SubsystemKind::Mixed => Self {
                sigma_rel: 0.05,
                paths: 256.0,
                design_pe: 1e-13,
                gates_per_path: 6,
            },
            SubsystemKind::Logic => Self {
                sigma_rel: 0.11,
                paths: 64.0,
                design_pe: 1e-13,
                gates_per_path: 12,
            },
        }
    }

    /// Design margin in sigmas: the `z` such that
    /// `paths * Q(z) = design_pe`.
    pub fn design_margin_sigmas(&self) -> f64 {
        let per_path = self.design_pe / self.paths;
        eval_variation::inverse_normal_tail(per_path)
    }

    /// The nominal path-delay distribution for a stage clocked at
    /// `t_nom_ns` (in nanoseconds): the stage signs off error-free at that
    /// period *with the design guardband intact* — its physical worst path
    /// sits at `t_nom / (1 + DESIGN_GUARDBAND)`. Conventionally clocked
    /// processors (Baseline, NoVar) keep that margin against noise, aging
    /// and unmodeled corners; timing-speculative environments spend it.
    ///
    /// # Panics
    ///
    /// Panics if `t_nom_ns` is not positive.
    pub fn nominal_distribution(&self, t_nom_ns: f64) -> PathDistribution {
        assert!(t_nom_ns > 0.0, "nominal period must be positive");
        let z = self.design_margin_sigmas();
        let physical_max = t_nom_ns / (1.0 + crate::DESIGN_GUARDBAND);
        let mean = physical_max / (1.0 + z * self.sigma_rel);
        PathDistribution::new(mean, mean * self.sigma_rel, self.paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_margin_grows_with_path_count() {
        let mem = PathClass::for_kind(SubsystemKind::Memory);
        let logic = PathClass::for_kind(SubsystemKind::Logic);
        assert!(mem.design_margin_sigmas() > logic.design_margin_sigmas());
        // Both are deep sign-off margins.
        assert!(logic.design_margin_sigmas() > 6.0);
    }

    #[test]
    fn nominal_distribution_signs_off_error_free() {
        for kind in SubsystemKind::ALL {
            let class = PathClass::for_kind(kind);
            let d = class.nominal_distribution(0.25);
            let pe = d.pe_at_period(0.25);
            assert!(
                pe < 10.0 * class.design_pe,
                "{kind}: PE at nominal period = {pe}"
            );
        }
    }

    #[test]
    fn memory_mean_is_closer_to_period_than_logic() {
        // Narrow memory distributions sit close under the period; wide logic
        // distributions need more headroom.
        let mem = PathClass::for_kind(SubsystemKind::Memory).nominal_distribution(0.25);
        let logic = PathClass::for_kind(SubsystemKind::Logic).nominal_distribution(0.25);
        assert!(mem.mean_ns() > logic.mean_ns());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SubsystemKind::Memory.to_string(), "memory");
        assert_eq!(SubsystemKind::Mixed.label(), "mixed");
        assert_eq!(SubsystemKind::Logic.label(), "logic");
    }
}
