//! Dynamic path-delay distributions and their error probabilities.

use eval_units::GHz;
use eval_variation::normal_tail;

/// A Gaussian dynamic path-delay distribution for one pipeline stage
/// (Figure 1(a)/(b) of the paper), together with the effective number of
/// independently failing critical paths per access.
///
/// `PE` per access at clock period `t` is
/// `1 - (1 - Q((t - mean)/sigma))^paths`, i.e. the probability that at least
/// one exercised path misses the cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathDistribution {
    mean_ns: f64,
    sigma_ns: f64,
    paths: f64,
}

impl PathDistribution {
    /// Creates a distribution with the given mean and standard deviation in
    /// nanoseconds and `paths` independent critical paths.
    ///
    /// # Panics
    ///
    /// Panics if `mean_ns <= 0`, `sigma_ns <= 0`, or `paths < 1`.
    pub fn new(mean_ns: f64, sigma_ns: f64, paths: f64) -> Self {
        assert!(mean_ns > 0.0, "path-delay mean must be positive");
        assert!(sigma_ns > 0.0, "path-delay sigma must be positive");
        assert!(paths >= 1.0, "at least one critical path required");
        Self {
            mean_ns,
            sigma_ns,
            paths,
        }
    }

    /// Mean path delay in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }

    /// Path-delay standard deviation in nanoseconds.
    pub fn sigma_ns(&self) -> f64 {
        self.sigma_ns
    }

    /// Effective number of independent critical paths per access.
    pub fn paths(&self) -> f64 {
        self.paths
    }

    /// Returns a copy with all path delays scaled by `factor`
    /// (process/voltage/temperature slowdown or speedup).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "delay scale factor must be positive");
        Self {
            mean_ns: self.mean_ns * factor,
            sigma_ns: self.sigma_ns * factor,
            paths: self.paths,
        }
    }

    /// Returns a copy with extra *relative* Gaussian spread added in
    /// quadrature (used for the random variation component, which widens
    /// each path's delay without moving the mean).
    ///
    /// # Panics
    ///
    /// Panics if `extra_rel_sigma < 0`.
    pub fn widened(&self, extra_rel_sigma: f64) -> Self {
        assert!(extra_rel_sigma >= 0.0, "extra sigma must be non-negative");
        let extra = self.mean_ns * extra_rel_sigma;
        Self {
            mean_ns: self.mean_ns,
            sigma_ns: (self.sigma_ns * self.sigma_ns + extra * extra).sqrt(),
            paths: self.paths,
        }
    }

    /// Probability that a single path misses period `t_ns`.
    pub fn single_path_miss(&self, t_ns: f64) -> f64 {
        normal_tail((t_ns - self.mean_ns) / self.sigma_ns)
    }

    /// Error probability per access at clock period `t_ns`:
    /// at least one of the `paths` exercised paths misses the cycle.
    ///
    /// # Example
    ///
    /// ```
    /// use eval_timing::PathDistribution;
    /// let d = PathDistribution::new(0.20, 0.01, 64.0);
    /// // Clocked with lots of slack: error-free.
    /// assert!(d.pe_at_period(0.30) < 1e-12);
    /// // Clocked at the mean: half the paths miss, PE saturates at 1.
    /// assert!(d.pe_at_period(0.20) > 0.999);
    /// ```
    pub fn pe_at_period(&self, t_ns: f64) -> f64 {
        let q = self.single_path_miss(t_ns);
        if q <= 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return 1.0;
        }
        // 1 - (1-q)^n computed stably for tiny q.
        -(self.paths * (-q).ln_1p()).exp_m1()
    }

    /// Error probability per access at frequency `f`.
    pub fn pe_at_frequency(&self, f: GHz) -> f64 {
        self.pe_at_period(f.period_ns())
    }

    /// Maximum error-free frequency in GHz: the largest `f` whose per-access
    /// error probability stays at or below `pe_threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pe_threshold < 1`.
    pub fn max_error_free_frequency(&self, pe_threshold: f64) -> f64 {
        assert!(
            pe_threshold > 0.0 && pe_threshold < 1.0,
            "threshold must be a probability in (0, 1)"
        );
        // Invert: q = pe_threshold/paths (small-q regime), then
        // t = mean + sigma * Q^{-1}(q)  =>  f = 1/t.
        let per_path = -(-pe_threshold).ln_1p() / self.paths;
        let per_path = per_path.clamp(1e-300, 0.999_999);
        let z = eval_variation::inverse_normal_tail(per_path);
        1.0 / (self.mean_ns + self.sigma_ns * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pe_is_monotone_in_frequency() {
        let d = PathDistribution::new(0.21, 0.012, 256.0);
        let mut prev = 0.0;
        for k in 0..100 {
            let f = 3.0 + k as f64 * 0.05;
            let pe = d.pe_at_frequency(GHz::raw(f));
            assert!(pe >= prev - 1e-18, "PE decreased at f={f}");
            prev = pe;
        }
    }

    #[test]
    fn more_paths_means_more_errors() {
        let few = PathDistribution::new(0.21, 0.012, 16.0);
        let many = PathDistribution::new(0.21, 0.012, 1024.0);
        assert!(many.pe_at_period(0.24) > few.pe_at_period(0.24));
    }

    #[test]
    fn scaled_shifts_onset() {
        let d = PathDistribution::new(0.20, 0.01, 64.0);
        let slow = d.scaled(1.1);
        assert!(slow.pe_at_period(0.24) > d.pe_at_period(0.24));
        let fast = d.scaled(0.9);
        assert!(fast.pe_at_period(0.24) < d.pe_at_period(0.24));
    }

    #[test]
    fn widened_increases_tail_errors() {
        let d = PathDistribution::new(0.20, 0.01, 64.0);
        let wide = d.widened(0.05);
        assert!(wide.sigma_ns() > d.sigma_ns());
        assert!(wide.pe_at_period(0.26) > d.pe_at_period(0.26));
    }

    #[test]
    fn max_error_free_frequency_is_consistent() {
        let d = PathDistribution::new(0.20, 0.01, 256.0);
        let f = d.max_error_free_frequency(1e-12);
        let pe_at = d.pe_at_frequency(GHz::raw(f));
        let pe_above = d.pe_at_frequency(GHz::raw(f * 1.02));
        assert!(pe_at <= 1e-11, "PE at threshold frequency = {pe_at}");
        assert!(pe_above > pe_at);
    }

    proptest! {
        #[test]
        fn prop_pe_in_unit_interval(
            mean in 0.05f64..1.0,
            sigma_rel in 0.005f64..0.3,
            paths in 1.0f64..1e5,
            t in 0.01f64..2.0,
        ) {
            let d = PathDistribution::new(mean, mean * sigma_rel, paths);
            let pe = d.pe_at_period(t);
            prop_assert!((0.0..=1.0).contains(&pe));
        }

        #[test]
        fn prop_scaling_commutes_with_period(
            mean in 0.1f64..0.5,
            sigma_rel in 0.01f64..0.2,
            factor in 0.5f64..2.0,
            t in 0.1f64..1.0,
        ) {
            // Scaling delays by k and evaluating at t equals evaluating the
            // original at t/k.
            let d = PathDistribution::new(mean, mean * sigma_rel, 128.0);
            let a = d.scaled(factor).pe_at_period(t);
            let b = d.pe_at_period(t / factor);
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.max(b)));
        }
    }
}
