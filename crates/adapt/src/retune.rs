//! Retuning cycles (§4.3.3): sensor-driven frequency correction after the
//! controller picks a configuration, and the five outcomes of Figure 13.

use eval_trace::{names, Event, Tracer};
use eval_units::GHz;

use eval_core::{
    CoreEvaluation, CoreModel, EvalConfig, VariantSelection, FREQ_LADDER, N_SUBSYSTEMS,
};

/// What happened after the controller's configuration was deployed
/// (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// No constraint violated and the first attempt at increasing `f`
    /// failed — the controller's output was near optimal.
    NoChange,
    /// No constraint violated but retuning could raise `f` further.
    LowFreq,
    /// The configuration violated `PEMAX`; `f` had to come down.
    Error,
    /// The configuration violated `TMAX`.
    Temp,
    /// The configuration violated `PMAX`.
    Power,
}

impl Outcome {
    /// All outcomes in Figure 13's legend order.
    pub const ALL: [Outcome; 5] = [
        Outcome::NoChange,
        Outcome::LowFreq,
        Outcome::Error,
        Outcome::Temp,
        Outcome::Power,
    ];

    /// Position of this outcome in [`Outcome::ALL`] (histogram slot).
    pub const fn index(self) -> usize {
        match self {
            Outcome::NoChange => 0,
            Outcome::LowFreq => 1,
            Outcome::Error => 2,
            Outcome::Temp => 3,
            Outcome::Power => 4,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::NoChange => "NoChange",
            Outcome::LowFreq => "LowFreq",
            Outcome::Error => "Error",
            Outcome::Temp => "Temp",
            Outcome::Power => "Power",
        }
    }
}

/// One frequency the retuning loop probed, with its direction and (if
/// rejected) the violated constraint. Recorded only when tracing is
/// enabled — [`RetuneResult::probes`] stays empty on the untraced path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetuneProbe {
    /// `initial`, `down`, or `up`.
    pub direction: &'static str,
    /// The probed frequency.
    pub f_ghz: f64,
    /// The violated constraint, when the probe was rejected.
    pub violation: Option<Outcome>,
}

/// The result of the retuning cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneResult {
    /// The final, violation-free core frequency.
    pub f_ghz: f64,
    /// How the initial configuration fared.
    pub outcome: Outcome,
    /// Frequency steps moved during retuning (for overhead accounting).
    pub steps: u32,
    /// Evaluation of the final configuration.
    pub evaluation: CoreEvaluation,
    /// The probe history (empty unless tracing is enabled).
    pub probes: Vec<RetuneProbe>,
}

/// Which constraint (if any) an evaluation violates, in the order sensors
/// report them in the paper: error-rate overruns are seen soonest, thermal
/// and power violations within a thermal time constant.
fn violation(config: &EvalConfig, eval: &CoreEvaluation) -> Option<Outcome> {
    if eval.pe_per_instruction > config.constraints.pe_max {
        Some(Outcome::Error)
    } else if eval.max_t_c > config.constraints.t_max_c {
        Some(Outcome::Temp)
    } else if eval.total_power_w > config.constraints.p_max_w {
        Some(Outcome::Power)
    } else {
        None
    }
}

/// One probed operating point, classified. Binding the evaluation into the
/// variant (instead of checking a separate `Option`) is what lets the
/// retuning loops below stay free of `unwrap`/`expect`.
enum Checked {
    /// Feasible and violation-free.
    Clean(CoreEvaluation),
    /// Feasible but violating a constraint.
    Violating(Outcome, CoreEvaluation),
    /// Thermal runaway (counts as a `Temp` violation).
    Runaway,
}

fn evaluate(
    config: &EvalConfig,
    plan: &eval_core::CoreEvalPlan<'_>,
    th_c: f64,
    f_ghz: f64,
    settings: &[(f64, f64)],
    alpha: &[f64; N_SUBSYSTEMS],
    rho: &[f64; N_SUBSYSTEMS],
) -> Option<CoreEvaluation> {
    plan.evaluate(config, th_c, GHz::raw(f_ghz), settings, alpha, rho)
        .ok()
}

/// Runs the retuning cycles on a chosen configuration.
///
/// If the configuration violates a constraint, `f` is decreased
/// exponentially — "first by 1 100 MHz step, then by 2 steps, 4, and 8
/// without running the controller — until the configuration causes no
/// violation"; then `f` ramps up in single steps to just below the first
/// violating frequency. If the configuration is clean, a single +1-step
/// probe distinguishes `NoChange` from `LowFreq`.
///
/// A thermally infeasible (runaway) point counts as a `Temp` violation.
#[allow(clippy::too_many_arguments)]
pub fn retune(
    config: &EvalConfig,
    core: &CoreModel,
    th_c: f64,
    f0_ghz: f64,
    settings: &[(f64, f64)],
    alpha: &[f64; N_SUBSYSTEMS],
    rho: &[f64; N_SUBSYSTEMS],
    variants: &VariantSelection,
) -> RetuneResult {
    retune_traced(
        config,
        core,
        th_c,
        f0_ghz,
        settings,
        alpha,
        rho,
        variants,
        Tracer::noop(),
    )
}

/// [`retune`] with per-probe observability: when the tracer is enabled,
/// every frequency the loop checks is recorded in
/// [`RetuneResult::probes`] and emitted as a
/// [`RetuneStep`](Event::RetuneStep) event. The untraced path is
/// bit-identical to [`retune`] and allocates nothing extra.
#[allow(clippy::too_many_arguments)]
pub fn retune_traced(
    config: &EvalConfig,
    core: &CoreModel,
    th_c: f64,
    f0_ghz: f64,
    settings: &[(f64, f64)],
    alpha: &[f64; N_SUBSYSTEMS],
    rho: &[f64; N_SUBSYSTEMS],
    variants: &VariantSelection,
    tracer: Tracer<'_>,
) -> RetuneResult {
    let mut probes: Vec<RetuneProbe> = Vec::new();
    // Variant-selected params/timing are invariant across the probe loop;
    // resolve them once instead of once per probed frequency.
    let plan = core.evaluation_plan(variants);
    let check = |f: f64, direction: &'static str, probes: &mut Vec<RetuneProbe>| -> Checked {
        let state = match evaluate(config, &plan, th_c, f, settings, alpha, rho) {
            Some(e) => match violation(config, &e) {
                None => Checked::Clean(e),
                Some(v) => Checked::Violating(v, e),
            },
            None => Checked::Runaway,
        };
        if tracer.enabled() {
            let probe_violation = match &state {
                Checked::Clean(_) => None,
                Checked::Violating(v, _) => Some(*v),
                Checked::Runaway => Some(Outcome::Temp),
            };
            probes.push(RetuneProbe {
                direction,
                f_ghz: f,
                violation: probe_violation,
            });
            tracer.count(names::RETUNE_PROBES);
            tracer.event(|| Event::RetuneStep {
                direction,
                f_ghz: f,
                violation: probe_violation.map(|v| v.label()),
            });
        }
        state
    };

    let mut steps = 0u32;
    match check(f0_ghz, "initial", &mut probes) {
        Checked::Clean(mut eval) => {
            // Clean: probe upward.
            let mut f = f0_ghz;
            let mut raised = false;
            loop {
                let next = FREQ_LADDER.step_by(f, 1);
                if next <= f {
                    break; // already at the top of the ladder
                }
                match check(next, "up", &mut probes) {
                    Checked::Clean(e) => {
                        f = next;
                        eval = e;
                        raised = true;
                        steps += 1;
                    }
                    _ => break,
                }
            }
            RetuneResult {
                f_ghz: f,
                outcome: if raised {
                    Outcome::LowFreq
                } else {
                    Outcome::NoChange
                },
                steps,
                evaluation: eval,
                probes,
            }
        }
        first => {
            let initial_violation = match &first {
                Checked::Violating(v, _) => *v,
                _ => Outcome::Temp,
            };
            // Exponential back-off: 1, 2, 4, 8, 8, ... steps.
            let mut f = f0_ghz;
            let mut back = 1i64;
            let eval = loop {
                let next = FREQ_LADDER.step_by(f, -back);
                steps += back.unsigned_abs() as u32;
                f = next;
                match check(f, "down", &mut probes) {
                    Checked::Clean(e) => break e,
                    state if f <= FREQ_LADDER.min + 1e-9 => {
                        // Even the ladder floor violates with these settings;
                        // report the floor — the next controller invocation
                        // will pick different voltages.
                        return RetuneResult {
                            f_ghz: f,
                            outcome: initial_violation,
                            steps,
                            evaluation: floor_evaluation(
                                state, config, &plan, th_c, settings, alpha, rho,
                            ),
                            probes,
                        };
                    }
                    _ => {}
                }
                back = (back * 2).min(8);
            };
            // Ramp back up in single steps to just below the violation.
            let mut best = eval;
            loop {
                let next = FREQ_LADDER.step_by(f, 1);
                if next <= f || next >= f0_ghz {
                    break;
                }
                match check(next, "up", &mut probes) {
                    Checked::Clean(e) => {
                        f = next;
                        best = e;
                        steps += 1;
                    }
                    _ => break,
                }
            }
            RetuneResult {
                f_ghz: f,
                outcome: initial_violation,
                steps,
                evaluation: best,
                probes,
            }
        }
    }
}

/// The evaluation reported when retuning bottoms out at the ladder floor:
/// the floor point itself if it at least converged, otherwise a probe at
/// the floor with nominal voltages so callers still get numbers.
#[allow(clippy::too_many_arguments)]
fn floor_evaluation(
    state: Checked,
    config: &EvalConfig,
    plan: &eval_core::CoreEvalPlan<'_>,
    th_c: f64,
    settings: &[(f64, f64)],
    alpha: &[f64; N_SUBSYSTEMS],
    rho: &[f64; N_SUBSYSTEMS],
) -> CoreEvaluation {
    match state {
        Checked::Clean(e) | Checked::Violating(_, e) => e,
        Checked::Runaway => {
            let floor_settings: Vec<(f64, f64)> = settings.iter().map(|_| (1.0, 0.0)).collect();
            evaluate(
                config,
                plan,
                th_c,
                FREQ_LADDER.min,
                &floor_settings,
                alpha,
                rho,
            )
            // lint:allow(panic-safety): the 2.4 GHz floor at nominal
            // voltages converges for every chip the variation model can
            // produce; a runaway here means the thermal model itself broke.
            .expect("nominal floor operating point is feasible")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval_core::{ChipFactory, EvalConfig};
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    fn run(f0: f64, vdd: f64) -> RetuneResult {
        let cfg = factory().config().clone();
        let chip = factory().chip(6);
        let settings = vec![(vdd, 0.0); N_SUBSYSTEMS];
        retune(
            &cfg,
            chip.core(0),
            cfg.th_c,
            f0,
            &settings,
            &[0.5; N_SUBSYSTEMS],
            &[0.5; N_SUBSYSTEMS],
            &VariantSelection::default(),
        )
    }

    #[test]
    fn overclocked_start_is_flagged_and_corrected() {
        // 5.6 GHz at nominal voltage is far past the error onset.
        let r = run(5.6, 1.0);
        assert_eq!(r.outcome, Outcome::Error);
        assert!(r.f_ghz < 5.6);
        let cfg = factory().config().clone();
        assert!(r.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
    }

    #[test]
    fn underclocked_start_ramps_up() {
        let r = run(2.4, 1.0);
        assert_eq!(r.outcome, Outcome::LowFreq);
        assert!(r.f_ghz > 2.4);
    }

    #[test]
    fn final_state_never_violates() {
        let cfg = factory().config().clone();
        for f0 in [2.4, 3.2, 4.0, 4.8, 5.6] {
            let r = run(f0, 1.1);
            assert!(r.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
            assert!(r.evaluation.max_t_c <= cfg.constraints.t_max_c);
            assert!(r.evaluation.total_power_w <= cfg.constraints.p_max_w);
        }
    }

    #[test]
    fn near_optimal_start_is_nochange() {
        // Find the equilibrium, then restart there: must be NoChange.
        let r1 = run(4.0, 1.0);
        let r2 = run(r1.f_ghz, 1.0);
        assert_eq!(r2.outcome, Outcome::NoChange);
        assert!((r2.f_ghz - r1.f_ghz).abs() < 1e-9);
    }

    #[test]
    fn untraced_probes_are_empty_traced_probes_match_events() {
        let cfg = factory().config().clone();
        let chip = factory().chip(6);
        let settings = vec![(1.0, 0.0); N_SUBSYSTEMS];
        let plain = retune(
            &cfg,
            chip.core(0),
            cfg.th_c,
            5.6,
            &settings,
            &[0.5; N_SUBSYSTEMS],
            &[0.5; N_SUBSYSTEMS],
            &VariantSelection::default(),
        );
        assert!(plain.probes.is_empty());

        let collector = eval_trace::Collector::new();
        let traced = retune_traced(
            &cfg,
            chip.core(0),
            cfg.th_c,
            5.6,
            &settings,
            &[0.5; N_SUBSYSTEMS],
            &[0.5; N_SUBSYSTEMS],
            &VariantSelection::default(),
            eval_trace::Tracer::new(&collector),
        );
        // Same numeric result either way.
        assert_eq!(plain.f_ghz, traced.f_ghz);
        assert_eq!(plain.outcome, traced.outcome);
        assert_eq!(plain.steps, traced.steps);
        // Probe history starts with the rejected initial point and has one
        // RetuneStep event per probe.
        assert!(!traced.probes.is_empty());
        assert_eq!(traced.probes[0].direction, "initial");
        assert_eq!(traced.probes[0].violation, Some(Outcome::Error));
        assert_eq!(collector.events().len(), traced.probes.len());
        assert_eq!(
            collector.registry().counter("retune.probes"),
            traced.probes.len() as u64
        );
    }

    #[test]
    fn retuning_is_monotone_in_start_frequency() {
        // Wherever it starts, retuning converges to the same ceiling
        // (within one step, because the ramp stops below f0).
        let lo = run(2.4, 1.0);
        let hi = run(5.6, 1.0);
        assert!((lo.f_ghz - hi.f_ghz).abs() <= FREQ_LADDER.step + 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use eval_core::{ChipFactory, FuChoice, QueueChoice};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn factory() -> &'static ChipFactory {
        static F: OnceLock<ChipFactory> = OnceLock::new();
        F.get_or_init(|| ChipFactory::new(EvalConfig::micro08()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Whatever the starting frequency, voltages and variants, retuning
        /// ends on the ladder and (except at the unreachable ladder floor)
        /// in a state that satisfies every constraint.
        #[test]
        fn prop_retune_ends_clean_and_on_ladder(
            f_idx in 0usize..33,
            vdd_idx in 0usize..9,
            alpha in 0.05f64..0.9,
            lowslope in proptest::bool::ANY,
            small_q in proptest::bool::ANY,
        ) {
            let cfg = factory().config().clone();
            let chip = factory().chip(17);
            let f0 = FREQ_LADDER.at(f_idx);
            let vdd = eval_core::VDD_LADDER.at(vdd_idx);
            let settings = vec![(vdd, 0.0); N_SUBSYSTEMS];
            let variants = VariantSelection {
                int_fu: if lowslope { FuChoice::LowSlope } else { FuChoice::Normal },
                int_queue: if small_q { QueueChoice::Small } else { QueueChoice::Full },
                ..VariantSelection::default()
            };
            let r = retune(
                &cfg, chip.core(0), cfg.th_c, f0, &settings,
                &[alpha; N_SUBSYSTEMS], &[alpha; N_SUBSYSTEMS], &variants,
            );
            prop_assert!(FREQ_LADDER.contains(r.f_ghz), "off-ladder {}", r.f_ghz);
            if r.f_ghz > FREQ_LADDER.min + 1e-9 {
                prop_assert!(r.evaluation.pe_per_instruction <= cfg.constraints.pe_max);
                prop_assert!(r.evaluation.max_t_c <= cfg.constraints.t_max_c);
                prop_assert!(r.evaluation.total_power_w <= cfg.constraints.p_max_w);
            }
        }
    }
}
