//! Structure-choice rules (§4.2): which FU replica and which issue-queue
//! size to enable for the current phase.

use eval_core::PerfModel;

/// FU-replication decision (Figure 4).
///
/// Given the subsystem's maximum frequency with the normal FU
/// (`f_normal`), with the low-slope FU (`f_low_slope`), and the minimum
/// `f_max` of all *other* subsystems (`min_rest`): if the normal FU would
/// limit the core (`f_normal < min_rest`, cases (i) and (ii)), enable the
/// low-slope replica to maximize frequency; otherwise (case (iii)) keep
/// the normal one to save power.
///
/// Returns `true` when the low-slope replica should be enabled.
///
/// # Example
///
/// ```
/// use eval_adapt::choose_fu;
/// assert!(choose_fu(3.4, 4.0, 3.8));  // FU critical: replicate
/// assert!(!choose_fu(4.2, 4.6, 3.8)); // others limit anyway: save power
/// ```
pub fn choose_fu(f_normal: f64, f_low_slope: f64, min_rest: f64) -> bool {
    debug_assert!(f_low_slope + 1e-12 >= f_normal, "replica should not be slower");
    // Only worth paying the replica's power if it actually buys frequency
    // (on a temperature-limited FU the +30% power can erase the timing
    // gain, making both f_max values equal).
    f_normal < min_rest && f_low_slope > f_normal
}

/// Issue-queue sizing decision (§4.2).
///
/// The two queue sizes induce different core frequencies (`f_core_full`
/// vs `f_core_small`, each the min over all subsystem `f_max` under that
/// configuration) *and* different computation CPIs (measured by counters
/// at phase start). The queue size with the higher estimated Equation-5
/// performance wins.
///
/// `perf_full`/`perf_small` carry the phase's `CPIcomp` for each sizing
/// (plus the shared `mr`, `mp`, `rp`). Returns `true` when the 3/4-size
/// queue should be enabled.
pub fn choose_queue(
    perf_full: &PerfModel,
    f_core_full: f64,
    perf_small: &PerfModel,
    f_core_small: f64,
) -> bool {
    // Estimated at the candidate core frequencies with the error rate at
    // its budgeted ceiling contribution already folded into retuning; here
    // the comparison uses the error-free estimate, as the controller does.
    let full = perf_full.perf(f_core_full, 0.0);
    let small = perf_small.perf(f_core_small, 0.0);
    small > full
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_cases_match_figure_4() {
        // (i) f_normal < f_lowslope < min_rest -> enable low slope.
        assert!(choose_fu(3.0, 3.4, 3.8));
        // (ii) f_normal < min_rest < f_lowslope -> enable low slope.
        assert!(choose_fu(3.0, 4.2, 3.8));
        // (iii) min_rest < f_normal -> normal saves power.
        assert!(!choose_fu(4.0, 4.4, 3.8));
    }

    #[test]
    fn queue_downsizes_when_frequency_gain_beats_cpi_loss() {
        // Full: CPI 1.00 at 3.6 GHz; small: CPI 1.03 at 4.0 GHz -> small.
        let full = PerfModel::new(1.00, 0.002, 52.0, 21.0);
        let small = PerfModel::new(1.03, 0.002, 52.0, 21.0);
        assert!(choose_queue(&full, 3.6, &small, 4.0));
    }

    #[test]
    fn queue_stays_full_when_not_critical() {
        // Same frequency either way: CPI loss decides.
        let full = PerfModel::new(1.00, 0.002, 52.0, 21.0);
        let small = PerfModel::new(1.05, 0.002, 52.0, 21.0);
        assert!(!choose_queue(&full, 4.0, &small, 4.0));
    }

    #[test]
    fn memory_bound_phase_resists_downsizing() {
        // With a big memory component, frequency gains matter less, so the
        // CPI loss dominates sooner.
        let full = PerfModel::new(1.00, 0.03, 52.0, 21.0);
        let small = PerfModel::new(1.08, 0.03, 52.0, 21.0);
        assert!(!choose_queue(&full, 3.8, &small, 4.0));
    }
}
